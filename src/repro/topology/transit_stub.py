"""A GT-ITM-style transit-stub topology generator.

The paper's replicated-web experiment uses a "modified 320-node
transit-stub topology" and the ACDC experiment a "600-node GT-ITM
transit-stub topology". This generator follows the structure of
Calvert/Doar/Zegura [3]: a small core of interconnected transit
domains, each transit router sponsoring several stub domains, with
client nodes hanging off stub routers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.topology.annotate import LinkClassParams
from repro.topology.graph import LinkKind, NodeKind, Topology


def _default_link_params() -> Dict[LinkKind, LinkClassParams]:
    """Defaults follow Figure 10 of the paper: transit-transit
    50 Mb/s 50 ms, transit-stub 25 Mb/s 10 ms, stub-stub 10 Mb/s 5 ms,
    client access 1 Mb/s 1 ms."""
    return {
        LinkKind.TRANSIT_TRANSIT: LinkClassParams(
            bandwidth_bps=(50e6, 50e6), latency_s=(0.050, 0.050), cost=(20, 40)
        ),
        LinkKind.STUB_TRANSIT: LinkClassParams(
            bandwidth_bps=(25e6, 25e6), latency_s=(0.010, 0.010), cost=(10, 20)
        ),
        LinkKind.STUB_STUB: LinkClassParams(
            bandwidth_bps=(10e6, 10e6), latency_s=(0.005, 0.005), cost=(1, 5)
        ),
        LinkKind.CLIENT_STUB: LinkClassParams(
            bandwidth_bps=(1e6, 1e6), latency_s=(0.001, 0.001), cost=(1, 1)
        ),
    }


@dataclass
class TransitStubSpec:
    """Shape and attribute parameters for :func:`transit_stub_topology`."""

    transit_domains: int = 1
    transit_nodes_per_domain: int = 4
    transit_extra_edge_prob: float = 0.3
    stub_domains_per_transit_node: int = 3
    stub_nodes_per_domain: int = 4
    stub_extra_edge_prob: float = 0.3
    clients_per_stub_node: int = 1
    link_params: Dict[LinkKind, LinkClassParams] = field(
        default_factory=_default_link_params
    )

    @property
    def expected_nodes(self) -> int:
        transits = self.transit_domains * self.transit_nodes_per_domain
        stubs = (
            transits
            * self.stub_domains_per_transit_node
            * self.stub_nodes_per_domain
        )
        return transits + stubs + stubs * self.clients_per_stub_node


def _connected_random_domain(
    topology: Topology,
    kind: NodeKind,
    size: int,
    extra_edge_prob: float,
    link_params: LinkClassParams,
    rng: random.Random,
    domain_tag: str,
) -> List[int]:
    """Create ``size`` nodes of ``kind`` joined by a random spanning
    tree plus extra random edges; returns the node ids."""
    ids: List[int] = []
    for _ in range(size):
        node = topology.add_node(kind, domain=domain_tag)
        ids.append(node.id)
    for position in range(1, size):
        attach_to = ids[rng.randrange(position)]
        sampled = link_params.sample(rng)
        topology.add_link(ids[position], attach_to, **sampled)
    for i in range(size):
        for j in range(i + 1, size):
            if topology.link_between(ids[i], ids[j]):
                continue
            if rng.random() < extra_edge_prob:
                topology.add_link(ids[i], ids[j], **link_params.sample(rng))
    return ids


def transit_stub_topology(spec: TransitStubSpec, rng: random.Random) -> Topology:
    """Generate a connected transit-stub topology per ``spec``."""
    topology = Topology("transit-stub")
    tt_params = spec.link_params[LinkKind.TRANSIT_TRANSIT]
    ts_params = spec.link_params[LinkKind.STUB_TRANSIT]
    ss_params = spec.link_params[LinkKind.STUB_STUB]
    cs_params = spec.link_params[LinkKind.CLIENT_STUB]

    transit_domains: List[List[int]] = []
    for domain_index in range(spec.transit_domains):
        ids = _connected_random_domain(
            topology,
            NodeKind.TRANSIT,
            spec.transit_nodes_per_domain,
            spec.transit_extra_edge_prob,
            tt_params,
            rng,
            f"transit-{domain_index}",
        )
        transit_domains.append(ids)

    # Interconnect transit domains in a chain (plus the chain is enough
    # for connectivity; GT-ITM uses sparse inter-domain links).
    for index in range(1, len(transit_domains)):
        a = rng.choice(transit_domains[index - 1])
        b = rng.choice(transit_domains[index])
        topology.add_link(a, b, **tt_params.sample(rng))

    stub_index = 0
    for domain in transit_domains:
        for transit_id in domain:
            for _ in range(spec.stub_domains_per_transit_node):
                stub_ids = _connected_random_domain(
                    topology,
                    NodeKind.STUB,
                    spec.stub_nodes_per_domain,
                    spec.stub_extra_edge_prob,
                    ss_params,
                    rng,
                    f"stub-{stub_index}",
                )
                stub_index += 1
                gateway = rng.choice(stub_ids)
                topology.add_link(transit_id, gateway, **ts_params.sample(rng))
                for stub_id in stub_ids:
                    for _ in range(spec.clients_per_stub_node):
                        client = topology.add_node(
                            NodeKind.CLIENT,
                            domain=topology.node(stub_id).attrs["domain"],
                        )
                        topology.add_link(
                            stub_id, client.id, **cs_params.sample(rng)
                        )

    for link in topology.links.values():
        link.attrs.setdefault("annotated", True)
    return topology
