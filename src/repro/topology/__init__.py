"""Target-network topology model and generators (the Create phase).

A :class:`Topology` is an undirected graph whose nodes are clients
(virtual-node attachment points), stub routers, or transit routers —
the transit-stub taxonomy of Calvert/Doar/Zegura used by the paper —
and whose links carry the attributes the emulator needs: bandwidth,
latency, loss rate, queue bound, and an abstract cost metric.

Topologies come from the GML reader (:mod:`repro.topology.gml`), the
synthetic generators (:mod:`repro.topology.generators`), or the
GT-ITM-style transit-stub generator
(:mod:`repro.topology.transit_stub`).
"""

from repro.topology.graph import (
    LinkKind,
    NodeKind,
    Node,
    Link,
    Topology,
    TopologyError,
)
from repro.topology.gml import parse_gml, to_gml, load_gml, save_gml
from repro.topology.generators import (
    chain_topology,
    dumbbell_topology,
    full_mesh_topology,
    ring_topology,
    star_topology,
    waxman_topology,
)
from repro.topology.transit_stub import TransitStubSpec, transit_stub_topology
from repro.topology.annotate import annotate_links, classify_link
from repro.topology.importers import (
    attach_clients,
    from_adjacency_list,
    from_bgp_paths,
)

__all__ = [
    "LinkKind",
    "NodeKind",
    "Node",
    "Link",
    "Topology",
    "TopologyError",
    "parse_gml",
    "to_gml",
    "load_gml",
    "save_gml",
    "chain_topology",
    "dumbbell_topology",
    "full_mesh_topology",
    "ring_topology",
    "star_topology",
    "waxman_topology",
    "TransitStubSpec",
    "transit_stub_topology",
    "annotate_links",
    "classify_link",
    "attach_clients",
    "from_adjacency_list",
    "from_bgp_paths",
]
