"""Core graph types for target topologies."""

from __future__ import annotations

import enum
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple


class TopologyError(ValueError):
    """Raised for malformed topology operations."""


class NodeKind(enum.Enum):
    """Node roles, borrowing the transit-stub taxonomy of [3].

    CLIENT nodes are the attachment points for virtual nodes (VNs);
    STUB and TRANSIT nodes are interior routers.
    """

    CLIENT = "client"
    STUB = "stub"
    TRANSIT = "transit"

    @classmethod
    def parse(cls, text: str) -> "NodeKind":
        try:
            return cls(text.lower())
        except ValueError:
            raise TopologyError(f"unknown node kind {text!r}") from None


class LinkKind(enum.Enum):
    """Link classes used when assigning default attributes."""

    CLIENT_STUB = "client-stub"
    STUB_STUB = "stub-stub"
    STUB_TRANSIT = "stub-transit"
    TRANSIT_TRANSIT = "transit-transit"


class Node:
    """A topology node. ``attrs`` holds free-form annotations."""

    __slots__ = ("id", "kind", "attrs")

    def __init__(self, node_id: int, kind: NodeKind, **attrs: Any):
        self.id = node_id
        self.kind = kind
        self.attrs: Dict[str, Any] = attrs

    def __repr__(self) -> str:
        return f"<Node {self.id} {self.kind.value}>"


class Link:
    """An undirected, full-duplex link.

    The emulator instantiates one unidirectional pipe per direction,
    each with these attributes. ``up`` supports fault injection.
    """

    __slots__ = (
        "id",
        "a",
        "b",
        "bandwidth_bps",
        "latency_s",
        "loss_rate",
        "queue_limit",
        "cost",
        "up",
        "attrs",
    )

    def __init__(
        self,
        link_id: int,
        a: int,
        b: int,
        bandwidth_bps: float,
        latency_s: float,
        loss_rate: float = 0.0,
        queue_limit: int = 50,
        cost: float = 1.0,
        **attrs: Any,
    ):
        if a == b:
            raise TopologyError(f"self-loop on node {a}")
        if bandwidth_bps <= 0:
            raise TopologyError(f"link {a}-{b}: bandwidth must be positive")
        if latency_s < 0:
            raise TopologyError(f"link {a}-{b}: negative latency")
        if not 0.0 <= loss_rate < 1.0:
            raise TopologyError(f"link {a}-{b}: loss rate {loss_rate} not in [0,1)")
        if queue_limit < 1:
            raise TopologyError(f"link {a}-{b}: queue limit must be >= 1")
        self.id = link_id
        self.a = a
        self.b = b
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self.loss_rate = float(loss_rate)
        self.queue_limit = int(queue_limit)
        self.cost = float(cost)
        self.up = True
        self.attrs: Dict[str, Any] = attrs

    def other(self, node_id: int) -> int:
        """The endpoint opposite ``node_id``."""
        if node_id == self.a:
            return self.b
        if node_id == self.b:
            return self.a
        raise TopologyError(f"node {node_id} is not an endpoint of link {self.id}")

    @property
    def reliability(self) -> float:
        return 1.0 - self.loss_rate

    def __repr__(self) -> str:
        mbps = self.bandwidth_bps / 1e6
        ms = self.latency_s * 1e3
        return f"<Link {self.id} {self.a}-{self.b} {mbps:g}Mb/s {ms:g}ms>"


class Topology:
    """An undirected multigraph of :class:`Node` and :class:`Link`.

    Node and link ids are small integers assigned on insertion (or
    chosen by the caller for nodes, e.g. when parsing GML).
    """

    def __init__(self, name: str = "topology"):
        self.name = name
        self.nodes: Dict[int, Node] = {}
        self.links: Dict[int, Link] = {}
        self._adjacency: Dict[int, List[Link]] = {}
        self._next_node_id = 0
        self._next_link_id = 0

    # -- construction -------------------------------------------------

    def add_node(
        self,
        kind: NodeKind = NodeKind.CLIENT,
        node_id: Optional[int] = None,
        **attrs: Any,
    ) -> Node:
        """Add a node of ``kind``; ids auto-assign unless given."""
        if node_id is None:
            node_id = self._next_node_id
        if node_id in self.nodes:
            raise TopologyError(f"duplicate node id {node_id}")
        node = Node(node_id, kind, **attrs)
        self.nodes[node_id] = node
        self._adjacency[node_id] = []
        self._next_node_id = max(self._next_node_id, node_id + 1)
        return node

    def add_link(
        self,
        a: int,
        b: int,
        bandwidth_bps: float,
        latency_s: float,
        loss_rate: float = 0.0,
        queue_limit: int = 50,
        cost: float = 1.0,
        **attrs: Any,
    ) -> Link:
        """Add an undirected link between nodes ``a`` and ``b``."""
        for end in (a, b):
            if end not in self.nodes:
                raise TopologyError(f"link endpoint {end} is not a node")
        link = Link(
            self._next_link_id,
            a,
            b,
            bandwidth_bps,
            latency_s,
            loss_rate,
            queue_limit,
            cost,
            **attrs,
        )
        self.links[link.id] = link
        self._adjacency[a].append(link)
        self._adjacency[b].append(link)
        self._next_link_id += 1
        return link

    def remove_link(self, link_id: int) -> None:
        link = self.links.pop(link_id, None)
        if link is None:
            raise TopologyError(f"no link {link_id}")
        self._adjacency[link.a].remove(link)
        self._adjacency[link.b].remove(link)

    # -- queries ------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_links(self) -> int:
        return len(self.links)

    def node(self, node_id: int) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise TopologyError(f"no node {node_id}") from None

    def links_of(self, node_id: int, include_down: bool = True) -> List[Link]:
        links = self._adjacency.get(node_id)
        if links is None:
            raise TopologyError(f"no node {node_id}")
        if include_down:
            return list(links)
        return [link for link in links if link.up]

    def neighbors(self, node_id: int, include_down: bool = False) -> Iterator[Tuple[int, Link]]:
        """Yield (neighbor id, link) pairs; down links skipped by default."""
        for link in self._adjacency[node_id]:
            if link.up or include_down:
                yield link.other(node_id), link

    def degree(self, node_id: int) -> int:
        return len(self._adjacency[node_id])

    def link_between(self, a: int, b: int) -> Optional[Link]:
        """The first link between a and b, or None."""
        for link in self._adjacency.get(a, ()):
            if link.other(a) == b:
                return link
        return None

    def clients(self) -> List[Node]:
        return self.nodes_of_kind(NodeKind.CLIENT)

    def nodes_of_kind(self, kind: NodeKind) -> List[Node]:
        return [n for n in self.nodes.values() if n.kind is kind]

    def connected_components(self) -> List[List[int]]:
        """Connected components over up links, as lists of node ids."""
        seen: set[int] = set()
        components: List[List[int]] = []
        for start in self.nodes:
            if start in seen:
                continue
            stack = [start]
            seen.add(start)
            component = []
            while stack:
                current = stack.pop()
                component.append(current)
                for neighbor, _link in self.neighbors(current):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
            components.append(sorted(component))
        return components

    def is_connected(self) -> bool:
        return self.num_nodes > 0 and len(self.connected_components()) == 1

    def copy(self, name: Optional[str] = None) -> "Topology":
        """Deep-enough copy: fresh Node/Link objects, shallow attrs."""
        clone = Topology(name or self.name)
        for node in self.nodes.values():
            clone.add_node(node.kind, node_id=node.id, **dict(node.attrs))
        for link in sorted(self.links.values(), key=lambda l: l.id):
            new = clone.add_link(
                link.a,
                link.b,
                link.bandwidth_bps,
                link.latency_s,
                link.loss_rate,
                link.queue_limit,
                link.cost,
                **dict(link.attrs),
            )
            new.up = link.up
        return clone

    def validate(self) -> None:
        """Raise :class:`TopologyError` on structural inconsistencies."""
        for link in self.links.values():
            if link.a not in self.nodes or link.b not in self.nodes:
                raise TopologyError(f"link {link.id} references missing node")
        for node_id, links in self._adjacency.items():
            for link in links:
                if link.id not in self.links:
                    raise TopologyError(
                        f"adjacency of node {node_id} references removed link"
                    )

    def __repr__(self) -> str:
        return (
            f"<Topology {self.name!r} nodes={self.num_nodes} "
            f"links={self.num_links}>"
        )
