"""GML (graph modeling language) import/export.

The paper's Create phase converts every topology source — Internet
traces, BGP dumps, synthetic generators — into GML, optionally
annotated with attributes the source did not provide. This module
implements a small, strict GML dialect:

.. code-block:: none

    graph [
      name "ring"
      node [ id 0 kind "client" ]
      node [ id 1 kind "stub" ]
      edge [
        source 0 target 1
        bandwidth 2000000.0 latency 0.001 loss 0.0 queue 50 cost 1.0
      ]
    ]

Unknown keys on nodes and edges are preserved in ``attrs``.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Tuple, Union

from repro.topology.graph import NodeKind, Topology, TopologyError

_TOKEN_RE = re.compile(r'"(?:[^"\\]|\\.)*"|\[|\]|[^\s\[\]]+')

GmlValue = Union[int, float, str, "GmlDict"]
GmlDict = Dict[str, List["GmlValue"]]


def _tokenize(text: str) -> List[str]:
    tokens = []
    for line in text.splitlines():
        stripped = line.split("#", 1)[0]
        tokens.extend(_TOKEN_RE.findall(stripped))
    return tokens


def _parse_value(token: str) -> Union[int, float, str]:
    if token.startswith('"'):
        return token[1:-1].replace('\\"', '"')
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


def _parse_dict(tokens: List[str], pos: int) -> Tuple[GmlDict, int]:
    result: GmlDict = {}
    while pos < len(tokens):
        token = tokens[pos]
        if token == "]":
            return result, pos + 1
        key = token
        pos += 1
        if pos >= len(tokens):
            raise TopologyError(f"GML: key {key!r} has no value")
        if tokens[pos] == "[":
            value, pos = _parse_dict(tokens, pos + 1)
        else:
            value = _parse_value(tokens[pos])
            pos += 1
        result.setdefault(key, []).append(value)
    return result, pos


def _first(record: GmlDict, key: str, default: Any = None) -> Any:
    values = record.get(key)
    if not values:
        return default
    return values[0]


def parse_gml(text: str) -> Topology:
    """Parse GML text into a :class:`Topology`."""
    tokens = _tokenize(text)
    document, _ = _parse_dict(tokens, 0)
    graph = _first(document, "graph")
    if not isinstance(graph, dict):
        raise TopologyError("GML: no graph [...] block")

    topology = Topology(str(_first(graph, "name", "topology")))
    reserved_node = {"id", "kind", "label"}
    for record in graph.get("node", []):
        if not isinstance(record, dict):
            raise TopologyError("GML: node must be a block")
        node_id = _first(record, "id")
        if node_id is None:
            raise TopologyError("GML: node without id")
        kind = NodeKind.parse(str(_first(record, "kind", "client")))
        attrs = {
            key: values[0]
            for key, values in record.items()
            if key not in reserved_node
        }
        label = _first(record, "label")
        if label is not None:
            attrs["label"] = label
        topology.add_node(kind, node_id=int(node_id), **attrs)

    reserved_edge = {
        "source",
        "target",
        "bandwidth",
        "latency",
        "loss",
        "queue",
        "cost",
    }
    for record in graph.get("edge", []):
        if not isinstance(record, dict):
            raise TopologyError("GML: edge must be a block")
        source = _first(record, "source")
        target = _first(record, "target")
        if source is None or target is None:
            raise TopologyError("GML: edge without source/target")
        attrs = {
            key: values[0]
            for key, values in record.items()
            if key not in reserved_edge
        }
        topology.add_link(
            int(source),
            int(target),
            bandwidth_bps=float(_first(record, "bandwidth", 1e6)),
            latency_s=float(_first(record, "latency", 0.001)),
            loss_rate=float(_first(record, "loss", 0.0)),
            queue_limit=int(_first(record, "queue", 50)),
            cost=float(_first(record, "cost", 1.0)),
            **attrs,
        )
    return topology


def to_gml(topology: Topology) -> str:
    """Serialize a :class:`Topology` to GML text."""
    lines = ["graph ["]
    lines.append(f'  name "{topology.name}"')
    for node in sorted(topology.nodes.values(), key=lambda n: n.id):
        parts = [f"id {node.id}", f'kind "{node.kind.value}"']
        for key, value in sorted(node.attrs.items()):
            parts.append(f"{key} {_format_value(value)}")
        lines.append(f"  node [ {' '.join(parts)} ]")
    for link in sorted(topology.links.values(), key=lambda l: l.id):
        parts = [
            f"source {link.a}",
            f"target {link.b}",
            f"bandwidth {link.bandwidth_bps!r}",
            f"latency {link.latency_s!r}",
            f"loss {link.loss_rate!r}",
            f"queue {link.queue_limit}",
            f"cost {link.cost!r}",
        ]
        for key, value in sorted(link.attrs.items()):
            parts.append(f"{key} {_format_value(value)}")
        lines.append(f"  edge [ {' '.join(parts)} ]")
    lines.append("]")
    return "\n".join(lines) + "\n"


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return f'"{value}"'
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace('"', '\\"')
    return f'"{escaped}"'


def load_gml(path: str) -> Topology:
    """Read a topology from a GML file."""
    with open(path) as handle:
        return parse_gml(handle.read())


def save_gml(topology: Topology, path: str) -> None:
    """Write a topology to a GML file."""
    with open(path, "w") as handle:
        handle.write(to_gml(topology))
