"""Importers for real-world topology sources (paper Sec. 2.1).

"Sources of target topologies include Internet traces (e.g., from
Caida), BGP dumps, and synthetic topology generators. ModelNet
includes filters to convert all of these formats to GML."

Two widely-used textual formats are supported:

* **adjacency lists** (CAIDA AS-links style): one ``AS1 AS2`` pair
  per line, optionally with trailing annotations which are ignored;
* **BGP path dumps**: one AS path per line (``701 1239 3356 7018``);
  an edge is inferred between each consecutive AS pair, the standard
  topology-inference reading of table dumps.

AS-level graphs carry no link attributes, so imported nodes arrive as
transit routers with placeholder links — run them through
:func:`repro.topology.annotate.annotate_links` (or ``repro-net
annotate``) and :func:`attach_clients` to make them emulatable.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional

from repro.topology.graph import NodeKind, Topology, TopologyError

#: Placeholder attributes for inferred AS-AS links.
_DEFAULT_BANDWIDTH = 155e6
_DEFAULT_LATENCY = 0.010


class _AsRegistry:
    """Maps external AS numbers to dense node ids."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self._ids: Dict[str, int] = {}

    def node_for(self, token: str) -> int:
        node_id = self._ids.get(token)
        if node_id is None:
            node = self.topology.add_node(NodeKind.TRANSIT, asn=token)
            node_id = node.id
            self._ids[token] = node_id
        return node_id


def from_adjacency_list(text: str, name: str = "caida-import") -> Topology:
    """Parse CAIDA-style ``AS1 AS2 [...]`` lines into a topology.

    Lines starting with ``#`` and blank lines are skipped; duplicate
    and reversed pairs collapse to a single link; self-loops are
    rejected.
    """
    topology = Topology(name)
    registry = _AsRegistry(topology)
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise TopologyError(
                f"line {line_number}: expected 'AS1 AS2', got {line!r}"
            )
        a, b = parts[0], parts[1]
        if a == b:
            raise TopologyError(f"line {line_number}: self-loop on AS {a}")
        node_a = registry.node_for(a)
        node_b = registry.node_for(b)
        if topology.link_between(node_a, node_b) is None:
            topology.add_link(
                node_a, node_b, _DEFAULT_BANDWIDTH, _DEFAULT_LATENCY
            )
    if topology.num_nodes == 0:
        raise TopologyError("no adjacencies found")
    return topology


def from_bgp_paths(text: str, name: str = "bgp-import") -> Topology:
    """Infer an AS graph from BGP path lines.

    AS-path prepending (repeated consecutive ASes) is collapsed, as
    real inference pipelines do.
    """
    topology = Topology(name)
    registry = _AsRegistry(topology)
    saw_any = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        hops = line.split()
        deduped = [hops[0]]
        for token in hops[1:]:
            if token != deduped[-1]:
                deduped.append(token)
        if len(deduped) < 2:
            continue
        saw_any = True
        for a, b in zip(deduped, deduped[1:]):
            node_a = registry.node_for(a)
            node_b = registry.node_for(b)
            if topology.link_between(node_a, node_b) is None:
                topology.add_link(
                    node_a, node_b, _DEFAULT_BANDWIDTH, _DEFAULT_LATENCY
                )
    if not saw_any:
        raise TopologyError("no usable AS paths found")
    return topology


def attach_clients(
    topology: Topology,
    clients_per_edge_as: int,
    rng: random.Random,
    bandwidth_bps: float = 1e6,
    latency_s: float = 0.001,
    edge_degree_at_most: int = 2,
) -> int:
    """Give an imported AS graph VN attachment points.

    Client nodes are attached to *edge* ASes (degree <=
    ``edge_degree_at_most``), mirroring how stub networks host end
    systems. Returns the number of clients created.
    """
    if clients_per_edge_as < 1:
        raise TopologyError("clients_per_edge_as must be >= 1")
    edge_ases = [
        node.id
        for node in sorted(topology.nodes.values(), key=lambda n: n.id)
        if node.kind is NodeKind.TRANSIT
        and topology.degree(node.id) <= edge_degree_at_most
    ]
    created = 0
    for as_node in edge_ases:
        for _ in range(clients_per_edge_as):
            client = topology.add_node(NodeKind.CLIENT, attached_as=as_node)
            topology.add_link(
                as_node, client.id, bandwidth_bps, latency_s
            )
            created += 1
    if created == 0:
        raise TopologyError(
            "no edge ASes found to host clients; raise edge_degree_at_most"
        )
    return created
