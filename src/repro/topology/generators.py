"""Synthetic topology generators.

These cover the shapes the paper's evaluation uses directly:

* chains of pipes (Sec. 3.2 capacity experiment, 1-12 hops);
* the star used in the multi-core experiment (Table 1);
* the ring-of-routers with attached VNs used for distillation (Fig. 5);
* full meshes (the RON-style end-to-end condition matrices, Figs. 7-9);
* dumbbells (classic congestion validation);
* Waxman random graphs (a stand-in for BRITE-style generators [12]).
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional, Sequence

from repro.topology.graph import NodeKind, Topology


def chain_topology(
    num_client_pairs: int,
    hops: int,
    bandwidth_bps: float = 10e6,
    latency_s: float = 0.010,
    loss_rate: float = 0.0,
    queue_limit: int = 50,
) -> Topology:
    """``num_client_pairs`` disjoint sender/receiver pairs, each joined
    by a private chain of ``hops`` identical pipes.

    The end-to-end latency of each path is ``latency_s`` (split evenly
    across hops), matching the Sec. 3.2 setup where varying the hop
    count varies emulation work but not path characteristics.
    """
    if hops < 1:
        raise ValueError("hops must be >= 1")
    topology = Topology(f"chain-{hops}hop")
    per_hop_latency = latency_s / hops
    for _ in range(num_client_pairs):
        sender = topology.add_node(NodeKind.CLIENT, role="sender")
        previous = sender.id
        for _hop in range(hops - 1):
            router = topology.add_node(NodeKind.STUB)
            topology.add_link(
                previous,
                router.id,
                bandwidth_bps,
                per_hop_latency,
                loss_rate,
                queue_limit,
            )
            previous = router.id
        receiver = topology.add_node(NodeKind.CLIENT, role="receiver")
        topology.add_link(
            previous,
            receiver.id,
            bandwidth_bps,
            per_hop_latency,
            loss_rate,
            queue_limit,
        )
    return topology


def star_topology(
    num_clients: int,
    bandwidth_bps: float = 10e6,
    latency_s: float = 0.005,
    loss_rate: float = 0.0,
    queue_limit: int = 50,
) -> Topology:
    """All clients hang off one central transit node: every path is
    exactly two pipes, as in the Table 1 multi-core experiment."""
    topology = Topology("star")
    hub = topology.add_node(NodeKind.TRANSIT)
    for _ in range(num_clients):
        client = topology.add_node(NodeKind.CLIENT)
        topology.add_link(
            hub.id, client.id, bandwidth_bps, latency_s, loss_rate, queue_limit
        )
    return topology


def ring_topology(
    num_routers: int = 20,
    vns_per_router: int = 20,
    ring_bandwidth_bps: float = 20e6,
    ring_latency_s: float = 0.002,
    vn_bandwidth_bps: float = 2e6,
    vn_latency_s: float = 0.001,
    queue_limit: int = 50,
) -> Topology:
    """The Fig. 5 distillation topology: a ring of routers, each with
    directly attached VN clients."""
    if num_routers < 3:
        raise ValueError("a ring needs at least 3 routers")
    topology = Topology("ring")
    routers = [topology.add_node(NodeKind.STUB) for _ in range(num_routers)]
    for index, router in enumerate(routers):
        neighbor = routers[(index + 1) % num_routers]
        topology.add_link(
            router.id,
            neighbor.id,
            ring_bandwidth_bps,
            ring_latency_s,
            queue_limit=queue_limit,
        )
    for router in routers:
        for _ in range(vns_per_router):
            client = topology.add_node(NodeKind.CLIENT)
            topology.add_link(
                router.id,
                client.id,
                vn_bandwidth_bps,
                vn_latency_s,
                queue_limit=queue_limit,
            )
    return topology


def dumbbell_topology(
    clients_per_side: int,
    access_bandwidth_bps: float = 10e6,
    access_latency_s: float = 0.001,
    bottleneck_bandwidth_bps: float = 1.5e6,
    bottleneck_latency_s: float = 0.020,
    queue_limit: int = 50,
) -> Topology:
    """The classic shared-bottleneck shape used to validate congestion
    emulation: n senders and n receivers joined by one slow link."""
    topology = Topology("dumbbell")
    left = topology.add_node(NodeKind.STUB, side="left")
    right = topology.add_node(NodeKind.STUB, side="right")
    topology.add_link(
        left.id,
        right.id,
        bottleneck_bandwidth_bps,
        bottleneck_latency_s,
        queue_limit=queue_limit,
    )
    for side, router in (("left", left), ("right", right)):
        for _ in range(clients_per_side):
            client = topology.add_node(NodeKind.CLIENT, side=side)
            topology.add_link(
                router.id,
                client.id,
                access_bandwidth_bps,
                access_latency_s,
                queue_limit=queue_limit,
            )
    return topology


def full_mesh_topology(
    num_clients: int,
    bandwidth_fn: Callable[[int, int], float],
    latency_fn: Callable[[int, int], float],
    loss_fn: Optional[Callable[[int, int], float]] = None,
    queue_limit: int = 50,
) -> Topology:
    """A direct link between every client pair, with per-pair
    attributes supplied by callables over (i, j) with i < j.

    This is how measured end-to-end condition matrices (e.g. the RON
    inter-site data of Sec. 5.1) become topologies.
    """
    topology = Topology("mesh")
    clients = [topology.add_node(NodeKind.CLIENT) for _ in range(num_clients)]
    for i in range(num_clients):
        for j in range(i + 1, num_clients):
            loss = loss_fn(i, j) if loss_fn else 0.0
            topology.add_link(
                clients[i].id,
                clients[j].id,
                bandwidth_fn(i, j),
                latency_fn(i, j),
                loss,
                queue_limit,
            )
    return topology


def waxman_topology(
    num_routers: int,
    rng: random.Random,
    alpha: float = 0.4,
    beta: float = 0.4,
    clients_per_router: int = 0,
    router_bandwidth_bps: float = 45e6,
    client_bandwidth_bps: float = 2e6,
    latency_per_unit_s: float = 0.030,
    queue_limit: int = 50,
) -> Topology:
    """A Waxman random graph: routers placed uniformly in the unit
    square, with edge probability ``alpha * exp(-d / (beta * L))``.

    Link latency is proportional to Euclidean distance, like the
    BRITE/GT-ITM family of generators the paper lists as topology
    sources. A spanning backbone is added first so the result is
    always connected.
    """
    if num_routers < 2:
        raise ValueError("need at least 2 routers")
    topology = Topology("waxman")
    positions: List[tuple[float, float]] = []
    routers = []
    for _ in range(num_routers):
        router = topology.add_node(NodeKind.STUB)
        routers.append(router)
        positions.append((rng.random(), rng.random()))

    def distance(i: int, j: int) -> float:
        (x1, y1), (x2, y2) = positions[i], positions[j]
        return math.hypot(x1 - x2, y1 - y2)

    def latency(i: int, j: int) -> float:
        # Floor keeps zero-distance pairs from producing zero-latency
        # links, which would break bandwidth-delay accounting.
        return max(1e-4, distance(i, j) * latency_per_unit_s)

    # Random spanning tree for connectivity.
    order = list(range(num_routers))
    rng.shuffle(order)
    for position in range(1, num_routers):
        i = order[position]
        j = order[rng.randrange(position)]
        topology.add_link(
            routers[i].id,
            routers[j].id,
            router_bandwidth_bps,
            latency(i, j),
            queue_limit=queue_limit,
        )

    max_distance = math.sqrt(2.0)
    for i in range(num_routers):
        for j in range(i + 1, num_routers):
            if topology.link_between(routers[i].id, routers[j].id):
                continue
            probability = alpha * math.exp(
                -distance(i, j) / (beta * max_distance)
            )
            if rng.random() < probability:
                topology.add_link(
                    routers[i].id,
                    routers[j].id,
                    router_bandwidth_bps,
                    latency(i, j),
                    queue_limit=queue_limit,
                )

    for router in routers:
        for _ in range(clients_per_router):
            client = topology.add_node(NodeKind.CLIENT)
            topology.add_link(
                router.id,
                client.id,
                client_bandwidth_bps,
                1e-3,
                queue_limit=queue_limit,
            )
    return topology
