"""Link-attribute annotation policies.

GML sources often lack emulation attributes (bandwidth, loss,
cost...). The paper notes users may annotate the graph with attributes
not provided by its source; this module provides the standard policy:
classify each link by the kinds of its endpoints and draw attributes
from per-class ranges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.topology.graph import Link, LinkKind, NodeKind, Topology


@dataclass
class LinkClassParams:
    """Attribute ranges for one link class. A range (lo, hi) is
    sampled uniformly; pass lo == hi for a constant."""

    bandwidth_bps: Tuple[float, float]
    latency_s: Tuple[float, float]
    loss_rate: Tuple[float, float] = (0.0, 0.0)
    cost: Tuple[float, float] = (1.0, 1.0)
    queue_limit: int = 50

    def sample(self, rng: random.Random) -> Dict[str, float]:
        return {
            "bandwidth_bps": rng.uniform(*self.bandwidth_bps),
            "latency_s": rng.uniform(*self.latency_s),
            "loss_rate": rng.uniform(*self.loss_rate),
            "cost": rng.uniform(*self.cost),
            "queue_limit": self.queue_limit,
        }


def classify_link(topology: Topology, link: Link) -> LinkKind:
    """Classify a link by its endpoint kinds.

    Client attachments are CLIENT_STUB regardless of what they attach
    to; transit involvement wins over stub-stub.
    """
    kind_a = topology.node(link.a).kind
    kind_b = topology.node(link.b).kind
    kinds = {kind_a, kind_b}
    if NodeKind.CLIENT in kinds:
        return LinkKind.CLIENT_STUB
    if kinds == {NodeKind.TRANSIT}:
        return LinkKind.TRANSIT_TRANSIT
    if NodeKind.TRANSIT in kinds:
        return LinkKind.STUB_TRANSIT
    return LinkKind.STUB_STUB


def annotate_links(
    topology: Topology,
    params: Dict[LinkKind, LinkClassParams],
    rng: random.Random,
    only_missing: bool = False,
) -> int:
    """Assign sampled attributes to every link whose class appears in
    ``params``. With ``only_missing``, links that carry an
    ``annotated`` marker are left alone. Returns the number of links
    annotated."""
    count = 0
    for link in sorted(topology.links.values(), key=lambda l: l.id):
        if only_missing and link.attrs.get("annotated"):
            continue
        link_class = classify_link(topology, link)
        policy = params.get(link_class)
        if policy is None:
            continue
        sampled = policy.sample(rng)
        link.bandwidth_bps = sampled["bandwidth_bps"]
        link.latency_s = sampled["latency_s"]
        link.loss_rate = sampled["loss_rate"]
        link.cost = sampled["cost"]
        link.queue_limit = sampled["queue_limit"]
        link.attrs["annotated"] = True
        link.attrs["link_class"] = link_class.value
        count += 1
    return count
