"""Declarative, spec-portable traffic workloads.

The multiprocess backend and the :mod:`repro.exp` sweep runner both
rebuild scenarios from a picklable :class:`~repro.api.ScenarioSpec`
in another process, so traffic must travel as *names plus parameters*,
not closures. This registry is the sanctioned catalogue: each entry is
a factory ``factory(emulation, **params) -> handle`` registered under
a stable name, installed on a scenario with
:meth:`repro.api.Scenario.workload` and carried in the spec's
``traffic`` tuple.

A handle may expose ``metrics() -> dict``; after the clock runs, the
scenario folds those values into the :class:`~repro.obs.RunReport`
under ``traffic.<entry>.<key>`` — this is how workload-level results
(download speeds, overlay cost ratios) reach the experiment layer's
aggregated datasets without side channels.

Registered entries (the paper's workload families):

``netperf``
    Bulk TCP streams (Figs. 4-6, Table 1). ``pairing="random"``
    matches :meth:`Scenario.netperf`'s shuffled pairs;
    ``pairing="sequential"`` pairs VN ``2i -> 2i+1``, the Fig. 4
    chain-capacity layout.

``udp-cbr``
    Constant-bit-rate UDP flows with per-receiver sinks — the
    capacity-style UDP load of Sec. 4.2, spec-portable.

``cfs``
    CFS file downloads over a Chord ring (Figs. 7-9): every client
    fetches one file with a configurable prefetch window; per-run
    speed quantiles land in the report.

``acdc``
    The Fig. 12 adaptive-overlay experiment: an ACDC tree over random
    members, link perturbation in a window, sampled cost/delay
    summaries.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Optional, Tuple

#: name -> factory(emulation, **params) -> handle
_REGISTRY: Dict[str, Callable[..., Any]] = {}


def register_traffic(name: str) -> Callable[[Callable], Callable]:
    """Register ``factory`` as the named, spec-portable workload."""

    def decorate(factory: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"traffic entry {name!r} already registered")
        _REGISTRY[name] = factory
        return factory

    return decorate


def traffic_names() -> List[str]:
    return sorted(_REGISTRY)


def traffic_factory(name: str) -> Callable[..., Any]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown traffic entry {name!r}; "
            f"valid: {', '.join(traffic_names())}"
        ) from None


def traffic_params(name: str) -> Tuple[str, ...]:
    """Parameter names the named entry accepts (sans ``emulation``)."""
    signature = inspect.signature(traffic_factory(name))
    return tuple(p for p in signature.parameters if p != "emulation")


def validate_params(name: str, params: Dict[str, Any]) -> None:
    """Reject unknown parameter names, the same way
    :meth:`EmulationConfig.validate` rejects unknown knobs."""
    valid = set(traffic_params(name))
    unknown = set(params) - valid
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {sorted(unknown)} for traffic entry "
            f"{name!r}; valid: {', '.join(sorted(valid))}"
        )


def build_traffic(name: str, emulation, **params):
    """Instantiate the named workload on a built emulation."""
    validate_params(name, params)
    return traffic_factory(name)(emulation, **params)


def make_setup(name: str, params: Dict[str, Any]) -> Callable:
    """A traffic callback for :meth:`Scenario.traffic` that carries
    its (name, params) declaratively for the spec round trip."""
    validate_params(name, params)

    def setup(emulation):
        return build_traffic(name, emulation, **params)

    setup._traffic_entry = (name, tuple(sorted(params.items())))
    return setup


def _quantile(values: List[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


# ----------------------------------------------------------------------
# netperf: bulk TCP streams
# ----------------------------------------------------------------------

@register_traffic("netperf")
def netperf_traffic(
    emulation,
    flows: int = 4,
    seed: Optional[int] = None,
    pairing: str = "random",
):
    """``flows`` bulk TCP streams. ``pairing="random"`` draws shuffled
    sender/receiver pairs from the named ``"netperf-pairs"`` stream
    (identical to :meth:`Scenario.netperf`); ``"sequential"`` pairs
    VN ``2i -> 2i+1`` — the Fig. 4 chain layout, where each pair owns
    a private path."""
    from repro.apps.netperf import TcpStream
    from repro.engine.randomness import RngRegistry

    if pairing not in ("random", "sequential"):
        raise ValueError(
            f"unknown pairing {pairing!r}; valid: random, sequential"
        )
    if pairing == "sequential":
        count = min(flows, emulation.num_vns // 2)
        pairs = [(2 * i, 2 * i + 1) for i in range(count)]
    else:
        rng = RngRegistry(
            emulation.config.seed if seed is None else seed
        ).stream("netperf-pairs")
        vns = list(range(emulation.num_vns))
        rng.shuffle(vns)
        count = min(flows, len(vns) // 2)
        pairs = [(vns[2 * i], vns[2 * i + 1]) for i in range(count)]
    return _NetperfHandle(
        emulation, [TcpStream(emulation, src, dst) for src, dst in pairs]
    )


class _NetperfHandle:
    def __init__(self, emulation, streams):
        self.emulation = emulation
        self.streams = streams

    def metrics(self) -> Dict[str, float]:
        received = sum(s.bytes_received for s in self.streams)
        elapsed = self.emulation.sim.now
        return {
            "netperf.flows": len(self.streams),
            "netperf.bytes_received": received,
            "netperf.goodput_bps": (
                received * 8.0 / elapsed if elapsed > 0 else 0.0
            ),
        }


# ----------------------------------------------------------------------
# udp-cbr: constant-bit-rate UDP flows (capacity-style load)
# ----------------------------------------------------------------------

@register_traffic("udp-cbr")
def udp_cbr_traffic(
    emulation,
    flows: int = 4,
    rate_mbps: float = 1.0,
    packet_bytes: int = 1000,
    start_at: float = 0.0,
):
    """``flows`` CBR UDP senders, VN ``2i`` to a sink on VN
    ``2i+1`` — the modified-netperf UDP load of Sec. 4.2."""
    from repro.apps.netperf import UdpCbrSource, UdpSink

    count = min(flows, emulation.num_vns // 2)
    sinks = [UdpSink(emulation.vn(2 * i + 1)) for i in range(count)]
    sources = [
        UdpCbrSource(
            emulation.vn(2 * i),
            2 * i + 1,
            rate_bps=rate_mbps * 1e6,
            packet_bytes=packet_bytes,
            start_at=start_at,
        )
        for i in range(count)
    ]
    return _UdpCbrHandle(sources, sinks)


class _UdpCbrHandle:
    def __init__(self, sources, sinks):
        self.sources = sources
        self.sinks = sinks

    def metrics(self) -> Dict[str, float]:
        sent = sum(s.sent for s in self.sources)
        received = sum(s.datagrams for s in self.sinks)
        return {
            "udp-cbr.flows": len(self.sources),
            "udp-cbr.datagrams_sent": sent,
            "udp-cbr.datagrams_received": received,
            "udp-cbr.bytes_received": sum(
                s.bytes_received for s in self.sinks
            ),
            "udp-cbr.delivery_ratio": received / sent if sent else 0.0,
        }


# ----------------------------------------------------------------------
# cfs: Chord/CFS downloads (Figs. 7-9)
# ----------------------------------------------------------------------

@register_traffic("cfs")
def cfs_traffic(
    emulation,
    clients: int = 8,
    prefetch_kb: int = 24,
    file_bytes: int = 1_000_000,
    stagger_s: float = 30.0,
):
    """Every client VN downloads one ``file_bytes`` file through a
    CFS ring spanning all VNs, with the given prefetch window.
    Downloads start ``stagger_s`` apart (client ``i`` at
    ``i * stagger_s``) so each one sees an otherwise idle network,
    like the paper's per-(client, file) measurements."""
    from repro.apps.cfs import CfsNetwork

    vn_ids = list(range(emulation.num_vns))
    network = CfsNetwork(emulation, vn_ids)
    handle = _CfsHandle(network, prefetch_kb)
    for index, client in enumerate(vn_ids[: min(clients, len(vn_ids))]):
        file_id = f"cfs-{prefetch_kb}k-{client}"
        network.store_file(file_id, file_bytes)
        emulation.sim.at(
            index * stagger_s,
            handle._start_download,
            client,
            file_id,
            file_bytes,
        )
    return handle


class _CfsHandle:
    def __init__(self, network, prefetch_kb: int):
        self.network = network
        self.prefetch_bytes = prefetch_kb * 1024
        self.started = 0
        self.speeds: List[float] = []

    def _start_download(self, client: int, file_id: str, size: int) -> None:
        self.started += 1
        self.network.client(client).download(
            file_id,
            size,
            prefetch_bytes=self.prefetch_bytes,
            on_done=self.speeds.append,
        )

    def metrics(self) -> Dict[str, float]:
        speeds = self.speeds
        out = {
            "cfs.downloads_started": self.started,
            "cfs.downloads_completed": len(speeds),
        }
        if speeds:
            out.update(
                {
                    "cfs.speed_mean_bytes_s": sum(speeds) / len(speeds),
                    "cfs.speed_p10_bytes_s": _quantile(speeds, 0.10),
                    "cfs.speed_p50_bytes_s": _quantile(speeds, 0.50),
                    "cfs.speed_p90_bytes_s": _quantile(speeds, 0.90),
                }
            )
        return out


# ----------------------------------------------------------------------
# acdc: adaptive overlay under link perturbation (Fig. 12)
# ----------------------------------------------------------------------

@register_traffic("acdc")
def acdc_traffic(
    emulation,
    members: int = 12,
    target_ratio: float = 0.8,
    perturb_start: float = 60.0,
    perturb_stop: float = 180.0,
    period_s: float = 25.0,
    link_fraction: float = 0.25,
    latency_scale_max: float = 1.25,
    sample_every_s: float = 25.0,
    horizon: float = 300.0,
):
    """An ACDC overlay over ``members`` random VNs; between
    ``perturb_start`` and ``perturb_stop`` the latency of
    ``link_fraction`` of links is rescaled every ``period_s`` (the
    paper's "25% of links by 0-25% every 25 s"). Cost-vs-MST and
    worst-case delay are sampled every ``sample_every_s`` until
    ``horizon`` and summarized per phase."""
    from repro.apps.overlay import AcdcOverlay
    from repro.faults import FaultPlan, Perturbation

    rng = emulation.rng.stream("acdc-members")
    member_vns = sorted(
        rng.sample(range(emulation.num_vns), min(members, emulation.num_vns))
    )
    overlay = AcdcOverlay(emulation, member_vns, delay_target_s=1.0)
    overlay.delay_target_s = overlay.spt_delay() / target_ratio
    # The perturbation rides the declarative fault timeline. A scenario
    # that already declared a plan (``Scenario.faults``) owns it; the
    # standalone workload installs one from its own parameters so plain
    # ``workload("acdc")`` keeps perturbing without extra wiring.
    applier = emulation.fault_applier
    if applier is None:
        applier = emulation.install_fault_plan(
            FaultPlan.of(
                Perturbation(
                    start_s=perturb_start,
                    stop_s=perturb_stop,
                    period_s=period_s,
                    link_fraction=link_fraction,
                    latency_scale=(1.0, latency_scale_max),
                )
            )
        )
    handle = _AcdcHandle(
        emulation, overlay, applier, perturb_start, perturb_stop
    )
    sim = emulation.sim
    for tick in range(int(horizon / sample_every_s) + 1):
        sim.at(tick * sample_every_s, handle._sample)
    overlay.start()
    sim.at(horizon, overlay.stop)
    return handle


class _AcdcHandle:
    def __init__(self, emulation, overlay, applier, perturb_start, perturb_stop):
        self.emulation = emulation
        self.overlay = overlay
        self.applier = applier
        self.perturb_start = perturb_start
        self.perturb_stop = perturb_stop
        self.samples: List[Dict[str, float]] = []

    def _sample(self) -> None:
        self.samples.append(
            {
                "t": self.emulation.sim.now,
                "cost_ratio": self.overlay.tree_cost() / self.overlay.mst_cost(),
                "max_delay": self.overlay.actual_max_delay(),
            }
        )

    def _window(self, lo: float, hi: float) -> List[Dict[str, float]]:
        return [s for s in self.samples if lo <= s["t"] < hi]

    def metrics(self) -> Dict[str, float]:
        out = {
            "acdc.members": len(self.overlay.member_vns),
            "acdc.delay_target_s": self.overlay.delay_target_s,
            "acdc.samples": len(self.samples),
            "acdc.perturbations_applied": self.applier.perturbations_applied,
        }
        if not self.samples:
            return out
        settled = self._window(0.0, self.perturb_start) or self.samples[:1]
        stressed = self._window(self.perturb_start, self.perturb_stop)
        recovered = self._window(self.perturb_stop, float("inf"))
        out["acdc.cost_initial"] = self.samples[0]["cost_ratio"]
        out["acdc.cost_settled"] = min(s["cost_ratio"] for s in settled)
        if stressed:
            out["acdc.cost_stressed"] = sum(
                s["cost_ratio"] for s in stressed
            ) / len(stressed)
            out["acdc.max_delay_stressed"] = max(
                s["max_delay"] for s in stressed
            )
        if recovered:
            out["acdc.cost_recovered"] = min(
                s["cost_ratio"] for s in recovered
            )
        out["acdc.max_delay_final"] = self.samples[-1]["max_delay"]
        return out
