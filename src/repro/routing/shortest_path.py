"""Dijkstra shortest paths and route utilities."""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.topology.graph import Link, Topology


class RouteError(RuntimeError):
    """Raised when a requested route cannot be produced."""


class Hop:
    """One directed traversal of a link, from ``src`` to ``dst``."""

    __slots__ = ("link", "src", "dst")

    def __init__(self, link: Link, src: int, dst: int):
        self.link = link
        self.src = src
        self.dst = dst

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hop):
            return NotImplemented
        return (
            self.link is other.link
            and self.src == other.src
            and self.dst == other.dst
        )

    def __hash__(self) -> int:
        return hash((id(self.link), self.src, self.dst))

    def __repr__(self) -> str:
        return f"<Hop {self.src}->{self.dst} via link {self.link.id}>"


Route = Tuple[Hop, ...]

WeightSpec = Union[str, Callable[[Link], float]]


def _weight_fn(weight: WeightSpec) -> Callable[[Link], float]:
    if callable(weight):
        return weight
    if weight == "latency":
        return lambda link: link.latency_s
    if weight == "hops":
        return lambda link: 1.0
    if weight == "cost":
        return lambda link: link.cost
    raise RouteError(f"unknown weight spec {weight!r}")


def dijkstra(
    topology: Topology,
    source: int,
    weight: WeightSpec = "latency",
) -> Tuple[Dict[int, float], Dict[int, Hop]]:
    """Single-source shortest paths over up links.

    Returns ``(dist, prev)`` where ``prev[node]`` is the :class:`Hop`
    by which ``node`` is reached on its shortest path from ``source``.
    Unreachable nodes are absent from both maps... except ``source``
    itself, present in ``dist`` with distance 0 and absent from
    ``prev``.
    """
    weigh = _weight_fn(weight)
    dist: Dict[int, float] = {source: 0.0}
    prev: Dict[int, Hop] = {}
    visited: set[int] = set()
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        for neighbor, link in topology.neighbors(node):
            if neighbor in visited:
                continue
            candidate = d + weigh(link)
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                prev[neighbor] = Hop(link, node, neighbor)
                heapq.heappush(heap, (candidate, neighbor))
    return dist, prev


def extract_route(prev: Dict[int, Hop], source: int, dest: int) -> Optional[Route]:
    """Materialize the route from a ``prev`` map; None if unreachable.

    A route from a node to itself is the empty tuple.
    """
    if dest == source:
        return ()
    if dest not in prev:
        return None
    hops: List[Hop] = []
    node = dest
    while node != source:
        hop = prev[node]
        hops.append(hop)
        node = hop.src
    hops.reverse()
    return tuple(hops)


def route_latency(route: Route) -> float:
    """Sum of link propagation latencies along the route."""
    return sum(hop.link.latency_s for hop in route)


def route_bottleneck_bandwidth(route: Route) -> float:
    """Minimum link bandwidth along the route (inf for empty routes)."""
    if not route:
        return float("inf")
    return min(hop.link.bandwidth_bps for hop in route)


def route_reliability(route: Route) -> float:
    """Product of link reliabilities (1 - loss) along the route."""
    reliability = 1.0
    for hop in route:
        reliability *= hop.link.reliability
    return reliability


def route_cost(route: Route) -> float:
    """Sum of abstract link costs along the route."""
    return sum(hop.link.cost for hop in route)
