"""Routing services: precomputed matrix, demand cache, dynamic wrapper."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.topology.graph import Link, Topology
from repro.routing.shortest_path import (
    Hop,
    Route,
    RouteError,
    WeightSpec,
    dijkstra,
    extract_route,
)


class RoutingService:
    """Interface: map a (source node, destination node) pair to the
    ordered sequence of directed hops between them."""

    def route(self, src: int, dst: int) -> Optional[Route]:
        raise NotImplementedError

    def invalidate(self) -> None:
        """Discard state derived from the topology (after changes)."""
        raise NotImplementedError


class PrecomputedRouting(RoutingService):
    """The paper's O(n^2) routing matrix.

    Shortest-path trees are computed eagerly for every source in
    ``sources`` (default: all client nodes); route objects themselves
    are materialized lazily and memoized, since a 1000-VN matrix holds
    ~10^6 of them and most experiments touch a small subset.
    """

    def __init__(
        self,
        topology: Topology,
        sources: Optional[Iterable[int]] = None,
        weight: WeightSpec = "latency",
    ):
        self._topology = topology
        self._weight = weight
        if sources is None:
            sources = [node.id for node in topology.clients()]
        self._sources = list(sources)
        self._prev: Dict[int, Dict[int, Hop]] = {}
        self._routes: Dict[Tuple[int, int], Optional[Route]] = {}
        self._compute()

    def _compute(self) -> None:
        self._prev.clear()
        self._routes.clear()
        for source in self._sources:
            _dist, prev = dijkstra(self._topology, source, self._weight)
            self._prev[source] = prev

    @property
    def lookups_per_pair(self) -> int:
        """Number of (src, dst) route entries addressable: n^2."""
        return len(self._sources) ** 2

    def route(self, src: int, dst: int) -> Optional[Route]:
        """Look up the precomputed route; None when unreachable."""
        key = (src, dst)
        if key in self._routes:
            return self._routes[key]
        prev = self._prev.get(src)
        if prev is None:
            raise RouteError(f"node {src} is not a routing source")
        result = extract_route(prev, src, dst)
        self._routes[key] = result
        return result

    def invalidate(self) -> None:
        self._compute()


class CachedRouting(RoutingService):
    """The paper's hash-based alternative: routes for active flows are
    computed on demand (one Dijkstra per new source, an O(n lg n)
    operation) and cached. ``invalidate`` flushes the cache; the next
    lookups recompute against the current topology."""

    def __init__(self, topology: Topology, weight: WeightSpec = "latency"):
        self._topology = topology
        self._weight = weight
        self._prev: Dict[int, Dict[int, Hop]] = {}
        self._routes: Dict[Tuple[int, int], Optional[Route]] = {}
        self.misses = 0
        self.hits = 0

    def route(self, src: int, dst: int) -> Optional[Route]:
        """Cached lookup; a cold source costs one Dijkstra."""
        key = (src, dst)
        cached = self._routes.get(key, _SENTINEL)
        if cached is not _SENTINEL:
            self.hits += 1
            return cached
        prev = self._prev.get(src)
        if prev is None:
            self.misses += 1
            _dist, prev = dijkstra(self._topology, src, self._weight)
            self._prev[src] = prev
        result = extract_route(prev, src, dst)
        self._routes[key] = result
        return result

    def invalidate(self) -> None:
        self._prev.clear()
        self._routes.clear()


_SENTINEL = object()


class DynamicRouting(RoutingService):
    """The "perfect routing protocol": wraps another service and
    reacts to link/node failures by instantaneously recomputing
    shortest paths (paper Sec. 2.3, 4.3).

    Callbacks registered with :meth:`on_change` fire after every
    recomputation so the emulator can refresh installed routes.
    """

    def __init__(self, inner: RoutingService):
        self._inner = inner
        self._listeners = []
        self.recomputations = 0

    def route(self, src: int, dst: int) -> Optional[Route]:
        return self._inner.route(src, dst)

    def invalidate(self) -> None:
        self._inner.invalidate()
        self.recomputations += 1
        for listener in self._listeners:
            listener()

    def on_change(self, fn) -> None:
        self._listeners.append(fn)

    def link_failed(self, link: Link) -> None:
        """Mark ``link`` down and reroute around it."""
        link.up = False
        self.invalidate()

    def link_recovered(self, link: Link) -> None:
        """Mark ``link`` up and rebalance routes."""
        link.up = True
        self.invalidate()

    def node_failed(self, topology: Topology, node_id: int) -> None:
        """Fail every link incident to ``node_id``."""
        for link in topology.links_of(node_id):
            link.up = False
        self.invalidate()

    def node_recovered(self, topology: Topology, node_id: int) -> None:
        for link in topology.links_of(node_id):
            link.up = True
        self.invalidate()
