"""Hierarchical routing tables (paper Sec. 2.2).

The flat routing matrix costs O(n^2) space. "For common Internet-like
topologies that cluster VNs on stub domains, we could spread lookups
among hierarchical but smaller tables, trading less storage for a
slight increase in lookup cost."

:class:`HierarchicalRouting` implements that design: VNs are grouped
into clusters (their stub domain when the topology is annotated, else
their attachment router); each cluster elects a gateway, and the only
stored state is one shortest-path tree per gateway plus each client's
route to its gateway — O(G*n) instead of O(n^2). A lookup stitches
client -> gateway -> destination and snips any transient cycle where
the segments overlap. Routes may be slightly longer than optimal
(they detour via the gateway); tests and benches quantify both the
storage savings and the stretch.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.routing.service import RoutingService
from repro.routing.shortest_path import (
    Hop,
    Route,
    RouteError,
    WeightSpec,
    dijkstra,
    extract_route,
)
from repro.topology.graph import NodeKind, Topology


def _snip_cycles(hops: List[Hop]) -> Tuple[Hop, ...]:
    """Remove loops from a walk: when a node repeats, drop the hops
    between its first visit and the repeat."""
    result: List[Hop] = []
    position: Dict[int, int] = {}
    if hops:
        position[hops[0].src] = 0
    for hop in hops:
        seen_at = position.get(hop.dst)
        if seen_at is not None:
            # Rewind to the earlier visit of hop.dst; the walk
            # continues from there.
            for removed in result[seen_at:]:
                position.pop(removed.dst, None)
            del result[seen_at:]
            continue
        result.append(hop)
        position[hop.dst] = len(result)
    return tuple(result)


class HierarchicalRouting(RoutingService):
    """Two-level routing: client -> cluster gateway -> destination."""

    def __init__(
        self,
        topology: Topology,
        weight: WeightSpec = "latency",
        cluster_of: Optional[Callable[[int], object]] = None,
    ):
        self.topology = topology
        self.weight = weight
        self._cluster_of = cluster_of or self._default_cluster
        self._clusters: Dict[object, List[int]] = {}
        for node in topology.clients():
            key = self._cluster_of(node.id)
            self._clusters.setdefault(key, []).append(node.id)
        self._gateway: Dict[object, int] = {}
        for key, members in sorted(self._clusters.items(), key=lambda kv: str(kv[0])):
            self._gateway[key] = self._elect_gateway(members)
        # One shortest-path tree per gateway; built lazily, retained.
        self._trees: Dict[int, Dict[int, Hop]] = {}

    # -- structure -------------------------------------------------------

    def _default_cluster(self, client_id: int) -> object:
        node = self.topology.node(client_id)
        domain = node.attrs.get("domain")
        if domain is not None:
            return domain
        neighbors = [n for n, _l in self.topology.neighbors(client_id)]
        return ("router", min(neighbors)) if neighbors else ("isolated", client_id)

    def _elect_gateway(self, members: List[int]) -> int:
        """The cluster's gateway: the most common attachment router
        of its members (falling back to the first member)."""
        attachments = Counter()
        for client in members:
            for neighbor, _link in self.topology.neighbors(client):
                if self.topology.node(neighbor).kind is not NodeKind.CLIENT:
                    attachments[neighbor] += 1
        if attachments:
            # Deterministic tie-break by id.
            best = max(sorted(attachments), key=lambda n: attachments[n])
            return best
        return members[0]

    def _tree(self, root: int) -> Dict[int, Hop]:
        tree = self._trees.get(root)
        if tree is None:
            _dist, tree = dijkstra(self.topology, root, self.weight)
            self._trees[root] = tree
        return tree

    # -- RoutingService ------------------------------------------------------

    def route(self, src: int, dst: int) -> Optional[Route]:
        """src -> gateway -> dst, stitched and cycle-snipped."""
        if src == dst:
            return ()
        key = self._cluster_of(src)
        if key not in self._gateway:
            raise RouteError(f"node {src} is not a clustered VN")
        gateway = self._gateway[key]
        tree = self._tree(gateway)
        # Gateway -> src reversed gives src -> gateway (undirected links).
        to_src = extract_route(tree, gateway, src)
        to_dst = extract_route(tree, gateway, dst)
        if to_src is None or to_dst is None:
            return None
        up = [Hop(hop.link, hop.dst, hop.src) for hop in reversed(to_src)]
        route = _snip_cycles(up + list(to_dst))
        return route if route else None

    def invalidate(self) -> None:
        self._trees.clear()

    # -- accounting (the storage trade the paper describes) --------------------

    @property
    def num_clusters(self) -> int:
        return len(self._clusters)

    def table_entries(self) -> int:
        """Stored entries: one tree of n next-hops per gateway."""
        return len(self._gateway) * self.topology.num_nodes

    def flat_matrix_entries(self) -> int:
        """What the O(n^2) matrix would store for the same VNs."""
        clients = len(self.topology.clients())
        return clients * clients
