"""Route computation over target topologies.

The Binding phase pre-computes shortest-path routes among all pairs of
VNs and installs them in a routing matrix on each core node
(:class:`PrecomputedRouting`, the paper's O(n^2) design). The paper's
proposed alternative — a hash-based cache of routes for active flows,
computed on demand with Dijkstra — is :class:`CachedRouting`.
:class:`DynamicRouting` layers the "perfect routing protocol"
assumption on top: on any link/node failure it instantaneously
recomputes shortest paths.
"""

from repro.routing.shortest_path import (
    Hop,
    Route,
    RouteError,
    dijkstra,
    extract_route,
    route_latency,
    route_bottleneck_bandwidth,
    route_reliability,
    route_cost,
)
from repro.routing.service import (
    RoutingService,
    PrecomputedRouting,
    CachedRouting,
    DynamicRouting,
)
from repro.routing.hierarchical import HierarchicalRouting

__all__ = [
    "Hop",
    "Route",
    "RouteError",
    "dijkstra",
    "extract_route",
    "route_latency",
    "route_bottleneck_bandwidth",
    "route_reliability",
    "route_cost",
    "RoutingService",
    "PrecomputedRouting",
    "CachedRouting",
    "DynamicRouting",
    "HierarchicalRouting",
]
