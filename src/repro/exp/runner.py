"""The resilient sweep runner: a work queue over local processes.

One :class:`~repro.exp.suite.RunSpec` at a time is rebuilt from its
spec (:meth:`Scenario.from_spec` — the same portability contract the
multiprocess backend uses), run to its horizon, and its
:class:`~repro.obs.RunReport` written to
``<out-dir>/<suite>/<run-id>/report.json``. Everything the runner
does is restartable:

- reports are written atomically (temp file + ``os.replace``), so an
  interrupted sweep never leaves a torn report;
- ``resume=True`` skips any run id whose report already exists and
  matches — re-running an interrupted sweep completes exactly the
  missing runs, and because each run is deterministic the completed
  sweep's aggregate output is byte-identical to an uninterrupted one
  (the CI ``exp-smoke`` job enforces this);
- per-run failures are retried under a
  :class:`~repro.resilience.policy.RetryPolicy` and recorded, never
  fatal to the sweep;
- per-run budgets (``run_max_wall``/``run_max_events``) ride the
  scenario's own supervised run path
  (:meth:`Scenario.resilience`), and a sweep-level wall budget uses
  :class:`~repro.resilience.policy.BudgetGuard`.

``workers <= 1`` executes inline in this process — fully
deterministic ordering, the mode CI uses. ``workers > 1`` fans runs
out to child processes (fork where available, spawn otherwise, like
:mod:`repro.engine.parallel`) with at most ``workers`` in flight.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.api import Scenario
from repro.exp.suite import Experiment, RunSpec
from repro.resilience import BudgetExceeded, BudgetGuard, RetryPolicy, RunAborted

__all__ = [
    "execute_run",
    "run_sweep",
    "RunOutcome",
    "SweepResult",
    "run_dir",
    "report_path",
    "load_manifest",
    "MANIFEST_NAME",
]

MANIFEST_NAME = "suite.json"
REPORT_NAME = "report.json"


# ----------------------------------------------------------------------
# One run
# ----------------------------------------------------------------------

def execute_run(
    runspec: RunSpec,
    max_wall: Optional[float] = None,
    max_events: Optional[int] = None,
) -> Dict[str, Any]:
    """Build, run, and label one sweep point; returns the report dict.

    Module-level and driven purely by the picklable ``runspec``, so it
    executes identically inline or inside a worker process. A per-run
    budget abort raises :class:`RunAborted` with the partial report
    already labeled.
    """
    scenario = Scenario.from_spec(runspec.spec)
    scenario.observe(True)  # from_spec defaults workers to no-obs
    if max_wall is not None or max_events is not None:
        scenario.resilience(max_wall=max_wall, max_events=max_events)
    labels = {
        "suite": runspec.suite,
        "run_id": runspec.run_id,
        "index": runspec.index,
        **runspec.point_dict,
    }
    try:
        report = scenario.run(until=runspec.until)
    except RunAborted as abort:
        if abort.report is not None:
            abort.report.labels = labels
        raise
    report.labels = labels
    return report.to_dict()


def _child_main(conn, runspec, max_wall, max_events) -> None:
    try:
        payload = execute_run(
            runspec, max_wall=max_wall, max_events=max_events
        )
        conn.send(("ok", payload, ""))
    except RunAborted as abort:
        conn.send(
            (
                "aborted",
                abort.report.to_dict() if abort.report else None,
                abort.reason,
            )
        )
    except Exception as exc:  # noqa: BLE001 — report, don't crash the sweep
        conn.send(("error", None, f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Layout
# ----------------------------------------------------------------------

def run_dir(out_dir: str, suite: str, run_id: str) -> str:
    return os.path.join(out_dir, suite, run_id)


def report_path(out_dir: str, suite: str, run_id: str) -> str:
    return os.path.join(run_dir(out_dir, suite, run_id), REPORT_NAME)


def _atomic_write_json(path: str, payload: Any) -> None:
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def _is_complete(out_dir: str, runspec: RunSpec) -> bool:
    """A run is complete iff its report loads and carries its own id —
    a torn or foreign file is re-run, never trusted."""
    try:
        with open(report_path(out_dir, runspec.suite, runspec.run_id)) as fh:
            raw = json.load(fh)
    except (OSError, ValueError):
        return False
    return raw.get("labels", {}).get("run_id") == runspec.run_id


def _write_manifest(
    out_dir: str, experiment: Experiment, runs: List[RunSpec], quick: bool
) -> str:
    """Record the sweep's exact expansion so ``exp report`` / ``exp
    ls`` need no ``--quick`` re-guessing: the manifest *is* the row
    order. Deliberately timestamp-free so interrupted and fresh
    sweeps write identical bytes."""
    manifest = {
        "format": "repro-exp/1",
        "suite": experiment.name,
        "quick": bool(quick),
        "until": runs[0].until if runs else experiment.until,
        "axes": experiment.axis_names(quick=quick),
        "run_ids": [r.run_id for r in runs],
        "points": [r.point_dict for r in runs],
    }
    path = os.path.join(out_dir, experiment.name, MANIFEST_NAME)
    _atomic_write_json(path, manifest)
    return path


def load_manifest(out_dir: str, suite: str) -> Dict[str, Any]:
    path = os.path.join(out_dir, suite, MANIFEST_NAME)
    try:
        with open(path) as handle:
            return json.load(handle)
    except OSError:
        raise ValueError(
            f"no sweep manifest at {path}; run "
            f"`repro-net exp run {suite}` first"
        ) from None


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------

@dataclass
class RunOutcome:
    """What happened to one run id in this sweep invocation."""

    run_id: str
    #: ok | skipped (already complete) | aborted (per-run budget) |
    #: error (failed after retries) | pending (limit/budget cut)
    status: str
    detail: str = ""
    retries: int = 0


@dataclass
class SweepResult:
    suite: str
    outcomes: List[RunOutcome] = field(default_factory=list)
    #: True when the sweep-level wall budget cut execution short.
    aborted: bool = False

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return tally

    @property
    def failed(self) -> int:
        return sum(
            1 for o in self.outcomes if o.status in ("error", "aborted")
        )

    @property
    def complete(self) -> bool:
        return not self.aborted and all(
            o.status in ("ok", "skipped") for o in self.outcomes
        )

    def summary(self) -> str:
        parts = ", ".join(
            f"{count} {status}" for status, count in sorted(self.counts().items())
        )
        suffix = " [sweep budget exhausted]" if self.aborted else ""
        return f"sweep {self.suite}: {parts}{suffix}"


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def run_sweep(
    experiment: Experiment,
    out_dir: str = "results",
    quick: bool = False,
    workers: int = 1,
    limit: Optional[int] = None,
    resume: bool = False,
    retries: int = 2,
    max_wall: Optional[float] = None,
    run_max_wall: Optional[float] = None,
    run_max_events: Optional[int] = None,
    log=None,
) -> SweepResult:
    """Execute (the incomplete part of) a suite's run matrix.

    ``limit`` stops after that many executed runs — the deterministic
    stand-in for an interruption that CI uses. ``resume`` skips run
    ids whose reports already exist. ``retries`` is the total attempt
    bound per run (:class:`RetryPolicy` semantics); per-run budget
    aborts are deliberate and are not retried.
    """
    say = log or (lambda *_: None)
    runs = experiment.matrix(quick=quick)
    suite_dir = os.path.join(out_dir, experiment.name)
    os.makedirs(suite_dir, exist_ok=True)
    _write_manifest(out_dir, experiment, runs, quick)

    outcomes: Dict[str, RunOutcome] = {}
    todo: List[RunSpec] = []
    for runspec in runs:
        if resume and _is_complete(out_dir, runspec):
            outcomes[runspec.run_id] = RunOutcome(runspec.run_id, "skipped")
        else:
            os.makedirs(
                run_dir(out_dir, runspec.suite, runspec.run_id),
                exist_ok=True,
            )
            todo.append(runspec)
    if limit is not None and limit >= 0:
        for runspec in todo[limit:]:
            outcomes[runspec.run_id] = RunOutcome(
                runspec.run_id, "pending", detail="beyond --limit"
            )
        todo = todo[:limit]

    policy = RetryPolicy(max_attempts=max(1, retries))
    budget = BudgetGuard(max_wall_s=max_wall).start()
    aborted = False
    if workers <= 1:
        aborted = _drain_inline(
            todo, out_dir, outcomes, policy, budget,
            run_max_wall, run_max_events, say,
        )
    else:
        aborted = _drain_pool(
            todo, out_dir, outcomes, policy, budget, workers,
            run_max_wall, run_max_events, say,
        )
    ordered = [outcomes[runspec.run_id] for runspec in runs]
    return SweepResult(
        suite=experiment.name, outcomes=ordered, aborted=aborted
    )


def _record(out_dir, runspec, status, payload, detail, retries, outcomes, say):
    if status == "ok":
        _atomic_write_json(
            report_path(out_dir, runspec.suite, runspec.run_id), payload
        )
    elif payload is not None:
        # Partial (aborted) reports are kept beside, never as, the
        # completion marker — resume re-runs them.
        _atomic_write_json(
            os.path.join(
                run_dir(out_dir, runspec.suite, runspec.run_id),
                "aborted.json",
            ),
            payload,
        )
    outcomes[runspec.run_id] = RunOutcome(
        runspec.run_id, status, detail=detail, retries=retries
    )
    say(f"  {runspec.run_id}: {status}" + (f" ({detail})" if detail else ""))


def _drain_inline(
    todo, out_dir, outcomes, policy, budget,
    run_max_wall, run_max_events, say,
) -> bool:
    """Sequential execution in this process (the deterministic mode)."""
    for position, runspec in enumerate(todo):
        try:
            budget.check()
        except BudgetExceeded as exc:
            for rest in todo[position:]:
                outcomes[rest.run_id] = RunOutcome(
                    rest.run_id, "pending", detail=str(exc)
                )
            return True
        retry_count = [0]

        def attempt(runspec=runspec):
            try:
                return "ok", execute_run(
                    runspec,
                    max_wall=run_max_wall,
                    max_events=run_max_events,
                ), ""
            except RunAborted as abort:
                return (
                    "aborted",
                    abort.report.to_dict() if abort.report else None,
                    abort.reason,
                )

        def count_retry(attempt_index, exc):
            retry_count[0] = attempt_index

        try:
            status, payload, detail = policy.call(
                attempt, on_retry=count_retry
            )
        except Exception as exc:  # noqa: BLE001 — sweep survives run failures
            status, payload = "error", None
            detail = f"{type(exc).__name__}: {exc}"
        _record(
            out_dir, runspec, status, payload, detail,
            retry_count[0], outcomes, say,
        )
    return False


def _drain_pool(
    todo, out_dir, outcomes, policy, budget, workers,
    run_max_wall, run_max_events, say,
) -> bool:
    """Fan runs out to child processes, at most ``workers`` in flight.

    A child that exits without reporting (crash, OOM kill) or exceeds
    the parent-side hard timeout is retried like an inline failure.
    """
    ctx = _mp_context()
    # A hung child cannot check its own budget; give the parent a
    # generous hard stop when a per-run wall budget exists.
    hard_timeout = run_max_wall * 2 + 30.0 if run_max_wall else None
    queue = deque((runspec, 1) for runspec in todo)
    active: Dict[str, tuple] = {}

    def spawn(runspec, attempt):
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_child_main,
            args=(child_conn, runspec, run_max_wall, run_max_events),
        )
        process.start()
        child_conn.close()
        active[runspec.run_id] = (
            process, parent_conn, runspec, attempt, time.perf_counter(),
        )

    def finish(runspec, attempt, status, payload, detail):
        if status == "error" and attempt < policy.max_attempts:
            policy.sleep(attempt)
            queue.append((runspec, attempt + 1))
            return
        _record(
            out_dir, runspec, status, payload, detail,
            attempt - 1, outcomes, say,
        )

    aborted = False
    while queue or active:
        try:
            budget.check(pids=[entry[0].pid for entry in active.values()])
        except BudgetExceeded as exc:
            aborted = True
            for process, conn, runspec, _, _ in active.values():
                process.terminate()
                process.join()
                conn.close()
                outcomes[runspec.run_id] = RunOutcome(
                    runspec.run_id, "pending", detail=str(exc)
                )
            for runspec, _ in queue:
                outcomes[runspec.run_id] = RunOutcome(
                    runspec.run_id, "pending", detail=str(exc)
                )
            active.clear()
            queue.clear()
            break
        while queue and len(active) < workers:
            spawn(*queue.popleft())
        progressed = False
        for run_id, (process, conn, runspec, attempt, t0) in list(
            active.items()
        ):
            if conn.poll(0):
                status, payload, detail = conn.recv()
                process.join()
                conn.close()
                del active[run_id]
                finish(runspec, attempt, status, payload, detail)
                progressed = True
            elif not process.is_alive():
                process.join()
                conn.close()
                del active[run_id]
                finish(
                    runspec, attempt, "error", None,
                    f"worker exited without a report "
                    f"(exitcode {process.exitcode})",
                )
                progressed = True
            elif (
                hard_timeout is not None
                and time.perf_counter() - t0 > hard_timeout
            ):
                process.terminate()
                process.join()
                conn.close()
                del active[run_id]
                finish(
                    runspec, attempt, "error", None,
                    f"worker hung past {hard_timeout:g}s; terminated",
                )
                progressed = True
        if not progressed:
            time.sleep(0.02)
    return aborted
