"""repro.exp: declarative experiment suites and the sweep runner.

The experiment layer turns the paper's figures into one-command
regenerations::

    repro-net exp run fig4 --quick
    repro-net exp report fig4

An :class:`Experiment` declares a base scenario plus sweep axes and
expands into deterministic :class:`RunSpec` s (:mod:`repro.exp.suite`);
:func:`run_sweep` executes them with per-run resilience and
resumable, content-addressed ``results/<suite>/<run-id>/`` output
(:mod:`repro.exp.runner`); :func:`aggregate_suite` folds the reports
into a tidy CSV/JSON dataset keyed by the axes
(:mod:`repro.exp.aggregate`). Importing this package registers the
built-in paper suites (:mod:`repro.exp.suites`).
"""

from repro.exp.aggregate import (
    Dataset,
    NONDETERMINISTIC_FIELDS,
    aggregate_suite,
    report_digest,
)
from repro.exp.runner import (
    MANIFEST_NAME,
    RunOutcome,
    SweepResult,
    execute_run,
    load_manifest,
    report_path,
    run_dir,
    run_sweep,
)
from repro.exp.suite import (
    SUITES,
    Experiment,
    RunSpec,
    get_suite,
    register_suite,
    run_id_for,
    suite_names,
)
from repro.exp import suites as _builtin_suites  # noqa: F401

__all__ = [
    "Experiment",
    "RunSpec",
    "SUITES",
    "register_suite",
    "get_suite",
    "suite_names",
    "run_id_for",
    "run_sweep",
    "execute_run",
    "RunOutcome",
    "SweepResult",
    "run_dir",
    "report_path",
    "load_manifest",
    "MANIFEST_NAME",
    "aggregate_suite",
    "Dataset",
    "report_digest",
    "NONDETERMINISTIC_FIELDS",
]
