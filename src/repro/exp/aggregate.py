"""Fold per-run reports into one tidy dataset per suite.

The runner leaves one ``report.json`` per run id; this module walks
the sweep manifest (``suite.json`` — the authoritative row order),
extracts each suite's declared columns, and writes
``<out-dir>/<suite>/dataset.csv`` and ``dataset.json``: one row per
run, keyed by the sweep axes, ready for plotting a paper figure.

Determinism contract: datasets contain *only* virtual-time-derived
values — ``wall_time_s`` and ``created_at`` never enter a row or the
per-report digest — so an interrupted-then-resumed sweep aggregates
to byte-identical output as an uninterrupted one. The ``digest``
column (a hash of the report minus its wall-clock fields) is what the
CI ``exp-smoke`` job compares.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exp.runner import load_manifest, report_path
from repro.exp.suite import Experiment

__all__ = [
    "Dataset",
    "aggregate_suite",
    "report_digest",
    "NONDETERMINISTIC_FIELDS",
]

#: Report fields that legitimately differ between same-seed runs;
#: everything else must be reproducible.
NONDETERMINISTIC_FIELDS = ("wall_time_s", "created_at")


def report_digest(report_dict: Dict[str, Any]) -> str:
    """Content hash of a report with its wall-clock content removed —
    equal iff two runs computed the same thing.

    Besides ``wall_time_s``/``created_at``, dict-valued metrics are
    dropped: those are the registry's timing histograms
    (``phase.run_s``, ``pipe.enqueue_s``, ...), wall-clock
    measurements by construction. Every scalar metric is
    virtual-time-derived and must reproduce.
    """
    clean = {
        key: value
        for key, value in report_dict.items()
        if key not in NONDETERMINISTIC_FIELDS
    }
    clean["metrics"] = {
        key: value
        for key, value in report_dict.get("metrics", {}).items()
        if not isinstance(value, dict)
    }
    payload = json.dumps(clean, sort_keys=True).encode()
    return hashlib.sha1(payload).hexdigest()


def _column_value(spec: Any, report_dict: Dict[str, Any]) -> Any:
    if callable(spec):
        return spec(report_dict)
    metrics = report_dict.get("metrics", {})
    if spec in metrics:
        return metrics[spec]
    return report_dict.get(spec)


@dataclass
class Dataset:
    """One suite's tidy table: a row per run, keyed by the axes."""

    suite: str
    fieldnames: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return all(row.get("status") == "ok" for row in self.rows)

    def to_csv(self) -> str:
        out = io.StringIO()
        writer = csv.DictWriter(
            out, fieldnames=self.fieldnames, restval="", lineterminator="\n"
        )
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        return out.getvalue()

    def to_json(self) -> str:
        return json.dumps(
            {
                "format": "repro-exp-dataset/1",
                "suite": self.suite,
                "columns": self.fieldnames,
                "rows": self.rows,
            },
            indent=2,
            sort_keys=True,
        )

    def save(self, suite_dir: str) -> Dict[str, str]:
        """Write ``dataset.csv`` + ``dataset.json``; returns paths."""
        os.makedirs(suite_dir, exist_ok=True)
        paths = {
            "csv": os.path.join(suite_dir, "dataset.csv"),
            "json": os.path.join(suite_dir, "dataset.json"),
        }
        with open(paths["csv"], "w") as handle:
            handle.write(self.to_csv())
        with open(paths["json"], "w") as handle:
            handle.write(self.to_json() + "\n")
        return paths

    def summary(self) -> str:
        done = sum(1 for row in self.rows if row.get("status") == "ok")
        return f"dataset {self.suite}: {done}/{len(self.rows)} runs aggregated"


def aggregate_suite(
    experiment: Experiment,
    out_dir: str = "results",
    manifest: Optional[Dict[str, Any]] = None,
) -> Dataset:
    """Assemble the suite's dataset from whatever reports exist.

    Rows follow the manifest's expansion order exactly; runs without
    a loadable report appear with ``status`` ``missing`` and empty
    value cells, so partial sweeps still aggregate (and ``exp ls``
    can show progress) without inventing data.
    """
    manifest = manifest or load_manifest(out_dir, experiment.name)
    axes: List[str] = manifest.get("axes", [])
    columns = list(experiment.columns)
    fieldnames = ["run_id", *axes, "status", *columns, "digest"]
    rows: List[Dict[str, Any]] = []
    for run_id, point in zip(manifest["run_ids"], manifest["points"]):
        row: Dict[str, Any] = {"run_id": run_id}
        for axis in axes:
            row[axis] = point.get(axis)
        try:
            with open(report_path(out_dir, experiment.name, run_id)) as fh:
                raw = json.load(fh)
        except (OSError, ValueError):
            row["status"] = "missing"
            rows.append(row)
            continue
        row["status"] = "ok"
        for name in columns:
            row[name] = _column_value(experiment.columns[name], raw)
        row["digest"] = report_digest(raw)
        rows.append(row)
    return Dataset(suite=experiment.name, fieldnames=fieldnames, rows=rows)
