"""Declarative experiment suites: a base scenario plus sweep axes.

The paper's results are sweeps — Fig. 4 sweeps hop counts and flow
counts, Figs. 7-9 sweep CFS prefetch windows, Fig. 12 sweeps topology
scale — so the unit of experiment definition here is the *matrix*,
not the run. An :class:`Experiment` names a base scenario (a
:class:`~repro.api.ScenarioSpec`, an unbuilt
:class:`~repro.api.Scenario`, or a factory callable for axes that
change the topology itself) and a dict of axes; :meth:`.matrix`
expands the cartesian product into a deterministic list of
:class:`RunSpec` s with stable, content-derived run ids. The sweep
runner (:mod:`repro.exp.runner`) executes those; the aggregation
layer (:mod:`repro.exp.aggregate`) folds the resulting reports into
one tidy dataset per suite, keyed by the axes.

Axis values are applied through
:meth:`ScenarioSpec.with_overrides` — the single sanctioned override
path — so an axis can name anything it accepts: spec fields
(``seed``, ``cores``, ``mode``), :class:`EmulationConfig` knobs, or
parameters of a registered traffic entry (``flows``,
``prefetch_kb``). Unknown names fail at expansion time, before any
run starts.
"""

from __future__ import annotations

import hashlib
import inspect
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.api import Scenario, ScenarioSpec

__all__ = [
    "RunSpec",
    "Experiment",
    "SUITES",
    "register_suite",
    "get_suite",
    "suite_names",
    "run_id_for",
]


def _slug(value: Any) -> str:
    return "".join(
        c if c.isalnum() or c in "._-" else "-" for c in str(value)
    )


def run_id_for(
    suite: str, until: float, point: Tuple[Tuple[str, Any], ...]
) -> str:
    """Stable, content-derived id for one sweep point.

    Human-readable axis slug plus a short hash over (suite, until,
    point) — so the same point always lands in the same
    ``results/<suite>/<run-id>/`` directory across sweeps, while a
    changed horizon or axis value yields a fresh directory instead of
    silently reusing stale reports.
    """
    payload = repr((suite, float(until), tuple(sorted(point)))).encode()
    digest = hashlib.sha1(payload).hexdigest()[:8]
    slug = "_".join(f"{k}={_slug(v)}" for k, v in point) or "base"
    return f"{slug}-{digest}"


@dataclass(frozen=True)
class RunSpec:
    """One executable sweep point: a fully-resolved scenario spec plus
    its coordinates in the suite's matrix. Picklable — this is what
    crosses into worker processes."""

    suite: str
    index: int
    run_id: str
    point: Tuple[Tuple[str, Any], ...]
    spec: ScenarioSpec
    until: float

    @property
    def point_dict(self) -> Dict[str, Any]:
        return dict(self.point)


class Experiment:
    """A named run matrix: base scenario x axes -> list of runs.

    ``base`` may be:

    - a :class:`ScenarioSpec` — axes apply via ``with_overrides``;
    - an unbuilt :class:`Scenario` — snapshotted with ``to_spec()``;
    - a callable — invoked per point with whichever axis values its
      signature declares (axes the factory does not accept still go
      through ``with_overrides``). This is how axes that change the
      *topology* (Fig. 4's ``hops``) are expressed: the factory
      rebuilds the scenario, override knobs handle the rest.

    ``columns`` maps dataset column names to either a metric name
    (looked up in the report's ``metrics``, falling back to top-level
    report fields like ``virtual_time_s``) or a callable taking the
    raw report dict. ``quick_axes``/``quick_until`` define the
    CI-sized variant behind ``repro-net exp run <suite> --quick``.
    """

    def __init__(
        self,
        name: str,
        base: Union[ScenarioSpec, Scenario, Callable[..., Any]],
        until: float,
        axes: Optional[Dict[str, List[Any]]] = None,
        columns: Optional[Dict[str, Any]] = None,
        quick_axes: Optional[Dict[str, List[Any]]] = None,
        quick_until: Optional[float] = None,
        description: str = "",
    ) -> None:
        if until <= 0:
            raise ValueError(f"until must be > 0, got {until}")
        self.name = name
        self.base = base
        self.until = float(until)
        self.axes = dict(axes or {})
        self.columns = dict(columns or {})
        self.quick_axes = dict(quick_axes) if quick_axes else None
        self.quick_until = quick_until
        self.description = description
        for axis, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {axis!r} has no values")

    def _factory_params(self) -> Optional[set]:
        """Axis names the base factory consumes directly; None when
        the factory takes **kwargs (consumes everything)."""
        signature = inspect.signature(self.base)
        names = set()
        for param in signature.parameters.values():
            if param.kind is inspect.Parameter.VAR_KEYWORD:
                return None
            names.add(param.name)
        return names

    def spec_for(self, point: Dict[str, Any]) -> ScenarioSpec:
        """Resolve one axis point into a concrete ScenarioSpec."""
        if isinstance(self.base, ScenarioSpec):
            return self.base.with_overrides(**point)
        if isinstance(self.base, Scenario):
            return self.base.to_spec().with_overrides(**point)
        params = self._factory_params()
        if params is None:
            consumed = dict(point)
        else:
            consumed = {k: v for k, v in point.items() if k in params}
        produced = self.base(**consumed)
        spec = (
            produced.to_spec()
            if isinstance(produced, Scenario)
            else produced
        )
        leftover = {k: v for k, v in point.items() if k not in consumed}
        return spec.with_overrides(**leftover) if leftover else spec

    def matrix(self, quick: bool = False) -> List[RunSpec]:
        """Expand the axes into the deterministic run list.

        Axes expand in declaration order with the last axis varying
        fastest; the returned order *is* the dataset row order.
        """
        axes = self.quick_axes if quick and self.quick_axes else self.axes
        until = (
            self.quick_until
            if quick and self.quick_until is not None
            else self.until
        )
        names = list(axes)
        runs: List[RunSpec] = []
        for index, values in enumerate(
            itertools.product(*(axes[n] for n in names))
        ):
            point = tuple(zip(names, values))
            runs.append(
                RunSpec(
                    suite=self.name,
                    index=index,
                    run_id=run_id_for(self.name, until, point),
                    point=point,
                    spec=self.spec_for(dict(point)),
                    until=until,
                )
            )
        return runs

    def axis_names(self, quick: bool = False) -> List[str]:
        axes = self.quick_axes if quick and self.quick_axes else self.axes
        return list(axes)

    def __repr__(self) -> str:
        return (
            f"<Experiment {self.name!r} axes={list(self.axes)} "
            f"until={self.until:g}>"
        )


#: The suite registry: ``repro-net exp run <name>`` looks here.
SUITES: Dict[str, Experiment] = {}


def register_suite(experiment: Experiment) -> Experiment:
    if experiment.name in SUITES:
        raise ValueError(f"suite {experiment.name!r} already registered")
    SUITES[experiment.name] = experiment
    return experiment


def get_suite(name: str) -> Experiment:
    try:
        return SUITES[name]
    except KeyError:
        raise ValueError(
            f"unknown suite {name!r}; valid: {', '.join(suite_names())}"
        ) from None


def suite_names() -> List[str]:
    return sorted(SUITES)
