"""Built-in suites: the paper's figures as declarative run matrices.

Importing this module registers four suites; ``repro-net exp run
<name> [--quick] && repro-net exp report <name>`` regenerates a
figure's dataset in one command.

``smoke``
    4 runs over the shared-bottleneck dumbbell (seed x flows) — the
    CI interrupt/resume fixture, small enough for seconds.

``fig4``
    Emulator capacity vs. per-path hop count: netperf pairs over
    private chains on one core with gigabit edges, sweeping (hops,
    flows). Columns give packets/sec forwarded, goodput, and core
    utilization — the Fig. 4 axes.

``fig8``
    CFS download speeds vs. prefetch window (Figs. 7-9): every client
    of the RON-derived topology fetches a file through a Chord ring
    under the reference (exact-time) configuration; columns are the
    per-sweep-point download-speed quantiles the CDFs are drawn from.

``fig12``
    ACDC adaptation under link perturbation: an adaptive overlay on a
    transit-stub topology while 25% of links get their latency scaled
    every 25 s; columns track cost-vs-MST before/during/after the
    perturbation window — the Fig. 12 story.

Full matrices target real figure datasets and take minutes; the
``--quick`` variants cover the same code paths in CI-sized runs.
"""

from __future__ import annotations

from repro.api import Scenario
from repro.engine.randomness import RngRegistry
from repro.exp.suite import Experiment, register_suite
from repro.faults import FaultPlan, Perturbation
from repro.topology import TransitStubSpec, transit_stub_topology
from repro.topology.generators import chain_topology, dumbbell_topology

__all__ = ["SMOKE", "FIG4", "FIG8", "FIG12"]


def _per_virtual_second(metric: str):
    def column(report: dict) -> float:
        elapsed = report.get("virtual_time_s", 0.0)
        if not elapsed:
            return 0.0
        return report.get("metrics", {}).get(metric, 0.0) / elapsed

    return column


# ----------------------------------------------------------------------
# smoke: the CI interrupt/resume fixture
# ----------------------------------------------------------------------

def _smoke_base() -> Scenario:
    return (
        Scenario.from_topology(dumbbell_topology(3), name="smoke")
        .workload("netperf", flows=2)
    )


SMOKE = register_suite(
    Experiment(
        name="smoke",
        base=_smoke_base,
        until=0.4,
        axes={"seed": [1, 2], "flows": [2, 4]},
        columns={
            "goodput_bps": "traffic.netperf.goodput_bps",
            "delivered": "accuracy.packets_delivered",
            "virtual_drops": "accuracy.virtual_drops",
            "events": "sim.events_dispatched",
        },
        description=(
            "4-run dumbbell sweep (seed x flows); the CI "
            "interrupt/resume fixture"
        ),
    )
)


# ----------------------------------------------------------------------
# fig4: capacity vs. hop count
# ----------------------------------------------------------------------

def _fig4_base(hops: int, flows: int) -> Scenario:
    from repro.hardware import GIGABIT_EDGE_SPEC

    return (
        Scenario.from_topology(
            chain_topology(flows, hops), name="fig4"
        )
        .distill("hop-by-hop")
        .assign(1)
        .bind(10)
        .config(edge_spec=GIGABIT_EDGE_SPEC)
        .workload("netperf", flows=flows, pairing="sequential")
    )


FIG4 = register_suite(
    Experiment(
        name="fig4",
        base=_fig4_base,
        until=2.0,
        axes={"hops": [1, 2, 4, 8], "flows": [8, 24]},
        quick_axes={"hops": [1, 4], "flows": [4]},
        quick_until=0.5,
        columns={
            "pps": _per_virtual_second("pipe.arrivals"),
            "goodput_bps": "traffic.netperf.goodput_bps",
            "cpu_utilization": "core.utilization{core=0}",
            "physical_drops": "accuracy.physical_drops",
        },
        description=(
            "emulator capacity vs. per-path hops (netperf chains, "
            "one core, gigabit edges) — Fig. 4"
        ),
    )
)


# ----------------------------------------------------------------------
# fig8: CFS download speed vs. prefetch window
# ----------------------------------------------------------------------

def _fig8_base() -> Scenario:
    from repro.apps.rondata import ron_topology

    topology, _ = ron_topology(seed=7)
    return (
        Scenario.from_topology(topology, name="fig8")
        .bind(12)
        .seed(7)
        .config(reference=True)
        .workload(
            "cfs",
            clients=12,
            prefetch_kb=24,
            file_bytes=1_000_000,
            stagger_s=30.0,
        )
    )


FIG8 = register_suite(
    Experiment(
        name="fig8",
        base=_fig8_base,
        until=420.0,
        axes={"prefetch_kb": [8, 24, 40]},
        quick_axes={
            "prefetch_kb": [8, 40],
            "clients": [4],
            "file_bytes": [200_000],
            "stagger_s": [10.0],
        },
        quick_until=60.0,
        columns={
            "completed": "traffic.cfs.downloads_completed",
            "speed_p10_bytes_s": "traffic.cfs.speed_p10_bytes_s",
            "speed_p50_bytes_s": "traffic.cfs.speed_p50_bytes_s",
            "speed_p90_bytes_s": "traffic.cfs.speed_p90_bytes_s",
            "speed_mean_bytes_s": "traffic.cfs.speed_mean_bytes_s",
        },
        description=(
            "CFS download-speed quantiles vs. prefetch window over "
            "the RON topology — Figs. 7-9"
        ),
    )
)


# ----------------------------------------------------------------------
# fig12: ACDC adaptation under perturbation
# ----------------------------------------------------------------------

_FIG12_SCALES = {
    "small": TransitStubSpec(
        transit_nodes_per_domain=2,
        stub_domains_per_transit_node=2,
        stub_nodes_per_domain=3,
    ),
    "mid": TransitStubSpec(
        transit_nodes_per_domain=4,
        stub_domains_per_transit_node=3,
        stub_nodes_per_domain=4,
    ),
}

_FIG12_MEMBERS = {"small": 8, "mid": 16}


def _fig12_base(scale: str = "small") -> Scenario:
    try:
        spec = _FIG12_SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown fig12 scale {scale!r}; valid: "
            f"{', '.join(sorted(_FIG12_SCALES))}"
        ) from None
    topology = transit_stub_topology(
        spec, RngRegistry(3).stream("fig12-topology")
    )
    return (
        Scenario.from_topology(topology, name="fig12")
        .seed(3)
        .config(reference=True)
        # The perturbation is a declarative timeline entry; the acdc
        # workload below keeps matching perturb_* parameters purely to
        # window its samples. ``with_overrides`` applies perturb_*
        # axes to both at once (PLAN_OVERRIDE_KEYS), so one sweep axis
        # moves the plan and the sampling windows together.
        .faults(
            FaultPlan.of(
                Perturbation(
                    start_s=60.0,
                    stop_s=180.0,
                    period_s=25.0,
                    link_fraction=0.25,
                    latency_scale=(1.0, 1.25),
                )
            )
        )
        .workload(
            "acdc",
            members=_FIG12_MEMBERS[scale],
            perturb_start=60.0,
            perturb_stop=180.0,
            period_s=25.0,
            link_fraction=0.25,
            latency_scale_max=1.25,
            sample_every_s=25.0,
            horizon=240.0,
        )
    )


FIG12 = register_suite(
    Experiment(
        name="fig12",
        base=_fig12_base,
        until=240.0,
        axes={"scale": ["small", "mid"]},
        quick_axes={
            "scale": ["small"],
            "perturb_start": [20.0],
            "perturb_stop": [60.0],
            "sample_every_s": [10.0],
            "horizon": [80.0],
        },
        quick_until=80.0,
        columns={
            "cost_initial": "traffic.acdc.cost_initial",
            "cost_settled": "traffic.acdc.cost_settled",
            "cost_stressed": "traffic.acdc.cost_stressed",
            "cost_recovered": "traffic.acdc.cost_recovered",
            "max_delay_final": "traffic.acdc.max_delay_final",
            "perturbations": "traffic.acdc.perturbations_applied",
        },
        description=(
            "ACDC overlay cost vs. MST before/during/after link "
            "perturbation — Fig. 12"
        ),
    )
)
