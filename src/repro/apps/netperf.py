"""netperf/netserver-style load generators.

The paper's capacity, multi-core, and distillation experiments drive
the emulator with netperf TCP streams; the VN-multiplexing study uses
modified netperf/netserver processes exchanging 1500-byte UDP packets
with a configurable amount of computation per packet (Sec. 4.2).
"""

from __future__ import annotations

import weakref
from typing import Callable, Optional

from repro.core.emulator import Emulation, VirtualNode

NETPERF_PORT = 12865


class TcpStream:
    """A long-running bulk TCP transfer between two VNs.

    The sender keeps its socket buffer topped up so the connection is
    always window- or bandwidth-limited, like netperf TCP_STREAM.
    """

    #: Unsent backlog below which another chunk is queued.
    LOW_WATER = 256 * 1024
    CHUNK = 1024 * 1024

    #: emulation -> {(dst_vn, port): {src_vn: stream}}; lets many
    #: streams share one receiver VN/port, as netserver does. Weakly
    #: keyed so dead emulations release their streams (and a recycled
    #: id() can never alias a stale registry).
    _acceptors = weakref.WeakKeyDictionary()

    def __init__(
        self,
        emulation: Emulation,
        src_vn: int,
        dst_vn: int,
        port: int = NETPERF_PORT,
        start_at: float = 0.0,
    ):
        self.emulation = emulation
        # Timers (start, top-up) touch the *sender's* connection, so
        # they must run on the sender VN's event domain — on a
        # partitioned emulation, scheduling them anywhere else would
        # fire them on another clock (or in another process).
        self.sim = emulation.sim_of_vn(src_vn)
        self.src_vn = src_vn
        self.dst_vn = dst_vn
        self.receiver_conn = None
        self.sender_conn = None
        self._topup_timer = None
        self._marked_bytes = 0
        self._marked_at = 0.0

        per_emulation = TcpStream._acceptors.get(emulation)
        if per_emulation is None:
            per_emulation = {}
            TcpStream._acceptors[emulation] = per_emulation
        streams = per_emulation.get((dst_vn, port))
        if streams is None:
            streams = {}
            per_emulation[(dst_vn, port)] = streams

            def on_connection(conn):
                stream = streams.get(conn.remote_vn)
                if stream is not None:
                    stream.receiver_conn = conn

            emulation.vn(dst_vn).tcp_listen(port, on_connection)
        if src_vn in streams:
            raise ValueError(
                f"duplicate TcpStream vn{src_vn}->vn{dst_vn}:{port}"
            )
        streams[src_vn] = self
        if start_at > 0:
            self.sim.at(start_at, self._connect, port)
        else:
            self._connect(port)

    def _connect(self, port: int) -> None:
        self.sender_conn = self.emulation.vn(self.src_vn).tcp_connect(
            self.dst_vn, port, on_established=self._on_established
        )

    def _on_established(self, conn) -> None:
        conn.send(self.CHUNK)
        self._schedule_topup()

    def _schedule_topup(self) -> None:
        self._topup_timer = self.sim.schedule(0.05, self._topup)

    def _topup(self) -> None:
        conn = self.sender_conn
        if conn is None or conn.state == "closed" or conn.fin_queued:
            return
        unsent = conn.bytes_sent - max(0, conn.snd_nxt - 1)
        if unsent < self.LOW_WATER:
            conn.send(self.CHUNK)
        self._schedule_topup()

    def stop(self) -> None:
        if self._topup_timer is not None:
            self._topup_timer.cancel()
            self._topup_timer = None
        if self.sender_conn is not None:
            self.sender_conn.close()

    # -- measurement -------------------------------------------------------

    @property
    def bytes_received(self) -> int:
        return self.receiver_conn.bytes_received if self.receiver_conn else 0

    def mark(self) -> None:
        """Begin a measurement window."""
        self._marked_bytes = self.bytes_received
        self._marked_at = self.sim.now

    def throughput_bps(self) -> float:
        """Mean goodput since :meth:`mark`."""
        elapsed = self.sim.now - self._marked_at
        if elapsed <= 0:
            return 0.0
        return (self.bytes_received - self._marked_bytes) * 8.0 / elapsed


class UdpSink:
    """netserver's UDP side: counts datagrams and bytes."""

    def __init__(self, vn: VirtualNode, port: int = NETPERF_PORT):
        self.vn = vn
        self.socket = vn.udp_socket(port=port, on_receive=self._receive)
        self.bytes_received = 0
        self.datagrams = 0

    def _receive(self, src, sport, size, payload) -> None:
        self.bytes_received += size
        self.datagrams += 1


class UdpCbrSource:
    """Constant-bit-rate UDP sender (cross-traffic generator)."""

    def __init__(
        self,
        vn: VirtualNode,
        dst_vn: int,
        rate_bps: float,
        packet_bytes: int = 1000,
        port: int = NETPERF_PORT,
        start_at: float = 0.0,
        stop_at: Optional[float] = None,
    ):
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.vn = vn
        self.dst_vn = dst_vn
        self.packet_bytes = packet_bytes
        self.port = port
        self.interval = packet_bytes * 8.0 / rate_bps
        self.stop_at = stop_at
        self.sent = 0
        self.socket = vn.udp_socket()
        self._stopped = False
        vn.stack.sim.at(start_at, self._tick)

    def _tick(self) -> None:
        sim = self.vn.stack.sim
        if self._stopped or (self.stop_at is not None and sim.now >= self.stop_at):
            return
        self.socket.send_to(self.dst_vn, self.port, self.packet_bytes)
        self.sent += 1
        sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._stopped = True


class ParetoOnOffSource:
    """Self-similar cross-traffic: a UDP on/off source with
    Pareto-distributed burst and idle durations.

    Aggregating many such sources produces the long-range-dependent
    ("bursty") traffic real Internet links carry — the property that
    makes real background traffic harder on queues than smooth CBR,
    and the paper's first (most accurate, most expensive) option for
    injecting competing traffic into the VN application mix.
    """

    def __init__(
        self,
        vn: VirtualNode,
        dst_vn: int,
        peak_rate_bps: float,
        packet_bytes: int = 1000,
        shape: float = 1.5,
        mean_on_s: float = 0.5,
        mean_off_s: float = 0.5,
        port: int = NETPERF_PORT,
        rng=None,
        start_at: float = 0.0,
        stop_at: Optional[float] = None,
    ):
        if peak_rate_bps <= 0:
            raise ValueError("rate must be positive")
        if shape <= 1.0:
            raise ValueError("Pareto shape must exceed 1 (finite mean)")
        self.vn = vn
        self.dst_vn = dst_vn
        self.packet_bytes = packet_bytes
        self.port = port
        self.interval = packet_bytes * 8.0 / peak_rate_bps
        self.shape = shape
        # Pareto scale giving the requested means: mean = xm*a/(a-1).
        self._on_scale = mean_on_s * (shape - 1.0) / shape
        self._off_scale = mean_off_s * (shape - 1.0) / shape
        if rng is None:
            # Per-VN stream off the emulation's root seed: independent
            # bursts per sender, reproducible across runs, and adding
            # a burst never perturbs other components' draws.
            rng = vn.emulation.rng.stream(f"netperf-udp-{vn.vn_id}")
        self.rng = rng
        self.stop_at = stop_at
        self.sent = 0
        self.bursts = 0
        self._stopped = False
        self.socket = vn.udp_socket()
        vn.stack.sim.at(start_at, self._start_burst)

    def _pareto(self, scale: float) -> float:
        return scale / (1.0 - self.rng.random()) ** (1.0 / self.shape)

    def _done(self) -> bool:
        sim = self.vn.stack.sim
        return self._stopped or (
            self.stop_at is not None and sim.now >= self.stop_at
        )

    def _start_burst(self) -> None:
        if self._done():
            return
        self.bursts += 1
        burst_end = self.vn.stack.sim.now + self._pareto(self._on_scale)
        self._tick(burst_end)

    def _tick(self, burst_end: float) -> None:
        sim = self.vn.stack.sim
        if self._done():
            return
        if sim.now >= burst_end:
            sim.schedule(self._pareto(self._off_scale), self._start_burst)
            return
        self.socket.send_to(self.dst_vn, self.port, self.packet_bytes)
        self.sent += 1
        sim.schedule(self.interval, self._tick, burst_end)

    def stop(self) -> None:
        self._stopped = True


class ComputePerByteSender:
    """The Sec. 4.2 sender: transmit a 1500-byte UDP packet, then
    spend ``instructions_per_byte * 1500`` instructions of host CPU
    before the next packet.

    Requires the emulation to model edge CPUs
    (``EmulationConfig(model_edge_cpu=True)``); each sender is one VN
    process contributing to the host's multiplexing degree.
    """

    PACKET_BYTES = 1500

    def __init__(
        self,
        vn: VirtualNode,
        dst_vn: int,
        instructions_per_byte: float,
        port: int = NETPERF_PORT,
    ):
        if vn.host.cpu is None:
            raise RuntimeError(
                "ComputePerByteSender needs model_edge_cpu=True"
            )
        self.vn = vn
        self.dst_vn = dst_vn
        self.port = port
        self.instructions = instructions_per_byte * self.PACKET_BYTES
        self.socket = vn.udp_socket()
        self.sent = 0
        self._stopped = False
        self._loop()

    def _loop(self) -> None:
        if self._stopped:
            return
        self.socket.send_to(self.dst_vn, self.port, self.PACKET_BYTES)
        self.sent += 1
        # The inter-packet computation runs on the shared host CPU;
        # the next send happens only when our slice retires.
        self.vn.host.cpu.run(
            ("vn", self.vn.vn_id), self.instructions, self._loop
        )

    def stop(self) -> None:
        self._stopped = True
