"""Dynamic request routing for replicated services (paper Sec. 5.2).

The replicated-web experiment routes requests *manually* and the
paper notes that "a more comprehensive experiment must support
dynamic request routing decisions (e.g., leveraging DNS in a content
distribution network)". This module supplies that machinery:

* :class:`DnsRedirector` — an authoritative "DNS" server on a VN
  answering resolution queries with a replica choice and a TTL;
* policies — static primary, RTT-closest (from client-reported probe
  measurements), and least-loaded (from replica load reports);
* :class:`CdnClient` — a client-side resolver stub that caches the
  answer for its TTL and issues web requests to the chosen replica.

Everything is real traffic through the emulated network: probes,
load reports, resolutions, and the HTTP transfers themselves.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps.rpc import RpcNode
from repro.apps.webserver import WebServer
from repro.core.emulator import Emulation

DNS_PORT = 9053

POLICY_STATIC = "static"
POLICY_CLOSEST = "closest"
POLICY_LEAST_LOADED = "least-loaded"


class ReplicaAgent:
    """Runs beside a :class:`WebServer`, reporting load to the
    redirector periodically."""

    def __init__(
        self,
        emulation: Emulation,
        vn_id: int,
        server: WebServer,
        redirector_vn: int,
        report_period_s: float = 1.0,
    ):
        self.vn_id = vn_id
        self.server = server
        self.rpc = RpcNode(emulation.vn(vn_id), port=DNS_PORT)
        self.redirector_vn = redirector_vn
        self.report_period_s = report_period_s
        self.sim = emulation.sim
        self._last_served = 0
        self._running = False

    def start(self) -> None:
        self._running = True
        self._report()

    def stop(self) -> None:
        self._running = False

    def _report(self) -> None:
        if not self._running:
            return
        served = self.server.requests_served
        recent = served - self._last_served
        self._last_served = served
        self.rpc.call(
            self.redirector_vn,
            "load_report",
            (self.vn_id, recent),
            size_bytes=64,
            dst_port=DNS_PORT,
        )
        self.sim.schedule(self.report_period_s, self._report)


class DnsRedirector:
    """The authoritative redirector for one service name."""

    def __init__(
        self,
        emulation: Emulation,
        vn_id: int,
        replicas: Sequence[int],
        policy: str = POLICY_STATIC,
        ttl_s: float = 5.0,
    ):
        if not replicas:
            raise ValueError("need at least one replica")
        if policy not in (POLICY_STATIC, POLICY_CLOSEST, POLICY_LEAST_LOADED):
            raise ValueError(f"unknown policy {policy!r}")
        self.emulation = emulation
        self.vn_id = vn_id
        self.replicas = list(replicas)
        self.policy = policy
        self.ttl_s = ttl_s
        self.rpc = RpcNode(emulation.vn(vn_id), port=DNS_PORT)
        self.rpc.register("resolve", self._resolve)
        self.rpc.register("load_report", self._load_report)
        self.rpc.register("rtt_report", self._rtt_report)
        self.resolutions = 0
        #: replica -> recent request count (from load reports).
        self._load: Dict[int, int] = {vn: 0 for vn in self.replicas}
        #: (client, replica) -> measured RTT.
        self._rtt: Dict[Tuple[int, int], float] = {}

    # -- server side -----------------------------------------------------

    def _resolve(self, src_vn: int, payload):
        self.resolutions += 1
        choice = self._choose(src_vn)
        return (choice, self.ttl_s), 96

    def _load_report(self, src_vn: int, payload):
        replica, recent = payload
        if replica in self._load:
            self._load[replica] = recent
        return None, 32

    def _rtt_report(self, src_vn: int, payload):
        replica, rtt = payload
        self._rtt[(src_vn, replica)] = rtt
        return None, 32

    def _choose(self, client_vn: int) -> int:
        if self.policy == POLICY_STATIC:
            return self.replicas[0]
        if self.policy == POLICY_LEAST_LOADED:
            return min(self.replicas, key=lambda vn: (self._load[vn], vn))
        # POLICY_CLOSEST: smallest reported RTT; unknown pairs rank
        # behind any measured one, falling back to the primary.
        def rank(replica: int):
            rtt = self._rtt.get((client_vn, replica))
            return (rtt is None, rtt if rtt is not None else 0.0, replica)

        return min(self.replicas, key=rank)


class CdnClient:
    """The client-side stub: resolve (with TTL caching), probe
    replicas for the closest policy, and issue web requests."""

    def __init__(
        self,
        emulation: Emulation,
        vn_id: int,
        redirector_vn: int,
    ):
        self.emulation = emulation
        self.sim = emulation.sim
        self.vn_id = vn_id
        self.redirector_vn = redirector_vn
        self.rpc = RpcNode(emulation.vn(vn_id), port=DNS_PORT)
        self._cached: Optional[int] = None
        self._cache_expires = 0.0
        #: (latency, size, replica) per completed request.
        self.completed: List[Tuple[float, int, int]] = []
        self.failed = 0

    # -- probing (feeds the closest policy) ---------------------------------

    def probe_replicas(self, replicas: Sequence[int]) -> None:
        """Measure RTT to each replica and report to the redirector."""
        for replica in replicas:
            sent_at = self.sim.now

            def report(payload, replica=replica, sent_at=sent_at) -> None:
                rtt = self.sim.now - sent_at
                self.rpc.call(
                    self.redirector_vn,
                    "rtt_report",
                    (replica, rtt),
                    size_bytes=48,
                    dst_port=DNS_PORT,
                )

            self.rpc.call(
                replica, "ping", None, size_bytes=48,
                on_reply=report, dst_port=DNS_PORT,
            )

    # -- requests ---------------------------------------------------------------

    def request(self, size: int) -> None:
        """Fetch ``size`` bytes from the service (resolving first)."""
        started = self.sim.now

        def with_replica(replica: int) -> None:
            state = {"done": False}

            def established(conn):
                conn.send(300, message=("get", size))

            def message(conn, payload):
                if not state["done"]:
                    state["done"] = True
                    self.completed.append((self.sim.now - started, size, replica))
                    conn.close()

            def closed(conn):
                if not state["done"]:
                    state["done"] = True
                    self.failed += 1

            self.emulation.vn(self.vn_id).tcp_connect(
                replica,
                80,
                on_established=established,
                on_message=message,
                on_close=closed,
            )

        self._resolve(with_replica)

    def _resolve(self, use: Callable[[int], None]) -> None:
        if self._cached is not None and self.sim.now < self._cache_expires:
            use(self._cached)
            return

        def answered(payload) -> None:
            replica, ttl = payload
            self._cached = replica
            self._cache_expires = self.sim.now + ttl
            use(replica)

        def failed() -> None:
            self.failed += 1

        self.rpc.call(
            self.redirector_vn,
            "resolve",
            None,
            size_bytes=64,
            on_reply=answered,
            on_fail=failed,
            dst_port=DNS_PORT,
        )

    @property
    def latencies(self) -> List[float]:
        return [latency for latency, _size, _replica in self.completed]


def deploy_cdn(
    emulation: Emulation,
    redirector_vn: int,
    replica_vns: Sequence[int],
    policy: str = POLICY_CLOSEST,
    ttl_s: float = 5.0,
) -> Tuple[DnsRedirector, List[WebServer], List[ReplicaAgent]]:
    """Stand up the redirector, web servers, and load-report agents."""
    redirector = DnsRedirector(
        emulation, redirector_vn, replica_vns, policy=policy, ttl_s=ttl_s
    )
    servers = []
    agents = []
    for vn in replica_vns:
        server = WebServer(emulation, vn)
        agent = ReplicaAgent(emulation, vn, server, redirector_vn)
        agent.rpc.register("ping", lambda src, payload: (None, 32))
        agent.start()
        servers.append(server)
        agents.append(agent)
    return redirector, servers, agents
