"""Replicated web service: servers and trace-playback clients.

Paper Sec. 5.2: clients play back a web trace in real time against
one or more Apache replicas; the measured quantity is the CDF of
client-perceived latency (request start to response completion) as a
function of the number of replicas. Requests are HTTP/1.0-style: one
TCP connection per request, the response size taken from the trace.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.emulator import Emulation

HTTP_PORT = 80
REQUEST_BYTES = 300


class WebServer:
    """A static-content server on one VN.

    ``service_time_s`` models per-request server work (the paper
    reports its Apache boxes at ~10% CPU, i.e. not the bottleneck, so
    the default is small but non-zero).
    """

    def __init__(
        self,
        emulation: Emulation,
        vn_id: int,
        port: int = HTTP_PORT,
        service_time_s: float = 0.001,
    ):
        self.emulation = emulation
        self.sim = emulation.sim
        self.vn_id = vn_id
        self.service_time_s = service_time_s
        self.requests_served = 0
        self.bytes_served = 0
        emulation.vn(vn_id).tcp_listen(port, self._accept)

    def _accept(self, conn) -> None:
        conn.on_message = self._request

    def _request(self, conn, message) -> None:
        kind, size = message
        if kind != "get":
            return
        self.requests_served += 1
        self.bytes_served += size
        self.sim.schedule(self.service_time_s, self._respond, conn, size)

    def _respond(self, conn, size: int) -> None:
        if conn.state == "closed":
            return
        conn.send(size, message=("rsp", size))
        conn.close()


class TraceClient:
    """Plays back a slice of a request trace from one VN.

    Each request opens a fresh connection to the client's assigned
    server, sends a small request naming the response size, and
    records the latency when the full response has arrived.
    """

    def __init__(
        self,
        emulation: Emulation,
        vn_id: int,
        server_vn: int,
        requests: Sequence[Tuple[float, int]],
        port: int = HTTP_PORT,
        start_at: float = 0.0,
    ):
        self.emulation = emulation
        self.sim = emulation.sim
        self.vn_id = vn_id
        self.server_vn = server_vn
        self.port = port
        #: (latency_s, size) per completed request.
        self.completed: List[Tuple[float, int]] = []
        self.failed = 0
        self.issued = 0
        for offset, size in requests:
            self.sim.at(start_at + offset, self._issue, size)

    def redirect(self, server_vn: int) -> None:
        """Point future requests at a different replica (the manual
        request-routing step of the paper's experiments)."""
        self.server_vn = server_vn

    def _issue(self, size: int) -> None:
        self.issued += 1
        started = self.sim.now
        state = {"done": False}

        def established(conn) -> None:
            conn.send(REQUEST_BYTES, message=("get", size))

        def message(conn, payload) -> None:
            if state["done"]:
                return
            state["done"] = True
            self.completed.append((self.sim.now - started, size))
            conn.close()

        def closed(conn) -> None:
            if not state["done"]:
                state["done"] = True
                self.failed += 1

        self.emulation.vn(self.vn_id).tcp_connect(
            self.server_vn,
            self.port,
            on_established=established,
            on_message=message,
            on_close=closed,
        )

    @property
    def latencies(self) -> List[float]:
        return [latency for latency, _size in self.completed]
