"""A synthetic RON-like wide-area condition matrix.

The CFS experiments (paper Sec. 5.1) convert the published RON [1]
inter-site measurements — bandwidth, latency, and loss between all
pairs of ~15 Internet sites — into a ModelNet topology. The raw RON
matrix is not distributed with the paper, so this module synthesizes
a 12-site matrix with the same structure: sites clustered into North
American and European regions, intra-region latencies of 5-40 ms,
transcontinental 35-50 ms, transatlantic 70-95 ms; university-class
sites behind 1-3 Mb/s effective access capacity (matching the TCP
transfer speeds the CFS paper reports, up to ~300 KB/s) and a few
slow DSL/cable sites at 0.3-1.2 Mb/s, again matching RON's
well-known cable-modem nodes; and small non-zero loss on long paths.

Topologically, each site is a client behind an *access link* carrying
its capacity, and site gateways are pairwise connected by
high-bandwidth pipes carrying the measured pair latency and loss.
This matches how an end-to-end matrix behaves physically: concurrent
transfers to one site share that site's access link, while distinct
site pairs do not otherwise contend.

Generation is deterministic given the seed, so experiments are
reproducible; latency/loss are symmetric like published RON summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.engine.randomness import RngRegistry
from repro.topology.graph import NodeKind, Topology


@dataclass(frozen=True)
class RonSite:
    """One wide-area site."""

    name: str
    region: str  # "us-east", "us-west", "europe"
    slow: bool  # cable/DSL-class connectivity


#: Twelve sites in the image of the RON testbed's deployment.
_SITES = [
    RonSite("ma-east", "us-east", False),
    RonSite("ny-univ", "us-east", False),
    RonSite("nc-univ", "us-east", False),
    RonSite("pa-univ", "us-east", False),
    RonSite("ma-cable", "us-east", True),
    RonSite("ut-univ", "us-west", False),
    RonSite("ca-univ", "us-west", False),
    RonSite("wa-univ", "us-west", False),
    RonSite("ca-dsl", "us-west", True),
    RonSite("nl-univ", "europe", False),
    RonSite("uk-univ", "europe", False),
    RonSite("gr-univ", "europe", False),
]

_REGION_LATENCY_MS = {
    frozenset(["us-east"]): (5, 25),
    frozenset(["us-west"]): (5, 25),
    frozenset(["europe"]): (10, 40),
    frozenset(["us-east", "us-west"]): (35, 50),
    frozenset(["us-east", "europe"]): (70, 90),
    frozenset(["us-west", "europe"]): (80, 95),
}

#: Access latency charged on each site's last hop; the remaining pair
#: latency rides on the gateway-to-gateway pipe.
_ACCESS_LATENCY_S = 0.001

#: Gateway pipes are effectively unconstrained ("the Internet core is
#: well-provisioned"); access links carry the measured capacity.
_CORE_BANDWIDTH = 100e6


def ron_sites() -> List[RonSite]:
    """The 12 synthetic sites."""
    return list(_SITES)


def ron_topology(seed: int = 0, queue_limit: int = 50) -> Tuple[Topology, List[RonSite]]:
    """Build the RON-like topology.

    Client node ids are 0..11 (VN i = site i); node 12+i is site i's
    gateway. Pair (i, j) conditions live on the gateway mesh link.
    """
    rng = RngRegistry(seed).stream("rondata")
    sites = ron_sites()
    n = len(sites)
    topology = Topology("ron-synthetic")

    def access_bw(site: RonSite) -> float:
        if site.slow:
            return rng.uniform(0.3e6, 1.2e6)
        return rng.uniform(1.0e6, 3.0e6)

    clients = []
    gateways = []
    for index, site in enumerate(sites):
        client = topology.add_node(
            NodeKind.CLIENT, site=site.name, region=site.region
        )
        clients.append(client)
    for index, site in enumerate(sites):
        gateway = topology.add_node(NodeKind.STUB, site=site.name)
        gateways.append(gateway)
        topology.add_link(
            clients[index].id,
            gateway.id,
            access_bw(site),
            _ACCESS_LATENCY_S,
            queue_limit=queue_limit,
        )

    for i in range(n):
        for j in range(i + 1, n):
            a, b = sites[i], sites[j]
            low, high = _REGION_LATENCY_MS[frozenset([a.region, b.region])]
            pair_latency = rng.uniform(low, high) / 1e3
            base = 0.0005 if a.region == b.region else 0.002
            pair_loss = min(0.02, rng.expovariate(1.0 / base))
            topology.add_link(
                gateways[i].id,
                gateways[j].id,
                _CORE_BANDWIDTH,
                max(1e-4, pair_latency - 2 * _ACCESS_LATENCY_S),
                pair_loss,
                queue_limit=queue_limit,
            )
    return topology, sites
