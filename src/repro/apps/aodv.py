"""AODV-style on-demand routing over the ad hoc wireless fabric.

The paper's wireless extension handles the broadcast medium and
mobility; an actual ad hoc *workload* needs a MANET routing protocol
on top. This is a compact AODV (RFC 3561 in spirit): routes are
discovered on demand by flooding a route request (RREQ); the
destination unicasts a route reply (RREP) back along the reverse
path; data then follows the forward path hop by hop. Stale routes
(broken by mobility) surface as delivery failures and trigger
re-discovery, so the protocol continuously exercises the fabric's
topology churn.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps.wireless import WirelessNetwork, WirelessNode

RREQ = "rreq"
RREP = "rrep"
DATA = "data"

_request_ids = itertools.count()

#: Discovered routes are considered fresh for this long.
ROUTE_LIFETIME_S = 10.0
DISCOVERY_TIMEOUT_S = 2.0
MAX_DISCOVERY_RETRIES = 2


class AodvNode:
    """The AODV agent running on one wireless node."""

    def __init__(self, router: "AodvRouter", node: WirelessNode):
        self.router = router
        self.node = node
        self.sim = router.network.sim
        #: dest -> (next_hop, hop_count, expires_at)
        self.routes: Dict[int, Tuple[int, int, float]] = {}
        self.seen_requests: set = set()
        self.on_deliver: Optional[Callable] = None
        node.on_receive = self._receive

    # -- route table ----------------------------------------------------

    def _learn(self, dest: int, next_hop: int, hops: int) -> None:
        expiry = self.sim.now + ROUTE_LIFETIME_S
        existing = self.routes.get(dest)
        if existing is None or hops <= existing[1] or existing[2] < self.sim.now:
            self.routes[dest] = (next_hop, hops, expiry)

    def _route_to(self, dest: int) -> Optional[int]:
        entry = self.routes.get(dest)
        if entry is None or entry[2] < self.sim.now:
            return None
        return entry[0]

    # -- frames ------------------------------------------------------------

    def _receive(self, src_id: int, size: int, payload) -> None:
        kind = payload[0]
        if kind == RREQ:
            self._handle_rreq(src_id, payload)
        elif kind == RREP:
            self._handle_rrep(src_id, payload)
        elif kind == DATA:
            self._handle_data(src_id, payload)

    def _handle_rreq(self, src_id: int, payload) -> None:
        _kind, request_id, origin, dest, hops = payload
        if request_id in self.seen_requests:
            return
        self.seen_requests.add(request_id)
        # Reverse route toward the origin via whoever relayed this.
        self._learn(origin, src_id, hops + 1)
        if self.node.node_id == dest:
            self.router.rreqs_answered += 1
            self.node.send_to(src_id, 64, (RREP, origin, dest, 0))
            return
        self.node.broadcast(64, (RREQ, request_id, origin, dest, hops + 1))

    def _handle_rrep(self, src_id: int, payload) -> None:
        _kind, origin, dest, hops = payload
        self._learn(dest, src_id, hops + 1)
        if self.node.node_id == origin:
            self.router._route_found(origin, dest)
            return
        next_hop = self._route_to(origin)
        if next_hop is not None:
            self.node.send_to(next_hop, 64, (RREP, origin, dest, hops + 1))

    def _handle_data(self, src_id: int, payload) -> None:
        _kind, origin, dest, size, message, ttl = payload
        if self.node.node_id == dest:
            self.router.delivered += 1
            if self.on_deliver is not None:
                self.on_deliver(origin, size, message)
            return
        if ttl <= 0:
            self.router.data_dropped += 1
            return
        next_hop = self._route_to(dest)
        if next_hop is None:
            self.router.data_dropped += 1
            return
        self.node.send_to(
            next_hop, size, (DATA, origin, dest, size, message, ttl - 1)
        )


class AodvRouter:
    """The AODV deployment across a wireless network."""

    def __init__(self, network: WirelessNetwork):
        self.network = network
        self.nodes: Dict[int, AodvNode] = {
            node.node_id: AodvNode(self, node) for node in network.nodes
        }
        self._waiting: Dict[Tuple[int, int], List[Callable]] = {}
        self.discoveries = 0
        self.rreqs_answered = 0
        self.delivered = 0
        self.data_dropped = 0

    # -- discovery ---------------------------------------------------------

    def discover(
        self,
        origin: int,
        dest: int,
        on_ready: Callable[[bool], None],
        retries: int = MAX_DISCOVERY_RETRIES,
    ) -> None:
        """Find a route origin -> dest; ``on_ready(success)`` fires
        when a route exists (or discovery gives up)."""
        agent = self.nodes[origin]
        if agent._route_to(dest) is not None:
            on_ready(True)
            return
        key = (origin, dest)
        waiters = self._waiting.setdefault(key, [])
        waiters.append(on_ready)
        if len(waiters) > 1:
            return  # a discovery is already in flight
        self._flood_request(origin, dest, retries)

    def _flood_request(self, origin: int, dest: int, retries: int) -> None:
        self.discoveries += 1
        request_id = next(_request_ids)
        agent = self.nodes[origin]
        agent.seen_requests.add(request_id)
        agent.node.broadcast(64, (RREQ, request_id, origin, dest, 0))
        self.network.sim.schedule(
            DISCOVERY_TIMEOUT_S, self._discovery_check, origin, dest, retries
        )

    def _discovery_check(self, origin: int, dest: int, retries: int) -> None:
        key = (origin, dest)
        if key not in self._waiting:
            return  # already resolved
        if self.nodes[origin]._route_to(dest) is not None:
            self._route_found(origin, dest)
        elif retries > 0:
            self._flood_request(origin, dest, retries - 1)
        else:
            for waiter in self._waiting.pop(key, []):
                waiter(False)

    def _route_found(self, origin: int, dest: int) -> None:
        for waiter in self._waiting.pop((origin, dest), []):
            waiter(True)

    # -- data ---------------------------------------------------------------

    def send(
        self,
        origin: int,
        dest: int,
        size: int,
        message=None,
        ttl: int = 16,
    ) -> None:
        """Send application data, discovering a route if needed."""

        def ready(success: bool) -> None:
            if not success:
                self.data_dropped += 1
                return
            next_hop = self.nodes[origin]._route_to(dest)
            if next_hop is None:
                self.data_dropped += 1
                return
            self.nodes[origin].node.send_to(
                next_hop, size, (DATA, origin, dest, size, message, ttl)
            )

        self.discover(origin, dest, ready)

    def delivery_ratio(self) -> float:
        attempted = self.delivered + self.data_dropped
        return self.delivered / attempted if attempted else 0.0
