"""CFS: cooperative file storage over Chord ([6], paper Sec. 5.1).

Files are split into 8 KB blocks striped across the ring: block i of
a file lives at the Chord successor of hash(file/i) (the DHash
placement). A download resolves each block's owner with a Chord
lookup, then fetches the block over a persistent TCP connection to
that owner. The client keeps a *prefetch window* of outstanding
block fetches — the knob the CFS paper's Figures 6-8 (our Figures
7-8) sweep: small windows leave the path idle between fetches; large
windows pipeline lookups and transfers across sites.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.apps.chord import ChordRing, chord_id
from repro.core.emulator import Emulation

BLOCK_BYTES = 8192
CFS_PORT = 9002
REQUEST_BYTES = 96


class _BlockServer:
    """The per-node CFS server: stores blocks, serves them over TCP."""

    def __init__(self, emulation: Emulation, vn_id: int):
        self.vn_id = vn_id
        self.blocks: set = set()
        self.requests_served = 0
        emulation.vn(vn_id).tcp_listen(CFS_PORT, self._accept)

    def _accept(self, conn) -> None:
        conn.on_message = self._request

    def _request(self, conn, message) -> None:
        kind, file_id, index = message
        if kind != "get":
            return
        self.requests_served += 1
        # Missing blocks are served anyway with a miss marker; CFS
        # integrity checking is out of scope.
        hit = (file_id, index) in self.blocks
        conn.send(BLOCK_BYTES, message=("block", file_id, index, hit))


class CfsNetwork:
    """A CFS deployment: a Chord ring plus per-node block stores."""

    def __init__(self, emulation: Emulation, vn_ids: List[int]):
        self.emulation = emulation
        self.ring = ChordRing(emulation, vn_ids)
        self.servers: Dict[int, _BlockServer] = {
            vn: _BlockServer(emulation, vn) for vn in vn_ids
        }

    @staticmethod
    def block_key(file_id: str, index: int) -> int:
        return chord_id(f"{file_id}/{index}")

    def store_file(self, file_id: str, size_bytes: int) -> Dict[int, int]:
        """Insert a file: each block goes to its Chord owner (by the
        offline ground truth, standing in for insert traffic).
        Returns {block index -> owner vn}."""
        placement = {}
        num_blocks = max(1, (size_bytes + BLOCK_BYTES - 1) // BLOCK_BYTES)
        for index in range(num_blocks):
            owner = self.ring.owner_of(self.block_key(file_id, index))
            self.servers[owner.vn_id].blocks.add((file_id, index))
            placement[index] = owner.vn_id
        return placement

    def client(self, vn_id: int) -> "CfsClient":
        return CfsClient(self, vn_id)


class CfsClient:
    """A downloading CFS node (itself a ring member)."""

    def __init__(self, network: CfsNetwork, vn_id: int):
        self.network = network
        self.emulation = network.emulation
        self.sim = network.emulation.sim
        self.vn_id = vn_id
        self._conns: Dict[int, object] = {}
        self._conn_waiters: Dict[int, List] = {}
        self.lookup_hops: List[int] = []

    # -- connection cache ---------------------------------------------

    def _with_connection(self, server_vn: int, use: Callable) -> None:
        conn = self._conns.get(server_vn)
        if conn is not None and conn.state == "established":
            use(conn)
            return
        if server_vn in self._conn_waiters:
            self._conn_waiters[server_vn].append(use)
            return
        self._conn_waiters[server_vn] = [use]

        def established(new_conn) -> None:
            self._conns[server_vn] = new_conn
            waiters = self._conn_waiters.pop(server_vn, [])
            for waiter in waiters:
                waiter(new_conn)

        self.emulation.vn(self.vn_id).tcp_connect(
            server_vn, CFS_PORT, on_established=established
        )

    # -- download ----------------------------------------------------------

    def download(
        self,
        file_id: str,
        size_bytes: int,
        prefetch_bytes: int = 24 * 1024,
        on_done: Optional[Callable[[float], None]] = None,
    ) -> dict:
        """Fetch a file with the given prefetch window.

        Returns a progress dict; ``on_done(speed_bytes_per_s)`` fires
        at completion.
        """
        num_blocks = max(1, (size_bytes + BLOCK_BYTES - 1) // BLOCK_BYTES)
        window = max(1, prefetch_bytes // BLOCK_BYTES)
        state = {
            "started_at": self.sim.now,
            "next_block": 0,
            "done_blocks": 0,
            "num_blocks": num_blocks,
            "outstanding": 0,
            "finished": False,
            "speed_bytes_s": None,
        }

        def issue_more() -> None:
            while (
                state["outstanding"] < window
                and state["next_block"] < num_blocks
            ):
                index = state["next_block"]
                state["next_block"] += 1
                state["outstanding"] += 1
                fetch(index)

        def fetch(index: int) -> None:
            key = CfsNetwork.block_key(file_id, index)

            def have_owner(owner_vn: int, hops: int) -> None:
                self.lookup_hops.append(hops)
                self._with_connection(
                    owner_vn, lambda conn: request(conn, index)
                )

            self.network.ring.lookup(
                self.vn_id,
                key,
                on_done=have_owner,
                on_fail=lambda: retry(index),
            )

        def retry(index: int) -> None:
            self.sim.schedule(0.5, fetch, index)

        def request(conn, index: int) -> None:
            conn.on_message = received
            conn.send(REQUEST_BYTES, message=("get", file_id, index))

        def received(conn, message) -> None:
            kind = message[0]
            if kind != "block":
                return
            state["done_blocks"] += 1
            state["outstanding"] -= 1
            if state["done_blocks"] >= num_blocks and not state["finished"]:
                state["finished"] = True
                elapsed = self.sim.now - state["started_at"]
                speed = size_bytes / elapsed if elapsed > 0 else float("inf")
                state["speed_bytes_s"] = speed
                if on_done is not None:
                    on_done(speed)
            else:
                issue_more()

        issue_more()
        return state
