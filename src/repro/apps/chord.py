"""Chord: a distributed hash table ([20], the substrate under CFS).

Nodes form a ring in a 2^m identifier space; each node keeps a finger
table of up to m pointers. Lookups are iterative: the querying node
asks successively closer nodes for the closest finger preceding the
key until the key's successor is found — each step is an RPC through
the emulated network, so lookup latency reflects real inter-site
conditions.

The ring is constructed in a converged state (fingers computed from
full membership), matching the paper's CFS experiments, which run on
a stable 12-node ring; join/stabilization churn is out of scope.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional

from repro.apps.rpc import RpcNode
from repro.core.emulator import Emulation

CHORD_BITS = 16
CHORD_PORT = 9001


def chord_id(key: str, bits: int = CHORD_BITS) -> int:
    """Hash a key into the 2^bits identifier space."""
    digest = hashlib.sha1(key.encode()).digest()
    return int.from_bytes(digest[:8], "big") % (1 << bits)


def in_half_open(value: int, low: int, high: int, bits: int = CHORD_BITS) -> bool:
    """value in (low, high] on the ring."""
    space = 1 << bits
    value, low, high = value % space, low % space, high % space
    if low < high:
        return low < value <= high
    if low == high:
        return True  # full circle
    return value > low or value <= high


class ChordNode:
    """One Chord participant bound to a VN."""

    def __init__(self, emulation: Emulation, vn_id: int, bits: int = CHORD_BITS):
        self.vn_id = vn_id
        self.bits = bits
        self.node_id = chord_id(f"chord-node-{vn_id}", bits)
        self.rpc = RpcNode(emulation.vn(vn_id), port=CHORD_PORT)
        self.successor_vn: int = vn_id
        self.successor_id: int = self.node_id
        #: finger[i] = (finger_id, finger_vn) responsible for
        #: node_id + 2^i.
        self.fingers: List[tuple] = []
        self.lookups_served = 0
        self.rpc.register("closest_hop", self._closest_hop)

    def _closest_hop(self, src_vn: int, payload):
        """One iterative-lookup step: either the key is owned by our
        successor, or we return the closest preceding finger."""
        key = payload
        self.lookups_served += 1
        if in_half_open(key, self.node_id, self.successor_id, self.bits):
            return ("done", self.successor_vn, self.successor_id), 64
        hop_vn = self._closest_preceding(key)
        return ("next", hop_vn, None), 64

    def _closest_preceding(self, key: int) -> int:
        for finger_id, finger_vn in reversed(self.fingers):
            if finger_vn != self.vn_id and in_half_open(
                finger_id, self.node_id, (key - 1) % (1 << self.bits), self.bits
            ):
                return finger_vn
        return self.successor_vn


class ChordRing:
    """A converged Chord ring over a set of VNs."""

    def __init__(self, emulation: Emulation, vn_ids: List[int], bits: int = CHORD_BITS):
        if not vn_ids:
            raise ValueError("a ring needs at least one node")
        self.emulation = emulation
        self.bits = bits
        self.nodes: Dict[int, ChordNode] = {
            vn: ChordNode(emulation, vn, bits) for vn in vn_ids
        }
        self._deduplicate_ids()
        self._build_ring()
        self.lookups = 0
        self.lookup_failures = 0

    def _deduplicate_ids(self) -> None:
        """Hash collisions in a small id space would make successor
        relationships ambiguous; re-salt colliding nodes (real Chord
        avoids this with 160-bit ids)."""
        taken: Dict[int, int] = {}
        for vn in sorted(self.nodes):
            node = self.nodes[vn]
            salt = 0
            while node.node_id in taken:
                salt += 1
                node.node_id = chord_id(f"chord-node-{vn}-salt{salt}", self.bits)
            taken[node.node_id] = vn

    def _build_ring(self) -> None:
        ordered = sorted(self.nodes.values(), key=lambda n: n.node_id)
        count = len(ordered)
        for index, node in enumerate(ordered):
            successor = ordered[(index + 1) % count]
            node.successor_vn = successor.vn_id
            node.successor_id = successor.node_id
            fingers = []
            for i in range(self.bits):
                target = (node.node_id + (1 << i)) % (1 << self.bits)
                owner = self._successor_of(ordered, target)
                fingers.append((owner.node_id, owner.vn_id))
            node.fingers = fingers

    @staticmethod
    def _successor_of(ordered: List[ChordNode], key: int) -> ChordNode:
        for node in ordered:
            if node.node_id >= key:
                return node
        return ordered[0]

    def owner_of(self, key: int) -> ChordNode:
        """Ground truth (used by tests and the store's setup)."""
        ordered = sorted(self.nodes.values(), key=lambda n: n.node_id)
        return self._successor_of(ordered, key % (1 << self.bits))

    def lookup(
        self,
        from_vn: int,
        key: int,
        on_done: Callable[[int, int], None],
        on_fail: Optional[Callable[[], None]] = None,
        max_hops: int = 32,
    ) -> None:
        """Iteratively resolve ``key`` from ``from_vn``; ``on_done``
        receives (owner_vn, hops taken)."""
        self.lookups += 1
        source = self.nodes[from_vn]
        state = {"hops": 0}

        def fail() -> None:
            self.lookup_failures += 1
            if on_fail is not None:
                on_fail()

        def step(target_vn: int) -> None:
            state["hops"] += 1
            if state["hops"] > max_hops:
                fail()
                return
            source.rpc.call(
                target_vn,
                "closest_hop",
                key,
                size_bytes=64,
                on_reply=handle,
                on_fail=fail,
                dst_port=CHORD_PORT,
            )

        def handle(reply) -> None:
            kind, vn, _node_id = reply
            if kind == "done":
                on_done(vn, state["hops"])
            else:
                step(vn)

        # Local shortcut: we own the key if it falls to our successor.
        if in_half_open(key, source.node_id, source.successor_id, self.bits):
            on_done(source.successor_vn, 0)
            return
        step(source._closest_preceding(key))
