"""An ACDC-style two-metric adaptive overlay ([9], paper Sec. 5.3).

ACDC builds the lowest-*cost* overlay distribution tree that meets a
target end-to-end *delay*, where cost and delay are independent
metrics on the underlying IP network. Nodes periodically probe
O(log n) random peers and re-parent to reduce cost while keeping
delay under the application target; when network delay worsens (fault
injection), nodes sacrifice cost to restore the delay bound.

Delay is *measured* — probe RPCs through the emulated network, RTT/2
plus the candidate's advertised delay to the root. Cost comes from
the underlay's link-cost annotations along the current IP route (the
configuration knowledge ACDC assumes). Heartbeats propagate each
node's delay-to-root and root path down the tree; root paths prevent
re-parenting onto a descendant (loops).
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.apps.rpc import RpcNode
from repro.core.emulator import Emulation
from repro.routing.shortest_path import route_cost

OVERLAY_PORT = 9003
HEARTBEAT_S = 2.0
PROBE_PERIOD_S = 10.0


class OverlayMember:
    """One overlay participant."""

    def __init__(self, overlay: "AcdcOverlay", vn_id: int):
        self.overlay = overlay
        self.vn_id = vn_id
        self.sim = overlay.emulation.sim
        self.rpc = RpcNode(overlay.emulation.vn(vn_id), port=OVERLAY_PORT)
        self.parent: Optional[int] = None
        self.children: set = set()
        self.delay_to_root = 0.0 if overlay.root_vn == vn_id else float("inf")
        self.root_path: List[int] = [vn_id]
        self.parent_switches = 0
        self.rpc.register("probe", self._on_probe)
        self.rpc.register("adopt", self._on_adopt)
        self.rpc.register("orphan", self._on_orphan)
        self.rpc.register("heartbeat", self._on_heartbeat)

    @property
    def is_root(self) -> bool:
        return self.vn_id == self.overlay.root_vn

    # -- server-side handlers ---------------------------------------------

    def _on_probe(self, src_vn: int, payload):
        return (self.delay_to_root, list(self.root_path)), 96

    def _on_adopt(self, src_vn: int, payload):
        self.children.add(src_vn)
        return (self.delay_to_root, list(self.root_path)), 96

    def _on_orphan(self, src_vn: int, payload):
        self.children.discard(src_vn)
        return None, 32

    def _on_heartbeat(self, src_vn: int, payload):
        if src_vn != self.parent:
            return None, 32
        parent_delay, parent_path, edge_delay = payload
        if self.vn_id in parent_path:
            # Stale information forming a loop: detach and rejoin.
            self.sim.call_soon(self.overlay._rejoin, self.vn_id)
            return None, 32
        self.delay_to_root = parent_delay + edge_delay
        self.root_path = parent_path + [self.vn_id]
        return None, 32

    # -- periodic behavior ----------------------------------------------------

    def start(self) -> None:
        jitter = self.overlay.rng.uniform(0.0, 1.0)
        if self.is_root:
            self.sim.schedule(jitter, self._heartbeat_loop)
        else:
            self.sim.schedule(jitter, self._heartbeat_loop)
            self.sim.schedule(
                self.overlay.rng.uniform(1.0, PROBE_PERIOD_S), self._probe_loop
            )

    def _heartbeat_loop(self) -> None:
        if not self.overlay.running:
            return
        for child in list(self.children):
            # Edge delay rides along so children track current
            # conditions; measured lazily from the last probe, with
            # the underlay oracle as the cold-start estimate.
            edge_delay = self.overlay.measured_delay(child, self.vn_id)
            self.rpc.call(
                child,
                "heartbeat",
                (self.delay_to_root, list(self.root_path), edge_delay),
                size_bytes=96,
                dst_port=OVERLAY_PORT,
            )
        self.sim.schedule(HEARTBEAT_S, self._heartbeat_loop)

    def _probe_loop(self) -> None:
        if not self.overlay.running:
            return
        candidates = self.overlay.probe_candidates(self.vn_id)
        state = {"pending": len(candidates), "best": None}
        if not candidates:
            self.sim.schedule(PROBE_PERIOD_S, self._probe_loop)
            return

        def probe(candidate: int) -> None:
            sent_at = self.sim.now

            def reply(payload) -> None:
                cand_delay_root, cand_path = payload
                rtt = self.sim.now - sent_at
                one_way = rtt / 2.0
                self.overlay._record_delay(self.vn_id, candidate, one_way)
                consider(candidate, cand_delay_root + one_way, cand_path)
                finish()

            self.rpc.call(
                candidate,
                "probe",
                None,
                size_bytes=64,
                on_reply=reply,
                on_fail=finish,
                dst_port=OVERLAY_PORT,
            )

        def consider(candidate, total_delay, cand_path) -> None:
            if self.vn_id in cand_path:
                return  # descendant: would form a loop
            my_cost = self.overlay.edge_cost(self.vn_id, self.parent)
            cand_cost = self.overlay.edge_cost(self.vn_id, candidate)
            target = self.overlay.delay_target_s
            best = state["best"]
            if self.delay_to_root > target:
                # Delay violated: take the fastest acceptable parent.
                if total_delay < self.delay_to_root and (
                    best is None or total_delay < best[1]
                ):
                    state["best"] = (candidate, total_delay, cand_cost, cand_path)
            else:
                # Meeting delay: reduce cost, staying within target.
                # Hysteresis (>=10% improvement) damps re-parenting
                # churn from noisy probe measurements.
                if (
                    cand_cost < 0.9 * my_cost
                    and total_delay <= target
                    and (best is None or cand_cost < best[2])
                ):
                    state["best"] = (candidate, total_delay, cand_cost, cand_path)

        def finish() -> None:
            state["pending"] -= 1
            if state["pending"] == 0:
                if state["best"] is not None:
                    self._switch_parent(*state["best"])
                self.sim.schedule(PROBE_PERIOD_S, self._probe_loop)

        for candidate in candidates:
            probe(candidate)

    def _switch_parent(self, new_parent, total_delay, _cost, cand_path) -> None:
        old_parent = self.parent
        if new_parent == old_parent:
            return
        self.parent_switches += 1
        self.parent = new_parent
        self.delay_to_root = total_delay
        self.root_path = cand_path + [self.vn_id]
        if old_parent is not None:
            self.rpc.call(old_parent, "orphan", None, size_bytes=32, dst_port=OVERLAY_PORT)
        self.rpc.call(new_parent, "adopt", None, size_bytes=32, dst_port=OVERLAY_PORT)


class AcdcOverlay:
    """The overlay: membership, metrics oracle, and tree accounting."""

    def __init__(
        self,
        emulation: Emulation,
        member_vns: Sequence[int],
        delay_target_s: float = 1.5,
        rng: Optional[random.Random] = None,
    ):
        if not member_vns:
            raise ValueError("overlay needs members")
        self.emulation = emulation
        self.member_vns = list(member_vns)
        self.root_vn = self.member_vns[0]
        self.delay_target_s = delay_target_s
        self.rng = rng or emulation.rng.stream("overlay")
        self.running = False
        self._measured: Dict[tuple, float] = {}
        self.members: Dict[int, OverlayMember] = {
            vn: OverlayMember(self, vn) for vn in self.member_vns
        }
        self._initial_join()

    def _initial_join(self) -> None:
        """Nodes join at a random point: each non-root member parents
        on a random earlier member."""
        for index, vn in enumerate(self.member_vns[1:], start=1):
            parent_vn = self.member_vns[self.rng.randrange(index)]
            member = self.members[vn]
            member.parent = parent_vn
            self.members[parent_vn].children.add(vn)
        # Seed delay estimates from the oracle so the tree has finite
        # delays before the first heartbeats propagate.
        for vn in self.member_vns[1:]:
            member = self.members[vn]
            path_delay = 0.0
            cursor = member
            path = [vn]
            while cursor.parent is not None:
                path_delay += self.oracle_delay(cursor.vn_id, cursor.parent)
                cursor = self.members[cursor.parent]
                path.append(cursor.vn_id)
            member.delay_to_root = path_delay
            member.root_path = list(reversed(path))

    def start(self) -> None:
        self.running = True
        for member in self.members.values():
            member.start()

    def stop(self) -> None:
        self.running = False

    # -- metric oracles -----------------------------------------------------

    def _route(self, a: int, b: int):
        return self.emulation.routing.route(
            self.emulation.vns[a].node_id, self.emulation.vns[b].node_id
        )

    def oracle_delay(self, a: int, b: int) -> float:
        route = self._route(a, b)
        if route is None:
            return float("inf")
        return sum(hop.link.latency_s for hop in route)

    def edge_cost(self, a: int, b: Optional[int]) -> float:
        if b is None:
            return 0.0
        route = self._route(a, b)
        if route is None:
            return float("inf")
        return route_cost(route)

    def measured_delay(self, a: int, b: int) -> float:
        key = (min(a, b), max(a, b))
        value = self._measured.get(key)
        if value is None:
            return self.oracle_delay(a, b)
        return value

    def _record_delay(self, a: int, b: int, one_way: float) -> None:
        self._measured[(min(a, b), max(a, b))] = one_way

    def probe_candidates(self, vn: int) -> List[int]:
        # O(lg n) probes per period, per the ACDC scalability goal; 2x
        # the base-2 log explores enough to find low-cost parents in a
        # few periods without growing per-node state beyond O(lg n).
        count = max(2, 2 * int(math.ceil(math.log2(max(2, len(self.member_vns))))))
        others = [m for m in self.member_vns if m != vn]
        return self.rng.sample(others, min(count, len(others)))

    def _rejoin(self, vn: int) -> None:
        """Loop recovery: reattach directly under the root."""
        member = self.members[vn]
        old = member.parent
        if old is not None:
            self.members[old].children.discard(vn)
            member.rpc.call(old, "orphan", None, size_bytes=32, dst_port=OVERLAY_PORT)
        member.parent = self.root_vn
        member.rpc.call(self.root_vn, "adopt", None, size_bytes=32, dst_port=OVERLAY_PORT)
        member.delay_to_root = self.measured_delay(vn, self.root_vn)
        member.root_path = [self.root_vn, vn]

    # -- tree accounting (offline metrics for the figures) --------------------

    def tree_cost(self) -> float:
        return sum(
            self.edge_cost(vn, member.parent)
            for vn, member in self.members.items()
            if member.parent is not None
        )

    def mst_cost(self) -> float:
        """Minimum-cost spanning tree over the members' pairwise
        costs (Prim), the paper's offline baseline."""
        members = self.member_vns
        in_tree = {members[0]}
        total = 0.0
        best: Dict[int, float] = {
            vn: self.edge_cost(members[0], vn) for vn in members[1:]
        }
        while len(in_tree) < len(members):
            vn = min(best, key=best.get)
            total += best.pop(vn)
            in_tree.add(vn)
            for other in best:
                cost = self.edge_cost(vn, other)
                if cost < best[other]:
                    best[other] = cost
        return total

    def spt_delay(self) -> float:
        """Worst-case delay through the shortest-path tree (offline
        baseline; with per-member direct-path delays this is the best
        achievable maximum)."""
        return max(
            self.oracle_delay(self.root_vn, vn) for vn in self.member_vns[1:]
        )

    def max_delay(self) -> float:
        """Worst currently-advertised delay to root (what the app
        observes)."""
        finite = [
            member.delay_to_root
            for member in self.members.values()
            if member.delay_to_root != float("inf")
        ]
        return max(finite) if finite else float("inf")

    def actual_max_delay(self) -> float:
        """Worst *actual* tree-path delay via the oracle (ground
        truth for the figure)."""
        worst = 0.0
        for vn, member in self.members.items():
            delay = 0.0
            cursor = member
            seen = set()
            while cursor.parent is not None and cursor.vn_id not in seen:
                seen.add(cursor.vn_id)
                delay += self.oracle_delay(cursor.vn_id, cursor.parent)
                cursor = self.members[cursor.parent]
            worst = max(worst, delay)
        return worst
