"""A gnutella-style unstructured peer-to-peer network.

The paper's largest single experiment evaluated "system evolution and
connectivity of a 10,000 node network of unmodified gnutella clients"
(Sec. 5). This module implements the 0.4-protocol essentials the
study exercises: bootstrap joins, PING/PONG peer discovery with TTL,
neighbor maintenance toward a degree target, and TTL-scoped QUERY
flooding with hit routing, all over the emulated network.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence, Set

from repro.apps.rpc import RpcNode
from repro.core.emulator import Emulation

GNUTELLA_PORT = 9004
DEFAULT_TTL = 4
#: Discovery pings use a small scope: with a degree target of 4 a
#: 2-hop ping already surfaces dozens of peers, and a network-wide
#: ping flood per join would cost O(n^2) messages at scale.
PING_TTL = 2

_query_ids = itertools.count()


class GnutellaNode:
    """One servent."""

    def __init__(self, network: "GnutellaNetwork", vn_id: int):
        self.network = network
        self.vn_id = vn_id
        self.sim = network.emulation.sim
        self.rpc = RpcNode(network.emulation.vn(vn_id), port=GNUTELLA_PORT)
        self.neighbors: Set[int] = set()
        self.keywords: Set[str] = set()
        self.seen_pings: Set[int] = set()
        self.seen_queries: Set[int] = set()
        self.known_peers: Set[int] = set()
        self.queries_forwarded = 0
        self.rpc.register("connect", self._on_connect)
        self.rpc.register("ping", self._on_ping)
        self.rpc.register("query", self._on_query)
        self.rpc.register("hit", self._on_hit)
        self._hit_callbacks: Dict[int, object] = {}

    # -- joining and discovery -----------------------------------------------

    def _on_connect(self, src_vn: int, payload):
        if len(self.neighbors) < self.network.max_degree:
            self.neighbors.add(src_vn)
            return ("ok",), 32
        return ("busy", sorted(self.neighbors)), 64

    def join(self, bootstrap_vn: int) -> None:
        self._try_connect(bootstrap_vn, attempts_left=8)

    def _try_connect(self, peer_vn: int, attempts_left: int) -> None:
        if attempts_left <= 0 or peer_vn == self.vn_id:
            return

        def reply(payload) -> None:
            if payload[0] == "ok":
                self.neighbors.add(peer_vn)
                if len(self.neighbors) < self.network.target_degree:
                    self._discover_more()
            else:
                # Busy peer suggests its neighbors.
                candidates = [p for p in payload[1] if p != self.vn_id]
                if candidates:
                    choice = self.network.rng.choice(candidates)
                    self._try_connect(choice, attempts_left - 1)

        self.rpc.call(
            peer_vn,
            "connect",
            None,
            size_bytes=48,
            on_reply=reply,
            dst_port=GNUTELLA_PORT,
        )

    def _discover_more(self) -> None:
        ping_id = next(_query_ids)
        self.seen_pings.add(ping_id)
        for neighbor in list(self.neighbors):
            self.rpc.call(
                neighbor,
                "ping",
                (ping_id, self.vn_id, PING_TTL),
                size_bytes=48,
                on_reply=self._on_pong,
                dst_port=GNUTELLA_PORT,
            )

    def _on_ping(self, src_vn: int, payload):
        ping_id, origin, ttl = payload
        if ping_id in self.seen_pings:
            return ([],), 48
        self.seen_pings.add(ping_id)
        if ttl > 1:
            for neighbor in list(self.neighbors):
                if neighbor in (src_vn, origin):
                    continue
                self.rpc.call(
                    neighbor,
                    "ping",
                    (ping_id, origin, ttl - 1),
                    size_bytes=48,
                    on_reply=self._on_pong,
                    dst_port=GNUTELLA_PORT,
                )
        return ([self.vn_id] + sorted(self.neighbors),), 96

    def _on_pong(self, payload) -> None:
        (peers,) = payload
        for peer in peers:
            if peer != self.vn_id:
                self.known_peers.add(peer)
        # Top up degree from discovered peers.
        if len(self.neighbors) < self.network.target_degree:
            candidates = sorted(self.known_peers - self.neighbors - {self.vn_id})
            if candidates:
                self._try_connect(self.network.rng.choice(candidates), 2)

    # -- querying -----------------------------------------------------------------

    def query(self, keyword: str, on_hit=None, ttl: int = DEFAULT_TTL) -> int:
        """Flood a keyword query; ``on_hit(holder, keyword)`` per hit."""
        query_id = next(_query_ids)
        self.seen_queries.add(query_id)
        if on_hit is not None:
            self._hit_callbacks[query_id] = on_hit
        self.network.queries_issued += 1
        for neighbor in list(self.neighbors):
            self.rpc.call(
                neighbor,
                "query",
                (query_id, self.vn_id, keyword, ttl),
                size_bytes=80,
                dst_port=GNUTELLA_PORT,
            )
        return query_id

    def _on_query(self, src_vn: int, payload):
        query_id, origin, keyword, ttl = payload
        if query_id in self.seen_queries:
            return None, 32
        self.seen_queries.add(query_id)
        self.queries_forwarded += 1
        if keyword in self.keywords:
            self.rpc.call(
                origin,
                "hit",
                (query_id, self.vn_id, keyword),
                size_bytes=96,
                dst_port=GNUTELLA_PORT,
            )
        if ttl > 1:
            for neighbor in list(self.neighbors):
                if neighbor in (src_vn, origin):
                    continue
                self.rpc.call(
                    neighbor,
                    "query",
                    (query_id, origin, keyword, ttl - 1),
                    size_bytes=80,
                    dst_port=GNUTELLA_PORT,
                )
        return None, 32

    def _on_hit(self, src_vn: int, payload):
        query_id, holder, keyword = payload
        self.network.hits_received += 1
        callback = self._hit_callbacks.get(query_id)
        if callback is not None:
            callback(holder, keyword)
        return None, 32


class GnutellaNetwork:
    """A population of servents over one emulation."""

    def __init__(
        self,
        emulation: Emulation,
        vn_ids: Sequence[int],
        target_degree: int = 4,
        max_degree: int = 8,
        rng: Optional[random.Random] = None,
    ):
        self.emulation = emulation
        self.target_degree = target_degree
        self.max_degree = max_degree
        self.rng = rng or emulation.rng.stream("gnutella")
        self.nodes: Dict[int, GnutellaNode] = {
            vn: GnutellaNode(self, vn) for vn in vn_ids
        }
        self.queries_issued = 0
        self.hits_received = 0

    def staged_join(
        self, interval_s: float = 0.05, retry_period_s: float = 2.0
    ) -> None:
        """Bring nodes up one by one, each bootstrapping off a random
        already-started node (system evolution). A maintenance loop
        re-joins nodes whose bootstrap attempt failed (e.g. every
        contacted peer was at max degree), until the overlay has no
        isolated servents."""
        ordered = sorted(self.nodes)
        sim = self.emulation.sim
        for index, vn in enumerate(ordered[1:], start=1):
            bootstrap = ordered[self.rng.randrange(index)]
            sim.at(index * interval_s, self.nodes[vn].join, bootstrap)

        join_done = len(ordered) * interval_s

        def retry() -> None:
            components = self.overlay_components()
            largest = max(components, key=len)
            if len(largest) == len(self.nodes):
                return
            anchors = sorted(largest)
            # Stragglers: everything outside the main component (a
            # failed join, or a small clique around one).
            for component in components:
                if component is largest:
                    continue
                for vn in sorted(component)[:2]:
                    self.nodes[vn].join(self.rng.choice(anchors))
            sim.schedule(retry_period_s, retry)

        sim.at(join_done + retry_period_s, retry)

    def place_content(self, keyword: str, copies: int) -> List[int]:
        """Install a keyword at ``copies`` random nodes."""
        holders = self.rng.sample(sorted(self.nodes), copies)
        for vn in holders:
            self.nodes[vn].keywords.add(keyword)
        return holders

    # -- connectivity analysis (the study's headline metric) ------------------

    def overlay_components(self) -> List[Set[int]]:
        """Connected components of the *overlay* graph (undirected
        view of neighbor sets)."""
        adjacency: Dict[int, Set[int]] = {vn: set() for vn in self.nodes}
        for vn, node in self.nodes.items():
            for neighbor in node.neighbors:
                if neighbor in adjacency:
                    adjacency[vn].add(neighbor)
                    adjacency[neighbor].add(vn)
        seen: Set[int] = set()
        components: List[Set[int]] = []
        for start in self.nodes:
            if start in seen:
                continue
            stack, component = [start], set()
            seen.add(start)
            while stack:
                current = stack.pop()
                component.add(current)
                for neighbor in adjacency[current]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
            components.append(component)
        return components

    def largest_component_fraction(self) -> float:
        components = self.overlay_components()
        return max(len(c) for c in components) / len(self.nodes)

    def mean_degree(self) -> float:
        return sum(len(n.neighbors) for n in self.nodes.values()) / len(self.nodes)
