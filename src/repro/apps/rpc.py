"""A small UDP request/response RPC layer for the case-study apps.

Chord lookups, gnutella control traffic, and overlay probes all need
request/response messaging with timeouts and retries over the
emulated (lossy!) network. Payloads are Python objects plus an
explicit wire size, consistent with the by-size packet model.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.emulator import VirtualNode

RPC_PORT = 9000

_rpc_ids = itertools.count()


class RpcNode:
    """RPC endpoint bound to one VN.

    Handlers are registered per method name and receive
    ``(src_vn, payload)``; their return value (``payload, size``)
    is sent back as the response. Calls take ``on_reply(payload)``
    and optional ``on_fail()`` callbacks.
    """

    def __init__(self, vn: VirtualNode, port: int = RPC_PORT):
        self.vn = vn
        self.sim = vn.stack.sim
        self.port = port
        self.socket = vn.udp_socket(port=port, on_receive=self._receive)
        self._handlers: Dict[str, Callable] = {}
        self._pending: Dict[int, Tuple[Callable, Optional[Callable], Any]] = {}
        self.calls_sent = 0
        self.calls_served = 0
        self.retries = 0
        self.failures = 0

    def register(self, method: str, handler: Callable) -> None:
        """``handler(src_vn, payload) -> (reply_payload, reply_size)``"""
        self._handlers[method] = handler

    def call(
        self,
        dst_vn: int,
        method: str,
        payload: Any = None,
        size_bytes: int = 64,
        on_reply: Optional[Callable] = None,
        on_fail: Optional[Callable] = None,
        timeout_s: float = 1.0,
        retries: int = 3,
        dst_port: Optional[int] = None,
    ) -> None:
        """Issue a request; retries on timeout, then ``on_fail``."""
        rpc_id = next(_rpc_ids)
        state = {"attempts": 0}
        dst_port = dst_port if dst_port is not None else self.port

        def send() -> None:
            state["attempts"] += 1
            self.calls_sent += 1
            if state["attempts"] > 1:
                self.retries += 1
            self.socket.send_to(
                dst_vn,
                dst_port,
                size_bytes,
                payload=("req", rpc_id, method, payload),
            )
            state["timer"] = self.sim.schedule(timeout_s, expire)

        def expire() -> None:
            if rpc_id not in self._pending:
                return
            if state["attempts"] <= retries:
                send()
            else:
                del self._pending[rpc_id]
                self.failures += 1
                if on_fail is not None:
                    on_fail()

        self._pending[rpc_id] = (on_reply, on_fail, state)
        send()

    def _receive(self, src_vn: int, sport: int, size: int, message) -> None:
        if not isinstance(message, tuple) or len(message) != 4:
            return
        kind, rpc_id, method, payload = message
        if kind == "req":
            handler = self._handlers.get(method)
            if handler is None:
                return
            self.calls_served += 1
            result = handler(src_vn, payload)
            if result is None:
                reply_payload, reply_size = None, 32
            else:
                reply_payload, reply_size = result
            self.socket.send_to(
                src_vn, sport, reply_size, payload=("rsp", rpc_id, method, reply_payload)
            )
        elif kind == "rsp":
            entry = self._pending.pop(rpc_id, None)
            if entry is None:
                return  # late duplicate
            on_reply, _on_fail, state = entry
            timer = state.get("timer")
            if timer is not None:
                timer.cancel()
            if on_reply is not None:
                on_reply(payload)

    def close(self) -> None:
        self.socket.close()
        for rpc_id, (_reply, _fail, state) in self._pending.items():
            timer = state.get("timer")
            if timer is not None:
                timer.cancel()
        self._pending.clear()
