"""Case-study applications run over the emulated network.

These reimplement the workloads of the paper's evaluation:

* :mod:`repro.apps.netperf` — the netperf/netserver load generators
  used throughout Sec. 3 and 4 (TCP bulk streams, UDP CBR, and the
  compute-per-byte senders of the VN-multiplexing study);
* :mod:`repro.apps.rondata` — a synthetic RON-like 12-site wide-area
  condition matrix (the published RON data is not shipped with the
  paper);
* :mod:`repro.apps.chord` / :mod:`repro.apps.cfs` — the Chord DHT
  and a CFS/DHash-style block store with a prefetch window (Sec. 5.1);
* :mod:`repro.apps.webserver` — static web servers and trace-playback
  clients (Sec. 5.2);
* :mod:`repro.apps.overlay` — an ACDC-style two-metric adaptive
  overlay (Sec. 5.3);
* :mod:`repro.apps.gnutella` — an unstructured peer-to-peer network
  (the 10,000-VN study mentioned in Sec. 5);
* :mod:`repro.apps.wireless` — the ad hoc wireless extension
  (broadcast medium + mobility).
"""

from repro.apps.netperf import (
    TcpStream,
    UdpCbrSource,
    UdpSink,
    ComputePerByteSender,
    ParetoOnOffSource,
)
from repro.apps.rondata import RonSite, ron_sites, ron_topology
from repro.apps.rpc import RpcNode
from repro.apps.chord import ChordNode, ChordRing, chord_id
from repro.apps.cfs import CfsClient, CfsNetwork, BLOCK_BYTES
from repro.apps.webserver import WebServer, TraceClient
from repro.apps.overlay import AcdcOverlay, OverlayMember
from repro.apps.gnutella import GnutellaNetwork, GnutellaNode
from repro.apps.wireless import WirelessNetwork, WirelessNode, Waypoint
from repro.apps.aodv import AodvRouter
from repro.apps.cdn import (
    CdnClient,
    DnsRedirector,
    ReplicaAgent,
    deploy_cdn,
)

__all__ = [
    "TcpStream",
    "UdpCbrSource",
    "UdpSink",
    "ComputePerByteSender",
    "ParetoOnOffSource",
    "RonSite",
    "ron_sites",
    "ron_topology",
    "RpcNode",
    "ChordNode",
    "ChordRing",
    "chord_id",
    "CfsClient",
    "CfsNetwork",
    "BLOCK_BYTES",
    "WebServer",
    "TraceClient",
    "AcdcOverlay",
    "OverlayMember",
    "GnutellaNetwork",
    "GnutellaNode",
    "WirelessNetwork",
    "WirelessNode",
    "Waypoint",
    "AodvRouter",
    "CdnClient",
    "DnsRedirector",
    "ReplicaAgent",
    "deploy_cdn",
]
