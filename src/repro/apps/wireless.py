"""Ad hoc wireless emulation (paper Sec. 5, final case study).

The paper extended ModelNet to "support the broadcast nature of
wireless communication (packet transmission consumes bandwidth at
all nodes within communication range of the sender) and node
mobility (topology change is the rule rather than the exception)".

This module implements that extension as a dedicated fabric:

* nodes occupy positions on a plane and share a radio channel;
* a transmission occupies the medium at *every* node within range of
  the sender for its full airtime; a receiver hit by two overlapping
  transmissions sees a collision and drops both;
* senders carrier-sense their local medium and defer while busy;
* waypoint mobility moves nodes continuously, so the connectivity
  graph changes as the rule rather than the exception.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.randomness import RngRegistry
from repro.engine.simulator import Simulator


@dataclass
class Waypoint:
    """Random-waypoint mobility parameters."""

    speed_low: float = 1.0  # m/s
    speed_high: float = 5.0
    pause_s: float = 2.0


class WirelessNode:
    """One radio node."""

    def __init__(self, network: "WirelessNetwork", node_id: int, x: float, y: float):
        self.network = network
        self.node_id = node_id
        self.x = x
        self.y = y
        self.on_receive: Optional[Callable] = None
        #: The local medium is busy until this time (carrier sense).
        self.medium_busy_until = 0.0
        #: Ongoing receptions: (end_time, sender); two overlapping ->
        #: collision.
        self._receiving: List[Tuple[float, int]] = []
        self.sent = 0
        self.received = 0
        self.collisions = 0
        self._backlog: List[Tuple[int, Optional[int], object]] = []

    # -- geometry -----------------------------------------------------------

    def distance_to(self, other: "WirelessNode") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def in_range(self, other: "WirelessNode") -> bool:
        return self.distance_to(other) <= self.network.range_m

    # -- sending ----------------------------------------------------------------

    def broadcast(self, size_bytes: int, payload=None) -> None:
        """Queue a broadcast; sent when the local medium is free."""
        self._backlog.append((size_bytes, None, payload, 0))
        self._try_send()

    def send_to(self, dst_id: int, size_bytes: int, payload=None) -> None:
        """Unicast is physically a broadcast others ignore. Like
        802.11, unicast frames that miss their ACK (collision, or the
        target moved away) are retransmitted a bounded number of
        times with backoff."""
        self._backlog.append((size_bytes, dst_id, payload, 0))
        self._try_send()

    def _requeue(self, size_bytes: int, dst_id: int, payload, attempt: int) -> None:
        self._backlog.insert(0, (size_bytes, dst_id, payload, attempt))
        self._try_send()

    def _try_send(self) -> None:
        if not self._backlog:
            return
        sim = self.network.sim
        if self.medium_busy_until > sim.now:
            # Defer until carrier clears (plus tiny random backoff).
            backoff = self.network.rng.uniform(0.0, self.network.slot_s)
            sim.at(self.medium_busy_until + backoff, self._try_send)
            return
        size_bytes, dst_id, payload, attempt = self._backlog.pop(0)
        self.sent += 1
        self.network._transmit(self, size_bytes, dst_id, payload, attempt)


class WirelessNetwork:
    """A shared-medium wireless fabric with mobility."""

    def __init__(
        self,
        sim: Simulator,
        area_m: float = 300.0,
        range_m: float = 100.0,
        bitrate_bps: float = 2e6,  # 802.11 (1997) class
        num_nodes: int = 0,
        rng: Optional[random.Random] = None,
        seed: int = 0,
    ):
        self.sim = sim
        self.area_m = area_m
        self.range_m = range_m
        self.bitrate_bps = bitrate_bps
        self.rng = rng if rng is not None else RngRegistry(seed).stream("wireless")
        self.slot_s = 20e-6
        self.propagation_s = 1e-6
        #: 802.11-style link-layer retransmissions for unicast frames.
        self.unicast_retries = 4
        self.retransmissions = 0
        self.nodes: List[WirelessNode] = []
        self.transmissions = 0
        self.deliveries = 0
        self.collision_losses = 0
        for _ in range(num_nodes):
            self.add_node(
                self.rng.uniform(0, area_m), self.rng.uniform(0, area_m)
            )

    def add_node(self, x: float, y: float) -> WirelessNode:
        node = WirelessNode(self, len(self.nodes), x, y)
        self.nodes.append(node)
        return node

    # -- the broadcast medium ---------------------------------------------------

    def airtime(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.bitrate_bps

    def _transmit(
        self, sender: WirelessNode, size_bytes: int, dst_id, payload,
        attempt: int = 0,
    ) -> None:
        """Transmission consumes bandwidth at all nodes in range of
        the sender (the paper's wireless-broadcast semantics)."""
        self.transmissions += 1
        now = self.sim.now
        duration = self.airtime(size_bytes)
        end = now + duration
        sender.medium_busy_until = max(sender.medium_busy_until, end)
        outcome = {"acked": dst_id is None}
        for other in self.nodes:
            if other is sender or not sender.in_range(other):
                continue
            other.medium_busy_until = max(other.medium_busy_until, end)
            collided = any(
                existing_end > now for existing_end, _src in other._receiving
            )
            other._receiving.append((end, sender.node_id))
            if collided:
                other.collisions += 1
                self.collision_losses += 1
                continue
            self.sim.at(
                end + self.propagation_s,
                self._deliver,
                sender.node_id,
                other.node_id,
                dst_id,
                size_bytes,
                payload,
                end,
                outcome,
            )
        if dst_id is not None and attempt < self.unicast_retries:
            # ACK check slightly after delivery resolution.
            self.sim.at(
                end + 2 * self.propagation_s,
                self._ack_check,
                sender.node_id,
                dst_id,
                size_bytes,
                payload,
                attempt,
                outcome,
            )

    def _ack_check(
        self, sender_id, dst_id, size_bytes, payload, attempt, outcome
    ) -> None:
        if outcome["acked"]:
            return
        self.retransmissions += 1
        self.nodes[sender_id]._requeue(size_bytes, dst_id, payload, attempt + 1)

    def _deliver(
        self, src_id, receiver_id, dst_id, size_bytes, payload, end,
        outcome=None,
    ) -> None:
        receiver = self.nodes[receiver_id]
        # A collision that started after we scheduled delivery also
        # destroys the frame.
        overlapping = [
            1
            for rend, rsrc in receiver._receiving
            if rsrc != src_id and rend > end - self.airtime(size_bytes)
        ]
        receiver._receiving = [
            (rend, rsrc) for rend, rsrc in receiver._receiving if rend > self.sim.now
        ]
        if overlapping:
            receiver.collisions += 1
            self.collision_losses += 1
            return
        if dst_id is not None and dst_id != receiver_id:
            return  # unicast frame overheard and discarded
        if outcome is not None and dst_id == receiver_id:
            outcome["acked"] = True
        receiver.received += 1
        self.deliveries += 1
        if receiver.on_receive is not None:
            receiver.on_receive(src_id, size_bytes, payload)

    # -- mobility -------------------------------------------------------------------

    def start_mobility(self, waypoint: Waypoint, tick_s: float = 0.5) -> None:
        """Random-waypoint movement for every node."""
        for node in self.nodes:
            self._next_leg(node, waypoint, tick_s)

    def _next_leg(self, node: WirelessNode, waypoint: Waypoint, tick_s: float) -> None:
        target_x = self.rng.uniform(0, self.area_m)
        target_y = self.rng.uniform(0, self.area_m)
        speed = self.rng.uniform(waypoint.speed_low, waypoint.speed_high)
        distance = math.hypot(target_x - node.x, target_y - node.y)
        duration = distance / speed if speed > 0 else waypoint.pause_s
        steps = max(1, int(duration / tick_s))
        dx = (target_x - node.x) / steps
        dy = (target_y - node.y) / steps

        def step(remaining: int) -> None:
            node.x += dx
            node.y += dy
            if remaining > 1:
                self.sim.schedule(tick_s, step, remaining - 1)
            else:
                self.sim.schedule(
                    waypoint.pause_s, self._next_leg, node, waypoint, tick_s
                )

        self.sim.schedule(tick_s, step, steps)

    # -- analysis ----------------------------------------------------------------------

    def connectivity_graph(self) -> Dict[int, List[int]]:
        """Current in-range adjacency."""
        adjacency: Dict[int, List[int]] = {n.node_id: [] for n in self.nodes}
        for i, a in enumerate(self.nodes):
            for b in self.nodes[i + 1 :]:
                if a.in_range(b):
                    adjacency[a.node_id].append(b.node_id)
                    adjacency[b.node_id].append(a.node_id)
        return adjacency

    def partition_count(self) -> int:
        """Number of connected components in the current in-range graph."""
        adjacency = self.connectivity_graph()
        seen, components = set(), 0
        for start in adjacency:
            if start in seen:
                continue
            components += 1
            stack = [start]
            seen.add(start)
            while stack:
                current = stack.pop()
                for neighbor in adjacency[current]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
        return components
