"""The documented front door: ``Scenario``.

One fluent object drives the paper's whole pipeline —
Create → Distill → Assign → Bind → Run — and hands back a
:class:`~repro.obs.RunReport`:

>>> report = (
...     Scenario.from_gml("net.gml")
...     .distill("last-mile")
...     .assign(cores=2)
...     .bind(hosts=4)
...     .config(tick_s=1e-4, seed=7)
...     .run(until=10.0)
... )

Every stage is optional and defaults to the paper's defaults
(hop-by-hop distillation, one core, one host). Traffic is installed
with :meth:`Scenario.traffic` callbacks that receive the built
:class:`~repro.core.emulator.Emulation`; :meth:`Scenario.netperf` is
the canned bulk-TCP workload used throughout the evaluation.

The facade wraps — and does not replace — the explicit
:class:`~repro.core.phases.ExperimentPipeline` /
:class:`~repro.core.emulator.Emulation` construction, which keeps
working unchanged for callers that need custom assignments, bindings,
or routing protocols.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.assign import Assignment
from repro.core.bind import Binding
from repro.core.distill import DistillationMode
from repro.core.emulator import Emulation, EmulationConfig
from repro.core.phases import ExperimentPipeline
from repro.engine.randomness import RngRegistry
from repro.engine.simulator import Simulator
from repro.engine.sync import PartitionedSimulator
from repro.faults import FaultPlan, PLAN_OVERRIDE_KEYS
from repro.hardware.calibration import min_cross_core_latency
from repro.obs import MetricsRegistry, NULL_REGISTRY, RunReport, build_report
from repro.topology.gml import load_gml, parse_gml
from repro.topology.graph import Topology

#: Distillation-mode spellings accepted anywhere a mode is a string.
DISTILL_MODES = {
    "hop-by-hop": DistillationMode.HOP_BY_HOP,
    "last-mile": DistillationMode.WALK_IN,
    "walk-in": DistillationMode.WALK_IN,
    "end-to-end": DistillationMode.END_TO_END,
}


def resolve_distill_mode(
    mode: Union[str, DistillationMode]
) -> DistillationMode:
    if isinstance(mode, DistillationMode):
        return mode
    try:
        return DISTILL_MODES[mode]
    except KeyError:
        raise ValueError(
            f"unknown distillation mode {mode!r}; "
            f"valid: {', '.join(sorted(DISTILL_MODES))}"
        ) from None


@dataclass(frozen=True)
class ScenarioSpec:
    """A picklable, declarative snapshot of a :class:`Scenario`.

    This is what crosses process boundaries for the multiprocess
    backend: every worker calls :meth:`Scenario.from_spec` and
    rebuilds the identical emulation (builds are deterministic — the
    ``repro.check`` contract). Only declarative traffic survives the
    round trip, which is why :meth:`Scenario.to_spec` rejects custom
    traffic callables.
    """

    name: str
    topology: Topology
    mode: DistillationMode
    walk_in: int
    walk_out: int
    cores: int
    assignment: Optional[Assignment]
    hosts: int
    strategy: str
    binding: Optional[Binding]
    knobs: dict
    reference: bool
    seed: int
    #: ``(flows, seed)`` per :meth:`Scenario.netperf` call.
    netperf: Tuple[Tuple[int, Optional[int]], ...]
    #: :meth:`Scenario.inject_fault` duration — a *deliberately*
    #: nondeterministic workload (sanitizer self-test). Declarative so
    #: the fault reaches multiprocess workers instead of being masked
    #: by the custom-traffic rejection in :meth:`Scenario.to_spec`.
    fault_seconds: Optional[float] = None
    #: ``(entry_name, ((param, value), ...))`` per
    #: :meth:`Scenario.workload` call — registry workloads from
    #: :mod:`repro.traffic`, portable across process boundaries.
    traffic: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...] = ()
    #: Declarative fault timeline (:class:`repro.faults.FaultPlan`) —
    #: frozen and picklable, so scheduled topology mutation reaches
    #: multiprocess workers, checkpoints, and sweeps intact.
    faults: Optional[FaultPlan] = None

    def with_overrides(self, **overrides) -> "ScenarioSpec":
        """Derive a new spec with the named knobs replaced — the single
        sanctioned way to parameterize sweeps.

        Accepted names, resolved in this order: spec-level fields
        (``name``, ``seed``, ``mode`` — string or enum — ``cores``,
        ``hosts``, ``strategy``, ``walk_in``, ``walk_out``,
        ``reference``, ``fault_seconds``, ``topology``), then
        :class:`EmulationConfig` knobs (merged into ``knobs``), then
        parameters of any registered traffic entry this spec carries
        (applied to every entry that declares them; ``flows`` also
        rewrites :meth:`Scenario.netperf` tuples). ``faults`` replaces
        the whole fault plan; the fault-intensity axes
        (:data:`repro.faults.PLAN_OVERRIDE_KEYS`) rewrite the plan's
        perturbation entries *and* any traffic entry sharing the name,
        so one sweep axis moves both. Unknown names raise
        :class:`ValueError` listing the valid ones, the same contract
        as :meth:`Scenario.config`.

        Overriding ``cores`` drops a precomputed assignment and
        ``hosts`` drops a precomputed binding — an explicit placement
        is only valid for the geometry it was computed for.
        """
        from repro.traffic import traffic_params

        spec_passthrough = {
            "name", "topology", "walk_in", "walk_out", "strategy",
            "reference", "seed", "fault_seconds",
        }
        config_fields = set(EmulationConfig.field_names())
        updates: Dict[str, Any] = {}
        knobs = dict(self.knobs)
        netperf = list(self.netperf)
        traffic = [(name, dict(params)) for name, params in self.traffic]
        faults = self.faults
        unknown = []
        for key, value in overrides.items():
            if key == "mode":
                updates["mode"] = resolve_distill_mode(value)
            elif key == "cores":
                updates["cores"] = int(value)
                updates["assignment"] = None
            elif key == "hosts":
                updates["hosts"] = int(value)
                updates["binding"] = None
            elif key == "faults":
                faults = (
                    value
                    if (value is None or isinstance(value, FaultPlan))
                    else FaultPlan.from_jsonable(value)
                )
            elif key in spec_passthrough:
                updates[key] = value
            else:
                applied = False
                if key in config_fields:
                    knobs[key] = value
                    applied = True
                for name, params in traffic:
                    if key in traffic_params(name):
                        params[key] = value
                        applied = True
                if key == "flows" and netperf:
                    netperf = [(int(value), s) for _, s in netperf]
                    applied = True
                if faults is not None and key in PLAN_OVERRIDE_KEYS:
                    faults = faults.with_overrides(**{key: value})
                    applied = True
                if not applied:
                    unknown.append(key)
        if unknown:
            valid = (
                spec_passthrough
                | {"mode", "cores", "hosts", "faults"}
                | config_fields
            )
            for name, _ in traffic:
                valid |= set(traffic_params(name))
            if netperf:
                valid.add("flows")
            if faults is not None:
                valid |= set(PLAN_OVERRIDE_KEYS)
            raise ValueError(
                f"unknown override knob(s) {sorted(unknown)}; valid: "
                f"{', '.join(sorted(valid))}"
            )
        return replace(
            self,
            knobs=knobs,
            netperf=tuple(netperf),
            traffic=tuple(
                (name, tuple(sorted(params.items())))
                for name, params in traffic
            ),
            faults=faults,
            **updates,
        )


def _nondeterminism_fault(seconds: float) -> Callable[[Emulation], Any]:
    """Traffic callback that deliberately breaks determinism.

    Schedules a self-perpetuating tick whose period comes from an
    *unseeded* RNG, so two same-seed runs dispatch different event
    streams — the positive control for ``repro-net sanitize``. The
    ticks land on the emulation's front-door clock (domain 0 for a
    partitioned simulator), so on the multiprocess backend the
    divergence happens *inside a worker* and must be caught by the
    composed per-domain digests.
    """
    import random as _random

    def setup(emulation: Emulation):
        rng = _random.Random()  # repro: allow-rng (deliberate fault)
        sim = emulation.sim

        def tick() -> None:
            if sim.now < seconds:
                sim.schedule(rng.uniform(1e-4, 1e-3), tick)

        sim.schedule(rng.uniform(1e-4, 1e-3), tick)

    setup._fault_params = float(seconds)
    return setup


class Scenario:
    """A declarative experiment: topology in, :class:`RunReport` out."""

    def __init__(self, topology: Topology, name: str = ""):
        self.name = name or topology.name or "scenario"
        self._topology = topology
        self._mode: DistillationMode = DistillationMode.HOP_BY_HOP
        self._walk_in = 1
        self._walk_out = 0
        self._cores = 1
        self._assignment: Optional[Assignment] = None
        self._hosts = 1
        self._strategy = "contiguous"
        self._binding: Optional[Binding] = None
        self._knobs: dict = {}
        self._reference = False
        self._seed = 0
        # Observability wiring is parent-side runtime state: a worker
        # rebuilt from the spec attaches its own registry, so neither
        # field belongs in the ScenarioSpec round-trip.
        self._registry: Optional[MetricsRegistry] = None  # repro: allow-spec-drift
        self._observe = True  # repro: allow-spec-drift
        self._traffic: List[Callable[[Emulation], Any]] = []
        self._fault_seconds: Optional[float] = None
        self._fault_plan: Optional[FaultPlan] = None
        #: Resilience knobs (None = plain execution) and an optional
        #: checkpoint to resume from. Parent-side only: neither enters
        #: the spec, so they never change what workers compute.
        self._resilience = None  # repro: allow-spec-drift
        self._resume = None  # repro: allow-spec-drift
        # Build products.
        self.sim: Optional[Union[Simulator, PartitionedSimulator]] = None
        self.pipeline: Optional[ExperimentPipeline] = None
        self.emulation: Optional[Emulation] = None
        self.report: Optional[RunReport] = None
        #: Whatever each traffic setup returned, in registration
        #: order; registry workload handles expose ``metrics()``.
        self.traffic_handles: List[Any] = []
        #: Filled by a multiprocess run: epochs, digests, worker count.
        self.mp_result = None

    # -- Create -----------------------------------------------------------

    @classmethod
    def from_topology(cls, topology: Topology, name: str = "") -> "Scenario":
        """Start from an in-memory topology (any generator/importer)."""
        return cls(topology, name=name)

    @classmethod
    def from_gml(cls, path: str, name: str = "") -> "Scenario":
        """Start from a GML file (the Create phase's lingua franca)."""
        return cls(load_gml(path), name=name)

    @classmethod
    def from_gml_text(cls, text: str, name: str = "") -> "Scenario":
        """Start from GML source text."""
        return cls(parse_gml(text), name=name)

    # -- Distill / Assign / Bind -----------------------------------------

    def distill(
        self,
        mode: Union[str, DistillationMode] = "hop-by-hop",
        walk_in: int = 1,
        walk_out: int = 0,
    ) -> "Scenario":
        """Choose the distillation mode (Sec. 4.1), by name or enum."""
        self._check_mutable()
        self._mode = resolve_distill_mode(mode)
        self._walk_in = walk_in
        self._walk_out = walk_out
        return self

    def assign(
        self,
        cores: int = 1,
        assignment: Optional[Assignment] = None,
    ) -> "Scenario":
        """Partition pipes across ``cores`` (greedy k-clusters), or
        install a precomputed :class:`Assignment`."""
        self._check_mutable()
        if assignment is None and cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        self._cores = assignment.num_cores if assignment else cores
        self._assignment = assignment
        return self

    def bind(
        self,
        hosts: int = 1,
        strategy: str = "contiguous",
        binding: Optional[Binding] = None,
    ) -> "Scenario":
        """Bind VNs onto ``hosts`` edge machines."""
        self._check_mutable()
        if binding is None and hosts < 1:
            raise ValueError(f"hosts must be >= 1, got {hosts}")
        self._hosts = hosts
        self._strategy = strategy
        self._binding = binding
        return self

    # -- Run configuration -------------------------------------------------

    def config(self, **knobs) -> "Scenario":
        """Set :class:`EmulationConfig` knobs by name; unknown names
        raise :class:`ValueError` listing the valid ones.

        ``reference=True`` selects the exact-time, infinite-hardware
        configuration (:meth:`EmulationConfig.reference`) before
        applying the remaining knobs. ``seed=`` is accepted here as a
        convenience for :meth:`seed`.
        """
        self._check_mutable()
        knobs = dict(knobs)
        if knobs.pop("reference", False):
            self._reference = True
        if "seed" in knobs:
            self._seed = knobs.pop("seed")
        valid = set(EmulationConfig.field_names())
        unknown = set(knobs) - valid
        if unknown:
            raise ValueError(
                f"unknown config knob(s) {sorted(unknown)}; valid: "
                f"{', '.join(sorted(valid | {'reference'}))}"
            )
        self._knobs.update(knobs)
        return self

    def seed(self, seed: int) -> "Scenario":
        """Seed for assignment, binding, and pipe-loss randomness."""
        self._check_mutable()
        self._seed = seed
        return self

    def backend(
        self,
        name: str = "serial",
        domains: Optional[int] = None,
        workers: Optional[int] = None,
        kernel: Optional[str] = None,
    ) -> "Scenario":
        """Choose the execution backend.

        ``"serial"`` (the default) runs everything in-process: one
        event domain unless ``domains`` says otherwise, in which case
        the epoch-synchronized partitioned engine runs serially.
        ``"multiprocess"`` runs one event domain per core (or
        ``domains``) across ``workers`` processes (0 = one per
        domain). Digests are identical across worker counts.

        ``kernel`` selects the pipe hot-core implementation
        (``"scalar"``, ``"batched"``, or ``"numpy"``); all kernels
        dispatch digest-identical event streams.
        """
        knobs: dict = {"backend": name}
        if domains is not None:
            knobs["num_domains"] = domains
        if workers is not None:
            knobs["workers"] = workers
        if kernel is not None:
            knobs["kernel"] = kernel
        return self.config(**knobs)

    def observe(
        self,
        enabled: bool = True,
        registry: Optional[MetricsRegistry] = None,
    ) -> "Scenario":
        """Control observability. Scenarios observe by default (they
        exist to produce reports); ``observe(False)`` runs with the
        zero-overhead null registry and the report carries only
        pull-collected statistics."""
        self._check_mutable()
        self._observe = enabled
        self._registry = registry
        return self

    def traffic(self, setup: Callable[[Emulation], Any]) -> "Scenario":
        """Register a traffic generator: ``setup(emulation)`` is
        called once the emulation is built, before the clock runs."""
        self._check_mutable()
        self._traffic.append(setup)
        return self

    def netperf(self, flows: int = 4, seed: Optional[int] = None) -> "Scenario":
        """Canned workload: ``flows`` random-pair bulk TCP streams
        (the paper's netperf senders)."""

        def setup(emulation: Emulation):
            from repro.apps.netperf import TcpStream

            rng = RngRegistry(
                self._seed if seed is None else seed
            ).stream("netperf-pairs")
            vns = list(range(emulation.num_vns))
            rng.shuffle(vns)
            count = min(flows, len(vns) // 2)
            return [
                TcpStream(emulation, vns[2 * i], vns[2 * i + 1])
                for i in range(count)
            ]

        # Declarative marker: lets to_spec() ship this workload to
        # multiprocess workers as plain parameters.
        setup._netperf_params = (flows, seed)
        return self.traffic(setup)

    def workload(self, name: str, **params) -> "Scenario":
        """Install a named workload from the :mod:`repro.traffic`
        registry (``netperf``, ``udp-cbr``, ``cfs``, ``acdc``).

        Registry workloads are declarative: they survive
        :meth:`to_spec`/:meth:`from_spec`, so sweeps and multiprocess
        workers can carry them as plain ``(name, params)`` data.
        Unknown entry or parameter names raise :class:`ValueError`.
        """
        from repro.traffic import make_setup

        self._check_mutable()
        return self.traffic(make_setup(name, params))

    def variants(self, **axes) -> List[ScenarioSpec]:
        """Expand this scenario into the cartesian product of the
        given axes, one :class:`ScenarioSpec` per point.

        Each axis is ``knob=[value, ...]`` with any name
        :meth:`ScenarioSpec.with_overrides` accepts. Axes expand in
        keyword order with the last axis varying fastest, so the list
        order is deterministic:

        >>> specs = scenario.variants(seed=[1, 2], cores=[1, 4])
        >>> [(s.seed, s.cores) for s in specs]
        [(1, 1), (1, 4), (2, 1), (2, 4)]
        """
        base = self.to_spec()
        names = list(axes)
        return [
            base.with_overrides(**dict(zip(names, point)))
            for point in itertools.product(*(axes[n] for n in names))
        ]

    def faults(self, plan) -> "Scenario":
        """Install a declarative fault timeline
        (:class:`repro.faults.FaultPlan`, or its JSON-able mapping
        form). The plan travels inside the :class:`ScenarioSpec`, is
        applied by the single sanctioned applier on the owning
        kernel, and produces digest-identical event streams across
        backends, worker counts, and kernels. Validated against the
        topology — and against the partitioned lookahead floor — at
        :meth:`build`."""
        self._check_mutable()
        if plan is not None and not isinstance(plan, FaultPlan):
            plan = FaultPlan.from_jsonable(plan)
        self._fault_plan = plan
        return self

    def inject_fault(self, seconds: float = 0.01) -> "Scenario":
        """Install a *deliberately nondeterministic* workload for
        ``seconds`` of virtual time (the sanitizer's positive
        control). Declarative, so it survives the spec round trip and
        runs inside multiprocess workers — divergence must be
        detected there, not masked by the parent."""
        self._check_mutable()
        if seconds <= 0:
            raise ValueError(f"fault duration must be > 0, got {seconds}")
        self._fault_seconds = float(seconds)
        return self.traffic(_nondeterminism_fault(seconds))

    def resilience(
        self,
        checkpoint_every: Optional[float] = None,
        checkpoint: Optional[str] = None,
        max_wall: Optional[float] = None,
        max_rss_mb: Optional[float] = None,
        max_events: Optional[int] = None,
        epoch_timeout: Optional[float] = None,
        heartbeat_interval: Optional[float] = None,
        retries: Optional[int] = None,
        degrade: Optional[bool] = None,
        chaos_kill: Optional[Tuple[int, int]] = None,
        chaos_signal: Optional[int] = None,
    ) -> "Scenario":
        """Enable supervised execution (see :mod:`repro.resilience`).

        Any non-``None`` argument updates the scenario's
        :class:`~repro.resilience.policy.ResilienceConfig`; calling
        with no arguments enables the resilient run path with
        defaults. These knobs are parent-side only — they never enter
        the spec, so digests are unaffected. Unlike pipeline stages
        they may be set after :meth:`build` (they configure the run,
        not the object graph).
        """
        from repro.resilience import ResilienceConfig

        cfg = self._resilience or ResilienceConfig()
        if checkpoint_every is not None:
            cfg.checkpoint_every_s = float(checkpoint_every)
        if checkpoint is not None:
            cfg.checkpoint_path = checkpoint
        if max_wall is not None:
            cfg.max_wall_s = float(max_wall)
        if max_rss_mb is not None:
            cfg.max_rss_mb = float(max_rss_mb)
        if max_events is not None:
            cfg.max_events = int(max_events)
        if epoch_timeout is not None:
            cfg.epoch_timeout_s = float(epoch_timeout)
        if heartbeat_interval is not None:
            cfg.heartbeat_interval_s = float(heartbeat_interval)
        if retries is not None:
            cfg.max_attempts = int(retries)
        if degrade is not None:
            cfg.degrade = bool(degrade)
        if chaos_kill is not None:
            cfg.chaos_kill = chaos_kill
        if chaos_signal is not None:
            cfg.chaos_signal = chaos_signal
        self._resilience = cfg
        return self

    @classmethod
    def from_checkpoint(cls, checkpoint) -> "Scenario":
        """Reconstruct a scenario from a checkpoint (path or
        :class:`~repro.resilience.checkpoint.Checkpoint`) for
        ``--resume``: the run replays deterministically from t=0,
        *verifies* digests/event counts/RNG states at the checkpoint
        barrier, then continues to ``until``. Like worker rebuilds,
        the resumed scenario observes with the null registry."""
        from repro.resilience import Checkpoint, load_checkpoint

        if not isinstance(checkpoint, Checkpoint):
            checkpoint = load_checkpoint(checkpoint)
        scenario = cls.from_spec(checkpoint.spec)
        scenario._resume = checkpoint
        return scenario

    # -- Build / Run --------------------------------------------------------

    def _check_mutable(self) -> None:
        if self.emulation is not None:
            raise RuntimeError("scenario already built; stages are frozen")

    @property
    def registry(self) -> MetricsRegistry:
        """The live registry (or the shared null one when disabled)."""
        if not self._observe:
            return NULL_REGISTRY
        if self._registry is None:
            self._registry = MetricsRegistry()
        return self._registry

    def _resolved_domains(self, config: EmulationConfig) -> int:
        """Domain count for this scenario: explicit ``num_domains``,
        else the backend default (cores for multiprocess, 1 for
        serial), never more than the core count."""
        domains = config.num_domains
        if domains <= 0:
            domains = self._cores if config.backend == "multiprocess" else 1
        return min(domains, self._cores)

    def build(self) -> Emulation:
        """Walk the pipeline and construct the emulation (idempotent);
        traffic callbacks fire here."""
        if self.emulation is not None:
            return self.emulation
        registry = self.registry
        config = (
            EmulationConfig.reference(**self._knobs)
            if self._reference
            else EmulationConfig(**self._knobs)
        )
        num_domains = self._resolved_domains(config)
        if num_domains > 1:
            self.sim = PartitionedSimulator(
                num_domains,
                lookahead=min_cross_core_latency(config.core_spec),
                kernel=config.kernel,
            )
        else:
            self.sim = Simulator(kernel=config.kernel)
        with registry.timed("phase.build_s"):
            pipeline = ExperimentPipeline(self.sim, seed=self._seed)
            pipeline.create(self._topology)
            pipeline.distill(
                self._mode, walk_in=self._walk_in, walk_out=self._walk_out
            )
            pipeline.assign(self._cores, assignment=self._assignment)
            pipeline.bind(self._hosts, self._strategy, binding=self._binding)
            self.pipeline = pipeline
            self.emulation = pipeline.run(
                config, registry=registry if registry.enabled else None
            )
        registry.gauge("distill.pipes").set(self.pipeline.distillation.total_pipes)
        registry.gauge("distill.preserved_links").set(
            self.pipeline.distillation.preserved_links
        )
        # The fault plan arms before traffic setups so workload
        # handles (e.g. acdc) can read emulation.fault_applier.
        if self._fault_plan is not None and self._fault_plan:
            self.emulation.install_fault_plan(self._fault_plan)
        self.traffic_handles = [
            setup(self.emulation) for setup in self._traffic
        ]
        return self.emulation

    def _export_traffic_metrics(self, report: RunReport) -> None:
        """Fold workload-level results (``handle.metrics()``) into the
        report under ``traffic.<entry>.<key>``. Only meaningful after
        the clock ran in *this* process, so the multiprocess parent —
        whose emulation never runs — skips it."""
        for handle in self.traffic_handles:
            metrics = getattr(handle, "metrics", None)
            if callable(metrics):
                for key, value in metrics().items():
                    report.metrics[f"traffic.{key}"] = value

    def run(self, until: Optional[float] = None) -> RunReport:
        """Build (if needed), run the clock to ``until`` virtual
        seconds, and return the :class:`RunReport`.

        ``until`` defaults to the original run's target when resuming
        from a checkpoint. With resilience configured (or a resume
        pending) the supervised run path applies: budget guards,
        checkpoints, verified resume, and multiprocess degradation;
        a budget abort raises
        :class:`~repro.resilience.policy.RunAborted` carrying the
        partial report.
        """
        if until is None:
            if self._resume is None:
                raise ValueError(
                    "until is required (only checkpoint resumes have "
                    "an implied target)"
                )
            until = self._resume.until
        if until <= 0:
            raise ValueError(f"until must be > 0, got {until}")
        emulation = self.build()
        registry = self.registry
        multiprocess = (
            emulation.config.backend == "multiprocess"
            and emulation.num_domains > 1
        )
        if self._resilience is not None or self._resume is not None:
            from repro.resilience import ResilienceConfig

            res = self._resilience or ResilienceConfig()
            if multiprocess:
                return self._run_multiprocess_resilient(
                    until, registry, res
                )
            return self._run_serial_resilient(until, registry, res)
        if multiprocess:
            return self._run_multiprocess(until, registry)
        t0 = perf_counter()
        with registry.timed("phase.run_s"):
            self.sim.run(until=until)
        wall = perf_counter() - t0
        self.report = build_report(
            emulation,
            registry=registry if registry.enabled else None,
            name=self.name,
            wall_time_s=wall,
        )
        self._export_traffic_metrics(self.report)
        return self.report

    def _run_multiprocess(
        self, until: float, registry: MetricsRegistry
    ) -> RunReport:
        """Run across worker processes; the parent's (never-run)
        emulation is patched with the merged statistics, so the
        standard report path applies. Worker-resident state the
        parent cannot patch (TCP stacks, edge CPUs) arrives as a
        metric overlay."""
        from repro.engine.parallel import run_multiprocess

        t0 = perf_counter()
        with registry.timed("phase.run_s"):
            result = run_multiprocess(
                self, until, workers=self.emulation.config.workers
            )
        wall = perf_counter() - t0
        self.mp_result = result
        self.report = build_report(
            self.emulation,
            registry=registry if registry.enabled else None,
            name=self.name,
            wall_time_s=wall,
        )
        self.report.metrics.update(result.metric_overlay)
        return self.report

    # -- resilient run paths ----------------------------------------------

    def _checkpoint_writer(self, res, until):
        from repro.resilience import CheckpointWriter

        if not res.checkpoint_every_s:
            return None
        path = res.checkpoint_path or f"{self.name}.ckpt"
        return CheckpointWriter(
            path, res.checkpoint_every_s, self.to_spec(), until, self._seed
        )

    def _annotate_resilience(
        self,
        report: RunReport,
        outcome: str,
        digest: str,
        events: Optional[int] = None,
        writer=None,
        counters=None,
        downgrades: int = 0,
    ) -> None:
        """Record ``run.outcome`` and every resilience counter in the
        report — present (zero-valued if idle) on all resilient runs,
        so partial reports are machine-checkable."""
        merged = {"heartbeats_missed": 0, "workers_restarted": 0, "retries": 0}
        if counters:
            merged.update(counters)
        metrics = report.metrics
        metrics["run.outcome"] = outcome
        metrics["run.digest"] = digest
        if events is not None:
            metrics["run.events"] = events
        metrics["resilience.heartbeats_missed"] = merged["heartbeats_missed"]
        metrics["resilience.workers_restarted"] = merged["workers_restarted"]
        metrics["resilience.retries"] = merged["retries"]
        metrics["resilience.checkpoints_written"] = (
            writer.written if writer is not None else 0
        )
        metrics["resilience.downgrades"] = downgrades

    def _run_serial_resilient(
        self,
        until: float,
        registry: MetricsRegistry,
        res,
        degrade_reason: Optional[str] = None,
        counters=None,
    ) -> RunReport:
        """Serial execution under supervision: digest streaming, budget
        checks and checkpoints at barriers, verified resume.

        Partitioned scenarios hook the epoch barrier (`on_epoch`), so
        budget/checkpoint logic never alters the epoch structure;
        single-domain scenarios run in virtual-time chunks, which is
        stream-identical for one kernel. Also the landing path for
        multiprocess degradation (``degrade_reason`` set): the parent's
        never-run emulation executes serially with identical digests
        by construction.
        """
        from repro.check.sanitize import SimSanitizer
        from repro.resilience import (
            BudgetExceeded,
            CheckpointError,
            ResumeVerifier,
            RunAborted,
        )

        emulation = self.emulation
        sim = self.sim
        resume = self._resume
        budget = res.budget().start()
        writer = self._checkpoint_writer(res, until)
        verifier = ResumeVerifier(resume) if resume is not None else None
        partitioned = (
            getattr(sim, "domains", None) is not None and sim.num_domains > 1
        )
        sanitizer = SimSanitizer(keep_records=False).attach(sim)
        abort: Optional[BudgetExceeded] = None
        t0 = perf_counter()
        try:
            with registry.timed("phase.run_s"):
                if partitioned:
                    self._drive_partitioned_serial(
                        sim, emulation, until, budget, writer, verifier,
                        sanitizer, resume,
                    )
                else:
                    self._drive_single_domain(
                        sim, emulation, until, res, budget, writer,
                        verifier, sanitizer, resume,
                    )
        except BudgetExceeded as exc:
            abort = exc
        finally:
            sanitizer.detach()
        wall = perf_counter() - t0
        report = build_report(
            emulation,
            registry=registry if registry.enabled else None,
            name=self.name,
            wall_time_s=wall,
        )
        self._export_traffic_metrics(report)
        self.report = report
        if abort is not None:
            outcome = f"aborted{{reason={abort.reason}}}"
        elif degrade_reason is not None:
            outcome = f"degraded{{reason={degrade_reason}}}"
        else:
            outcome = "completed"
        self._annotate_resilience(
            report,
            outcome=outcome,
            digest=sanitizer.digest,
            events=sanitizer.events_observed(),
            writer=writer,
            counters=counters,
            downgrades=1 if degrade_reason is not None else 0,
        )
        if resume is not None:
            report.metrics["run.resumed_from_t"] = resume.barrier_time
        if abort is not None:
            raise RunAborted(abort.reason, report=report, detail=str(abort))
        if verifier is not None and not verifier.verified:
            raise CheckpointError(
                "resume completed without crossing the checkpoint "
                f"barrier (t={resume.barrier_time:g}); the replayed "
                "prefix was never verified — is `until` shorter than "
                "the checkpoint?"
            )
        return report

    def _drive_partitioned_serial(
        self, sim, emulation, until, budget, writer, verifier, sanitizer,
        resume,
    ) -> None:
        from repro.resilience import rng_stream_states

        applier = emulation.fault_applier

        def on_epoch(epoch_index: int, horizon: float) -> None:
            events = sanitizer.events_observed()
            budget.check(events=events)
            if (
                verifier is not None
                and not verifier.verified
                and resume.epoch is not None
                and epoch_index == resume.epoch
            ):
                verifier.verify(
                    digest=sanitizer.digest,
                    events=events,
                    domain_digests=sanitizer.domain_digests(),
                    rng_states=rng_stream_states(emulation.rng),
                    fault_cursor=(
                        applier.applied if applier is not None else None
                    ),
                    link_state=(
                        applier.link_state() if applier is not None else None
                    ),
                )
            if writer is not None and writer.due(horizon):
                writer.write(
                    barrier_time=horizon,
                    events=events,
                    digest=sanitizer.digest,
                    epoch=epoch_index,
                    domain_digests=sanitizer.domain_digests(),
                    domain_counts=sanitizer.domain_counts(),
                    snapshots=sim.snapshot(),
                    rng_states=rng_stream_states(emulation.rng),
                    metrics={"sim.events_dispatched": events},
                    fault_cursor=(
                        applier.applied if applier is not None else None
                    ),
                    link_state=(
                        applier.link_state() if applier is not None else None
                    ),
                )

        sim.on_epoch = on_epoch
        try:
            sim.run(until=until)
        finally:
            sim.on_epoch = None

    def _drive_single_domain(
        self, sim, emulation, until, res, budget, writer, verifier,
        sanitizer, resume,
    ) -> None:
        from repro.resilience import rng_stream_states

        if writer is None and verifier is None and not budget.active:
            sim.run(until=until)
            return
        # Chunking one kernel at virtual-time marks is stream-identical
        # to a single run (the heap and seq counter are untouched), so
        # barriers here are free determinism-wise.
        step = res.checkpoint_every_s or (until / 16.0)
        next_mark = step
        while sim.now < until:
            target = min(until, next_mark)
            if (
                verifier is not None
                and not verifier.verified
                and sim.now < resume.barrier_time
            ):
                target = min(target, resume.barrier_time)
            if target <= sim.now:
                next_mark += step
                continue
            sim.run(until=target)
            events = sanitizer.events_observed()
            budget.check(events=events)
            applier = emulation.fault_applier
            if (
                verifier is not None
                and not verifier.verified
                and sim.now >= resume.barrier_time
            ):
                verifier.verify(
                    digest=sanitizer.digest,
                    events=events,
                    rng_states=rng_stream_states(emulation.rng),
                    fault_cursor=(
                        applier.applied if applier is not None else None
                    ),
                    link_state=(
                        applier.link_state() if applier is not None else None
                    ),
                )
            if writer is not None and writer.due(sim.now):
                writer.write(
                    barrier_time=sim.now,
                    events=events,
                    digest=sanitizer.digest,
                    epoch=None,
                    snapshots=[sim.snapshot()],
                    rng_states=rng_stream_states(emulation.rng),
                    metrics={"sim.events_dispatched": events},
                    fault_cursor=(
                        applier.applied if applier is not None else None
                    ),
                    link_state=(
                        applier.link_state() if applier is not None else None
                    ),
                )
            while next_mark <= sim.now:
                next_mark += step

    def _run_multiprocess_resilient(
        self, until: float, registry: MetricsRegistry, res
    ) -> RunReport:
        """Supervised multiprocess run: verified worker recovery via
        the supervisor, budget checks and checkpoints at epoch
        barriers, and (by default) degradation to serial partitioned
        execution when a worker is unrecoverable — same digests by
        construction, with the downgrade recorded in the report."""
        from repro.check.sanitize import compose_domain_digests
        from repro.engine.parallel import run_multiprocess
        from repro.resilience import (
            CheckpointError,
            ResumeVerifier,
            RunAborted,
            SupervisionEscalation,
        )

        emulation = self.emulation
        resume = self._resume
        budget = res.budget().start()
        writer = self._checkpoint_writer(res, until)
        verifier = ResumeVerifier(resume) if resume is not None else None

        def on_epoch(epoch_index, horizon, digests, counts) -> None:
            events = sum(counts.values())
            if (
                verifier is not None
                and not verifier.verified
                and resume.epoch is not None
                and epoch_index == resume.epoch
            ):
                verifier.verify(
                    digest=compose_domain_digests(digests),
                    events=events,
                    domain_digests=digests,
                )
            if writer is not None and writer.due(horizon):
                writer.write(
                    barrier_time=horizon,
                    events=events,
                    digest=compose_domain_digests(digests),
                    epoch=epoch_index,
                    domain_digests=digests,
                    domain_counts=counts,
                    metrics={"sim.events_dispatched": events},
                )

        t0 = perf_counter()
        try:
            with registry.timed("phase.run_s"):
                result = run_multiprocess(
                    self,
                    until,
                    workers=emulation.config.workers,
                    policy=res.retry_policy(self._seed),
                    epoch_timeout_s=res.epoch_timeout_s,
                    heartbeat_interval_s=res.heartbeat_interval_s,
                    budget=budget,
                    on_epoch=on_epoch,
                    chaos_kill=res.chaos_kill,
                    chaos_signal=res.chaos_signal,
                )
        except SupervisionEscalation as escalation:
            if not res.degrade:
                raise
            return self._run_serial_resilient(
                until,
                registry,
                res,
                degrade_reason=(
                    f"worker {escalation.worker} unrecoverable after "
                    f"{escalation.attempts} attempt(s)"
                ),
                counters=getattr(escalation, "counters", None),
            )
        wall = perf_counter() - t0
        self.mp_result = result
        report = build_report(
            emulation,
            registry=registry if registry.enabled else None,
            name=self.name,
            wall_time_s=wall,
        )
        report.metrics.update(result.metric_overlay)
        self.report = report
        outcome = (
            "completed"
            if result.outcome == "completed"
            else f"aborted{{reason={result.abort_reason}}}"
        )
        self._annotate_resilience(
            report,
            outcome=outcome,
            digest=result.composed_digest,
            events=result.events_dispatched,
            writer=writer,
            counters={
                "heartbeats_missed": result.heartbeats_missed,
                "workers_restarted": result.workers_restarted,
                "retries": result.retries,
            },
        )
        if resume is not None:
            report.metrics["run.resumed_from_t"] = resume.barrier_time
        if result.outcome != "completed":
            raise RunAborted(
                result.abort_reason or "aborted",
                report=report,
                detail=str(result.budget_error or ""),
            )
        if verifier is not None and not verifier.verified:
            raise CheckpointError(
                "resume completed without crossing the checkpoint "
                f"barrier (epoch {resume.epoch}); the replayed prefix "
                "was never verified — is `until` shorter than the "
                "checkpoint?"
            )
        return report

    # -- spec round trip (multiprocess workers) ---------------------------

    def to_spec(self) -> ScenarioSpec:
        """Snapshot this scenario as picklable plain data.

        Raises :class:`ValueError` if any registered traffic callback
        is not declarative (i.e. not from :meth:`netperf` or
        :meth:`workload`) — closures cannot be shipped to worker
        processes reproducibly.
        """
        netperf: List[Tuple[int, Optional[int]]] = []
        traffic: List[Tuple[str, Tuple[Tuple[str, Any], ...]]] = []
        for setup in self._traffic:
            if getattr(setup, "_fault_params", None) is not None:
                continue  # declarative too: travels as fault_seconds
            entry = getattr(setup, "_traffic_entry", None)
            if entry is not None:
                traffic.append(entry)
                continue
            params = getattr(setup, "_netperf_params", None)
            if params is None:
                raise ValueError(
                    "the multiprocess backend supports declarative "
                    "traffic only (Scenario.netperf / "
                    "Scenario.workload); custom traffic callables "
                    "cannot cross process boundaries"
                )
            netperf.append(params)
        return ScenarioSpec(
            name=self.name,
            topology=self._topology,
            mode=self._mode,
            walk_in=self._walk_in,
            walk_out=self._walk_out,
            cores=self._cores,
            assignment=self._assignment,
            hosts=self._hosts,
            strategy=self._strategy,
            binding=self._binding,
            knobs=dict(self._knobs),
            reference=self._reference,
            seed=self._seed,
            netperf=tuple(netperf),
            fault_seconds=self._fault_seconds,
            traffic=tuple(traffic),
            faults=self._fault_plan,
        )

    @classmethod
    def from_spec(cls, spec: ScenarioSpec) -> "Scenario":
        """Reconstruct a fresh, unbuilt scenario from a spec.

        Workers build with observability off — statistics travel back
        as raw object state, and hot-path wall-clock timers would
        only measure the worker's half of the barrier anyway.
        """
        scenario = cls(spec.topology, name=spec.name)
        scenario._mode = spec.mode
        scenario._walk_in = spec.walk_in
        scenario._walk_out = spec.walk_out
        scenario._cores = spec.cores
        scenario._assignment = spec.assignment
        scenario._hosts = spec.hosts
        scenario._strategy = spec.strategy
        scenario._binding = spec.binding
        scenario._knobs = dict(spec.knobs)
        scenario._reference = spec.reference
        scenario._seed = spec.seed
        scenario._observe = False
        for flows, flow_seed in spec.netperf:
            scenario.netperf(flows, flow_seed)
        for entry_name, entry_params in getattr(spec, "traffic", ()):
            scenario.workload(entry_name, **dict(entry_params))
        if getattr(spec, "fault_seconds", None) is not None:
            scenario.inject_fault(spec.fault_seconds)
        if getattr(spec, "faults", None) is not None:
            scenario.faults(spec.faults)
        return scenario

    def __repr__(self) -> str:
        built = "built" if self.emulation is not None else "unbuilt"
        return (
            f"<Scenario {self.name!r} mode={self._mode.name} "
            f"cores={self._cores} hosts={self._hosts} {built}>"
        )
