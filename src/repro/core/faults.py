"""Fault injection and dynamic network changes (paper Sec. 4.3).

Users can direct ModelNet to change the bandwidth, delay, and loss
rate of a set of links according to a specified probability
distribution every x seconds, and to fail/recover links and nodes
(with instantaneous shortest-path recomputation). Random stress tests
"identify conditions under which services will fail".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from repro.core.emulator import Emulation


@dataclass
class LinkPerturbation:
    """A recurring random perturbation applied to a set of links.

    Every ``period_s``, a fraction ``link_fraction`` of the candidate
    links is chosen and each has its latency scaled by a factor drawn
    uniformly from ``latency_scale`` (and similarly for bandwidth and
    loss, when given). Scales are relative to the link's *original*
    parameters, so perturbations do not compound. This directly
    models the ACDC experiment: "increase the delay on 25% of
    randomly chosen IP links by between 0-25% every 25 seconds".
    """

    period_s: float
    link_fraction: float = 0.25
    latency_scale: tuple = (1.0, 1.25)
    bandwidth_scale: Optional[tuple] = None
    loss_add: Optional[tuple] = None


class FaultInjector:
    """Schedules dynamic link changes and failures on an emulation."""

    def __init__(self, emulation: Emulation, rng: Optional[random.Random] = None):
        self.emulation = emulation
        self.rng = rng or emulation.rng.stream("faults")
        self._originals = {
            link_id: (link.bandwidth_bps, link.latency_s, link.loss_rate)
            for link_id, link in emulation.topology.links.items()
        }
        self.perturbations_applied = 0
        self.failures_injected = 0
        self._active: List = []

    # -- one-shot events ------------------------------------------------

    def fail_link_at(self, when: float, link_id: int) -> None:
        self.emulation.sim.at(when, self._fail_link, link_id)

    def recover_link_at(self, when: float, link_id: int) -> None:
        self.emulation.sim.at(when, self._recover_link, link_id)

    def fail_node_at(self, when: float, node_id: int) -> None:
        """Fail all links incident to a topology node."""
        self.emulation.sim.at(when, self._fail_node, node_id)

    def recover_node_at(self, when: float, node_id: int) -> None:
        self.emulation.sim.at(when, self._recover_node, node_id)

    def partition_at(
        self, when: float, link_ids: Sequence[int]
    ) -> None:
        """Fail a cut set of links at once (a network partition)."""
        def apply() -> None:
            for link_id in link_ids:
                self._fail_link(link_id)
        self.emulation.sim.at(when, apply)

    def _fail_link(self, link_id: int) -> None:
        self.failures_injected += 1
        self.emulation.set_link_up(link_id, False)

    def _recover_link(self, link_id: int) -> None:
        self.emulation.set_link_up(link_id, True)

    def _fail_node(self, node_id: int) -> None:
        for link in self.emulation.topology.links_of(node_id):
            self._fail_link(link.id)

    def _recover_node(self, node_id: int) -> None:
        for link in self.emulation.topology.links_of(node_id):
            self._recover_link(link.id)

    # -- recurring perturbations -------------------------------------------

    def start_perturbation(
        self,
        perturbation: LinkPerturbation,
        start_s: float,
        stop_s: float,
        link_ids: Optional[Sequence[int]] = None,
        on_applied: Optional[Callable[[List[int]], None]] = None,
    ) -> None:
        """Apply ``perturbation`` every period within [start, stop);
        at ``stop_s`` all affected links revert to their original
        parameters."""
        if link_ids is None:
            link_ids = sorted(self.emulation.topology.links)
        link_ids = list(link_ids)

        def fire(when: float) -> None:
            if when >= stop_s:
                self._restore(link_ids)
                return
            self._apply_once(perturbation, link_ids, on_applied)
            self.emulation.sim.at(when + perturbation.period_s, fire, when + perturbation.period_s)

        self.emulation.sim.at(start_s, fire, start_s)

    def _apply_once(
        self,
        perturbation: LinkPerturbation,
        link_ids: Sequence[int],
        on_applied: Optional[Callable[[List[int]], None]],
    ) -> None:
        count = max(1, int(round(perturbation.link_fraction * len(link_ids))))
        chosen = self.rng.sample(list(link_ids), min(count, len(link_ids)))
        for link_id in chosen:
            base_bw, base_lat, base_loss = self._originals[link_id]
            params = {}
            low, high = perturbation.latency_scale
            params["latency_s"] = base_lat * self.rng.uniform(low, high)
            if perturbation.bandwidth_scale is not None:
                low, high = perturbation.bandwidth_scale
                params["bandwidth_bps"] = max(
                    1.0, base_bw * self.rng.uniform(low, high)
                )
            if perturbation.loss_add is not None:
                low, high = perturbation.loss_add
                params["loss_rate"] = min(
                    0.99, base_loss + self.rng.uniform(low, high)
                )
            self._set_link(link_id, params)
        self.perturbations_applied += 1
        if on_applied:
            on_applied(sorted(chosen))

    def _set_link(self, link_id: int, params: dict) -> None:
        """Update both the emulated pipes and the topology link (so
        latency-weighted routing and offline metrics see the change)."""
        self.emulation.set_link_params(link_id, **params)
        link = self.emulation.topology.links[link_id]
        if "latency_s" in params:
            link.latency_s = params["latency_s"]
        if "bandwidth_bps" in params:
            link.bandwidth_bps = params["bandwidth_bps"]
        if "loss_rate" in params:
            link.loss_rate = params["loss_rate"]

    # -- random stress tests -------------------------------------------------

    def random_stress(
        self,
        start_s: float,
        stop_s: float,
        mean_failure_interval_s: float = 10.0,
        mean_outage_s: float = 3.0,
        perturbation: Optional[LinkPerturbation] = None,
        protect: Optional[Sequence[int]] = None,
    ) -> int:
        """Schedule a randomized stress scenario (paper Sec. 4.3:
        "random stress tests are useful because it is often just as
        important to identify conditions under which services will
        fail").

        Random links fail at exponential intervals and recover after
        exponential outages; a recurring parameter perturbation can
        run alongside. ``protect`` lists link ids never failed (e.g.
        a service's only access link). Returns the number of outages
        scheduled; the schedule is deterministic given the injector's
        RNG.
        """
        candidates = [
            link_id
            for link_id in sorted(self.emulation.topology.links)
            if not protect or link_id not in set(protect)
        ]
        if not candidates:
            raise ValueError("no links eligible for stress")
        outages = 0
        now = start_s
        while True:
            now += self.rng.expovariate(1.0 / mean_failure_interval_s)
            if now >= stop_s:
                break
            link_id = self.rng.choice(candidates)
            outage = self.rng.expovariate(1.0 / mean_outage_s)
            self.fail_link_at(now, link_id)
            self.recover_link_at(min(stop_s, now + outage), link_id)
            outages += 1
        if perturbation is not None:
            self.start_perturbation(perturbation, start_s, stop_s)
        return outages

    def _restore(self, link_ids: Sequence[int]) -> None:
        for link_id in link_ids:
            base_bw, base_lat, base_loss = self._originals[link_id]
            self._set_link(
                link_id,
                {
                    "bandwidth_bps": base_bw,
                    "latency_s": base_lat,
                    "loss_rate": base_loss,
                },
            )
