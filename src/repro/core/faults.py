"""Fault injection and dynamic network changes (paper Sec. 4.3).

Users can direct ModelNet to change the bandwidth, delay, and loss
rate of a set of links according to a specified probability
distribution every x seconds, and to fail/recover links and nodes
(with instantaneous shortest-path recomputation). Random stress tests
"identify conditions under which services will fail".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.emulator import Emulation
from repro.faults import (
    FaultPlan,
    FaultPlanError,
    LinkDown,
    LinkUp,
    NodeChurn,
    Partition,
    Perturbation,
    SetLinkParams,
)


@dataclass
class LinkPerturbation:
    """A recurring random perturbation applied to a set of links.

    Every ``period_s``, a fraction ``link_fraction`` of the candidate
    links is chosen and each has its latency scaled by a factor drawn
    uniformly from ``latency_scale`` (and similarly for bandwidth and
    loss, when given). Scales are relative to the link's *original*
    parameters, so perturbations do not compound. This directly
    models the ACDC experiment: "increase the delay on 25% of
    randomly chosen IP links by between 0-25% every 25 seconds".
    """

    period_s: float
    link_fraction: float = 0.25
    latency_scale: tuple = (1.0, 1.25)
    bandwidth_scale: Optional[tuple] = None
    loss_add: Optional[tuple] = None


class FaultInjector:
    """Schedules dynamic link changes and failures on an emulation."""

    def __init__(self, emulation: Emulation, rng: Optional[random.Random] = None):
        self.emulation = emulation
        self.rng = rng or emulation.rng.stream("faults")
        # Per-link parameter snapshots, taken *lazily* at the first
        # perturbation of each link. An eager snapshot at construction
        # would clobber any deliberate ``set_link_params`` made after
        # the injector exists when a perturbation window restores
        # "originals".
        self._originals: Dict[int, Tuple[float, float, float]] = {}
        self.perturbations_applied = 0
        self.failures_injected = 0
        self._active: List = []

    # -- one-shot events ------------------------------------------------

    def fail_link_at(self, when: float, link_id: int) -> None:
        self.emulation.sim.at(when, self._fail_link, link_id)

    def recover_link_at(self, when: float, link_id: int) -> None:
        self.emulation.sim.at(when, self._recover_link, link_id)

    def fail_node_at(self, when: float, node_id: int) -> None:
        """Fail all links incident to a topology node."""
        self.emulation.sim.at(when, self._fail_node, node_id)

    def recover_node_at(self, when: float, node_id: int) -> None:
        self.emulation.sim.at(when, self._recover_node, node_id)

    def partition_at(
        self, when: float, link_ids: Sequence[int]
    ) -> None:
        """Fail a cut set of links at once (a network partition)."""
        def apply() -> None:
            for link_id in link_ids:
                self._fail_link(link_id)
        self.emulation.sim.at(when, apply)

    def _fail_link(self, link_id: int) -> None:
        self.failures_injected += 1
        self.emulation.set_link_up(link_id, False)

    def _recover_link(self, link_id: int) -> None:
        self.emulation.set_link_up(link_id, True)

    def _fail_node(self, node_id: int) -> None:
        for link in self.emulation.topology.links_of(node_id):
            self._fail_link(link.id)

    def _recover_node(self, node_id: int) -> None:
        for link in self.emulation.topology.links_of(node_id):
            self._recover_link(link.id)

    # -- recurring perturbations -------------------------------------------

    def start_perturbation(
        self,
        perturbation: LinkPerturbation,
        start_s: float,
        stop_s: float,
        link_ids: Optional[Sequence[int]] = None,
        on_applied: Optional[Callable[[List[int]], None]] = None,
    ) -> None:
        """Apply ``perturbation`` every period within [start, stop);
        at ``stop_s`` all affected links revert to their original
        parameters."""
        if link_ids is None:
            link_ids = sorted(self.emulation.topology.links)
        link_ids = list(link_ids)

        def fire(when: float) -> None:
            if when >= stop_s:
                self._restore(link_ids)
                return
            self._apply_once(perturbation, link_ids, on_applied)
            self.emulation.sim.at(when + perturbation.period_s, fire, when + perturbation.period_s)

        self.emulation.sim.at(start_s, fire, start_s)

    def _apply_once(
        self,
        perturbation: LinkPerturbation,
        link_ids: Sequence[int],
        on_applied: Optional[Callable[[List[int]], None]],
    ) -> None:
        count = max(1, int(round(perturbation.link_fraction * len(link_ids))))
        chosen = self.rng.sample(list(link_ids), min(count, len(link_ids)))
        for link_id in chosen:
            base_bw, base_lat, base_loss = self._original_of(link_id)
            params = {}
            low, high = perturbation.latency_scale
            params["latency_s"] = base_lat * self.rng.uniform(low, high)
            if perturbation.bandwidth_scale is not None:
                low, high = perturbation.bandwidth_scale
                params["bandwidth_bps"] = max(
                    1.0, base_bw * self.rng.uniform(low, high)
                )
            if perturbation.loss_add is not None:
                low, high = perturbation.loss_add
                params["loss_rate"] = min(
                    0.99, base_loss + self.rng.uniform(low, high)
                )
            self._set_link(link_id, params)
        self.perturbations_applied += 1
        if on_applied:
            on_applied(sorted(chosen))

    def _original_of(self, link_id: int) -> Tuple[float, float, float]:
        """The link's parameters as of its first perturbation.

        Read from the live pipe, not the topology link: a deliberate
        ``Emulation.set_link_params`` only touches the pipes, and the
        snapshot must honor it."""
        snapshot = self._originals.get(link_id)
        if snapshot is None:
            pipe = self.emulation.pipes_of_link(link_id)[0]
            snapshot = (pipe.bandwidth_bps, pipe.latency_s, pipe.loss_rate)
            self._originals[link_id] = snapshot
        return snapshot

    def _set_link(self, link_id: int, params: dict) -> None:
        """Update both the emulated pipes and the topology link (so
        latency-weighted routing and offline metrics see the change)."""
        self.emulation.set_link_params(link_id, **params)
        link = self.emulation.topology.links[link_id]
        if "latency_s" in params:
            link.latency_s = params["latency_s"]
        if "bandwidth_bps" in params:
            link.bandwidth_bps = params["bandwidth_bps"]
        if "loss_rate" in params:
            link.loss_rate = params["loss_rate"]

    # -- random stress tests -------------------------------------------------

    def random_stress(
        self,
        start_s: float,
        stop_s: float,
        mean_failure_interval_s: float = 10.0,
        mean_outage_s: float = 3.0,
        perturbation: Optional[LinkPerturbation] = None,
        protect: Optional[Sequence[int]] = None,
    ) -> int:
        """Schedule a randomized stress scenario (paper Sec. 4.3:
        "random stress tests are useful because it is often just as
        important to identify conditions under which services will
        fail").

        Random links fail at exponential intervals and recover after
        exponential outages; a recurring parameter perturbation can
        run alongside. ``protect`` lists link ids never failed (e.g.
        a service's only access link). Returns the number of outages
        scheduled; the schedule is deterministic given the injector's
        RNG.
        """
        candidates = [
            link_id
            for link_id in sorted(self.emulation.topology.links)
            if not protect or link_id not in set(protect)
        ]
        if not candidates:
            raise ValueError("no links eligible for stress")
        outages = 0
        now = start_s
        while True:
            now += self.rng.expovariate(1.0 / mean_failure_interval_s)
            if now >= stop_s:
                break
            link_id = self.rng.choice(candidates)
            outage = self.rng.expovariate(1.0 / mean_outage_s)
            self.fail_link_at(now, link_id)
            self.recover_link_at(min(stop_s, now + outage), link_id)
            outages += 1
        if perturbation is not None:
            self.start_perturbation(perturbation, start_s, stop_s)
        return outages

    def _restore(self, link_ids: Sequence[int]) -> None:
        for link_id in link_ids:
            snapshot = self._originals.get(link_id)
            if snapshot is None:
                # Never perturbed: nothing to revert (and restoring a
                # construction-time snapshot here is exactly the bug
                # that clobbered deliberate post-construction
                # set_link_params calls).
                continue
            base_bw, base_lat, base_loss = snapshot
            self._set_link(
                link_id,
                {
                    "bandwidth_bps": base_bw,
                    "latency_s": base_lat,
                    "loss_rate": base_loss,
                },
            )


class FaultApplier:
    """The single sanctioned applier for a declarative
    :class:`repro.faults.FaultPlan`.

    On a single-domain kernel the timeline is scheduled event-by-event
    at exact virtual times (byte-compatible with the imperative
    :class:`FaultInjector` schedule). On a partitioned kernel —
    serial *or* multiprocess, any worker count — application is
    epoch-barrier aligned: the engine calls :meth:`apply_until` with
    the epoch's minimum grant horizon before dispatching the epoch,
    and every participant (the serial loop, and every worker process)
    applies the same occurrences at the same barriers, keeping the
    per-process pipe/routing state — and therefore the dispatched
    event stream — byte-identical.

    All stochastic draws come from the plan's named RNG stream, in
    timeline order, so the draw sequence is backend-invariant.
    """

    def __init__(self, emulation: Emulation, plan: FaultPlan):
        self.emulation = emulation
        self.plan = plan
        self.rng = emulation.rng.stream(plan.stream)
        #: Lazy per-link snapshots (see FaultInjector._original_of).
        self._originals: Dict[int, Tuple[float, float, float]] = {}
        self.injected = 0
        self.recovered = 0
        self.perturbations_applied = 0
        #: Timeline position: occurrences applied so far. Captured by
        #: checkpoints so a resume can verify the replayed timeline
        #: reached the same position.
        self.applied = 0
        #: Applied fault events, for the RunReport
        #: (``time``/``kind``/``links`` dicts, in application order).
        self.events_log: List[dict] = []
        self._occurrences = self._lower()
        self._cursor = 0
        self._installed = False

    # -- lowering ----------------------------------------------------------

    def _lower(self) -> List[Tuple[float, int, int, tuple]]:
        """Flatten the plan into ``(time, plan_position, sub, action)``
        occurrences sorted by time (ties: plan order). Recurring
        perturbations expand with the same float accumulation as the
        imperative fire/reschedule loop, so firing times are
        bit-identical to the closure form."""
        occurrences: List[Tuple[float, int, int, tuple]] = []
        for position, event in enumerate(self.plan.events):
            if isinstance(event, LinkDown):
                occurrences.append(
                    (event.time_s, position, 0, ("down", (event.link_id,)))
                )
            elif isinstance(event, LinkUp):
                occurrences.append(
                    (event.time_s, position, 0, ("up", (event.link_id,)))
                )
            elif isinstance(event, SetLinkParams):
                occurrences.append(
                    (event.time_s, position, 0,
                     ("set", event.link_id, event.params()))
                )
            elif isinstance(event, NodeChurn):
                kind = "up" if event.up else "down"
                links = tuple(
                    link.id
                    for link in self.emulation.topology.links_of(event.node_id)
                )
                occurrences.append((event.time_s, position, 0, (kind, links)))
            elif isinstance(event, Partition):
                occurrences.append(
                    (event.time_s, position, 0, ("down", event.link_ids))
                )
                if event.heal_s is not None:
                    occurrences.append(
                        (event.heal_s, position, 1, ("up", event.link_ids))
                    )
            elif isinstance(event, Perturbation):
                candidates = tuple(
                    event.link_ids
                    or sorted(self.emulation.topology.links)
                )
                when, sub = event.start_s, 0
                while when < event.stop_s:
                    occurrences.append(
                        (when, position, sub, ("perturb", event, candidates))
                    )
                    when += event.period_s
                    sub += 1
                occurrences.append(
                    (when, position, sub, ("restore", candidates))
                )
            else:
                raise FaultPlanError(f"unsupported fault event {event!r}")
        occurrences.sort(key=lambda occ: (occ[0], occ[1], occ[2]))
        return occurrences

    def touched_links(self) -> List[int]:
        """Every link id the timeline can mutate, sorted."""
        touched = set()
        for _, _, _, action in self._occurrences:
            if action[0] in ("down", "up", "restore"):
                touched.update(action[1])
            elif action[0] == "set":
                touched.add(action[1])
            elif action[0] == "perturb":
                touched.update(action[2])
        return sorted(touched)

    # -- installation ------------------------------------------------------

    def install(self) -> "FaultApplier":
        """Arm the timeline on the emulation's kernel. Partitioned
        kernels get the barrier hook; a single-domain kernel gets
        exact-time scheduling."""
        if self._installed:
            raise FaultPlanError("fault plan already installed")
        self._installed = True
        sim = self.emulation.sim
        if self.emulation.num_domains > 1 and hasattr(sim, "fault_hook"):
            sim.fault_hook = self.apply_until
        else:
            self._schedule_exact(sim)
        return self

    def _schedule_exact(self, sim) -> None:
        """Single-domain form: one kernel event per one-shot
        occurrence, and the fire/reschedule closure for recurring
        perturbations (matching FaultInjector's schedule exactly)."""
        scheduled: set = set()
        for when, position, _, action in self._occurrences:
            event = self.plan.events[position]
            if isinstance(event, Perturbation):
                if position not in scheduled:
                    scheduled.add(position)
                    self._schedule_perturbation(sim, event)
                continue
            sim.at(when, self._apply_action, action, when)

    def _schedule_perturbation(self, sim, event: Perturbation) -> None:
        candidates = list(
            event.link_ids or sorted(self.emulation.topology.links)
        )

        def fire(when: float) -> None:
            if when >= event.stop_s:
                self._apply_action(("restore", tuple(candidates)), when)
                return
            self._apply_action(("perturb", event, tuple(candidates)), when)
            sim.at(when + event.period_s, fire, when + event.period_s)

        sim.at(event.start_s, fire, event.start_s)

    # -- barrier-aligned application --------------------------------------

    def apply_until(self, until: float) -> None:
        """Apply every not-yet-applied occurrence with time <= until,
        in timeline order. Called by the partitioned engine at each
        epoch barrier with the epoch's minimum grant horizon;
        idempotent for repeated horizons (the cursor only advances)."""
        occurrences = self._occurrences
        while self._cursor < len(occurrences):
            when, _, _, action = occurrences[self._cursor]
            if when > until:
                break
            self._apply_action(action, when)
            self._cursor += 1

    # -- primitive actions -------------------------------------------------

    def _apply_action(self, action: tuple, when: float) -> None:
        kind = action[0]
        if kind == "down":
            for link_id in action[1]:
                if self.emulation.topology.links[link_id].up:
                    self.injected += 1
                self.emulation.set_link_up(link_id, False)
            self._log(when, "link_down", action[1])
        elif kind == "up":
            for link_id in action[1]:
                if not self.emulation.topology.links[link_id].up:
                    self.recovered += 1
                self.emulation.set_link_up(link_id, True)
            self._log(when, "link_up", action[1])
        elif kind == "set":
            link_id, params = action[1], action[2]
            self._set_link(link_id, params)
            if link_id in self._originals:
                # A deliberate mid-window change becomes the new
                # "original" so the window's restore keeps it.
                bw, lat, loss = self._originals[link_id]
                self._originals[link_id] = (
                    params.get("bandwidth_bps", bw),
                    params.get("latency_s", lat),
                    params.get("loss_rate", loss),
                )
            self._log(when, "set_link_params", (link_id,))
        elif kind == "perturb":
            self._perturb_once(action[1], action[2], when)
        elif kind == "restore":
            restored = []
            for link_id in action[1]:
                snapshot = self._originals.get(link_id)
                if snapshot is None:
                    continue
                bw, lat, loss = snapshot
                self._set_link(
                    link_id,
                    {"bandwidth_bps": bw, "latency_s": lat, "loss_rate": loss},
                )
                restored.append(link_id)
            self._log(when, "restore", tuple(restored))
        else:
            raise FaultPlanError(f"unknown fault action {kind!r}")
        self.applied += 1

    def _perturb_once(
        self, event: Perturbation, candidates: Sequence[int], when: float
    ) -> None:
        count = max(1, int(round(event.link_fraction * len(candidates))))
        chosen = self.rng.sample(list(candidates), min(count, len(candidates)))
        for link_id in chosen:
            base_bw, base_lat, base_loss = self._original_of(link_id)
            params = {}
            low, high = event.latency_scale
            params["latency_s"] = base_lat * self.rng.uniform(low, high)
            if event.bandwidth_scale is not None:
                low, high = event.bandwidth_scale
                params["bandwidth_bps"] = max(
                    1.0, base_bw * self.rng.uniform(low, high)
                )
            if event.loss_add is not None:
                low, high = event.loss_add
                params["loss_rate"] = min(
                    0.99, base_loss + self.rng.uniform(low, high)
                )
            self._set_link(link_id, params)
        self.perturbations_applied += 1
        self._log(when, "perturbation", tuple(sorted(chosen)))

    def _original_of(self, link_id: int) -> Tuple[float, float, float]:
        # Live pipe state, not the topology link (see
        # FaultInjector._original_of).
        snapshot = self._originals.get(link_id)
        if snapshot is None:
            pipe = self.emulation.pipes_of_link(link_id)[0]
            snapshot = (pipe.bandwidth_bps, pipe.latency_s, pipe.loss_rate)
            self._originals[link_id] = snapshot
        return snapshot

    def _set_link(self, link_id: int, params: dict) -> None:
        self.emulation.set_link_params(link_id, **params)
        link = self.emulation.topology.links[link_id]
        if "latency_s" in params:
            link.latency_s = params["latency_s"]
        if "bandwidth_bps" in params:
            link.bandwidth_bps = params["bandwidth_bps"]
        if "loss_rate" in params:
            link.loss_rate = params["loss_rate"]

    def _log(self, when: float, kind: str, links: Sequence[int]) -> None:
        self.events_log.append(
            {"time_s": round(when, 9), "kind": kind, "links": list(links)}
        )

    # -- state capture (checkpoints, multiprocess stats) -------------------

    def link_state(self) -> Dict[int, Tuple[bool, float, float, float]]:
        """(up, bandwidth, latency, loss) for every plan-touched link
        — the restored-vs-perturbed state a checkpoint must pin down
        so a resume can verify the replayed timeline byte-identically."""
        out: Dict[int, Tuple[bool, float, float, float]] = {}
        for link_id in self.touched_links():
            pipe, _ = self.emulation.pipes_of_link(link_id)
            out[link_id] = (
                bool(pipe.up),
                pipe.bandwidth_bps,
                pipe.latency_s,
                pipe.loss_rate,
            )
        return out

    def counters(self) -> dict:
        """Serializable applier state, shipped from multiprocess
        workers (every worker applies the full timeline identically,
        so any one worker's view is authoritative)."""
        return {
            "injected": self.injected,
            "recovered": self.recovered,
            "perturbations": self.perturbations_applied,
            "applied": self.applied,
            "events": list(self.events_log),
        }

    def absorb(self, counters: dict) -> None:
        """Adopt a worker's applier state into this (never-run,
        parent-side) applier."""
        self.injected = counters.get("injected", 0)
        self.recovered = counters.get("recovered", 0)
        self.perturbations_applied = counters.get("perturbations", 0)
        self.applied = counters.get("applied", 0)
        self.events_log = list(counters.get("events", ()))
