"""Distillation: trading emulation cost for topological fidelity.

Implements the continuum of paper Sec. 4.1:

* **hop-by-hop** — the distilled topology is isomorphic to the
  target; every link is emulated (highest fidelity, highest cost).
* **end-to-end** — all interior nodes removed; a full mesh of
  O(n^2) collapsed pipes interconnects the n VNs. A collapsed pipe
  takes the minimum bandwidth, the summed latency, and the product of
  reliabilities along the path it replaces.
* **walk-in** — breadth-first frontier sets grown from the VNs; the
  first ``walk_in`` frontiers are preserved, and links internal to
  the remaining *interior* are replaced by a full mesh over the
  interior nodes (collapsed along interior shortest paths). Every
  packet then traverses at most 2*walk_in + 1 pipes. walk_in = 1 is
  the paper's "last-mile" distillation.
* **walk-out** — additionally preserves the innermost ``walk_out``
  frontier sets around the topological center, so an
  under-provisioned core keeps real contention while the middle is
  meshed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.routing.shortest_path import dijkstra, extract_route
from repro.topology.graph import NodeKind, Topology, TopologyError


class DistillationMode(enum.Enum):
    HOP_BY_HOP = "hop-by-hop"
    END_TO_END = "end-to-end"
    WALK_IN = "walk-in"


@dataclass
class DistillationResult:
    """A distilled topology plus accounting for the researcher.

    The paper argues the environment should report the nature and
    degree of introduced inaccuracy; ``collapsed_links`` and
    ``mesh_links`` quantify how much of the target was abstracted.
    """

    topology: Topology
    mode: DistillationMode
    walk_in: int = 0
    walk_out: int = 0
    preserved_links: int = 0
    collapsed_links: int = 0
    mesh_links: int = 0
    frontier_sizes: List[int] = field(default_factory=list)

    @property
    def total_pipes(self) -> int:
        """Undirected link count of the distilled topology (the
        paper's 'pipes' accounting)."""
        return self.topology.num_links


def frontier_sets(topology: Topology, seeds: Sequence[int]) -> List[Set[int]]:
    """Breadth-first frontier sets: F1 = seeds; F_{i+1} = nodes one
    hop from F_i not in any earlier set. Continues until exhausted."""
    frontiers: List[Set[int]] = []
    seen: Set[int] = set(seeds)
    current: Set[int] = set(seeds)
    while current:
        frontiers.append(current)
        nxt: Set[int] = set()
        for node in current:
            for neighbor, _link in topology.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    nxt.add(neighbor)
        current = nxt
    return frontiers


def _collapse_path(route) -> Tuple[float, float, float, int, float]:
    """(bandwidth, latency, loss, queue_limit, cost) of the pipe that
    replaces ``route``: min bw, summed latency, 1 - product of link
    reliabilities, queue of the bottleneck link, summed cost."""
    bandwidth = min(hop.link.bandwidth_bps for hop in route)
    latency = sum(hop.link.latency_s for hop in route)
    reliability = 1.0
    for hop in route:
        reliability *= hop.link.reliability
    bottleneck = min(route, key=lambda hop: hop.link.bandwidth_bps)
    cost = sum(hop.link.cost for hop in route)
    return bandwidth, latency, 1.0 - reliability, bottleneck.link.queue_limit, cost


def _mesh_over(
    source_topology: Topology,
    distilled: Topology,
    mesh_nodes: Sequence[int],
    allowed_nodes: Set[int],
) -> int:
    """Add collapsed pipes between every pair of ``mesh_nodes`` whose
    shortest path stays within ``allowed_nodes``. Returns the number
    of mesh links added."""
    # Restrict the path search to the allowed region by building a
    # subgraph view: cheapest is a filtered copy.
    subgraph = Topology("interior")
    for node_id in sorted(allowed_nodes):
        node = source_topology.node(node_id)
        subgraph.add_node(node.kind, node_id=node_id)
    for link in sorted(source_topology.links.values(), key=lambda l: l.id):
        if link.up and link.a in allowed_nodes and link.b in allowed_nodes:
            subgraph.add_link(
                link.a,
                link.b,
                link.bandwidth_bps,
                link.latency_s,
                link.loss_rate,
                link.queue_limit,
                link.cost,
            )
    added = 0
    ordered = sorted(mesh_nodes)
    for index, src in enumerate(ordered):
        _dist, prev = dijkstra(subgraph, src, weight="latency")
        for dst in ordered[index + 1 :]:
            route = extract_route(prev, src, dst)
            if not route:
                continue
            bandwidth, latency, loss, queue_limit, cost = _collapse_path(route)
            distilled.add_link(
                src,
                dst,
                bandwidth,
                latency,
                loss,
                queue_limit,
                cost,
                distilled=True,
            )
            added += 1
    return added


def distill(
    topology: Topology,
    mode: DistillationMode = DistillationMode.HOP_BY_HOP,
    walk_in: int = 1,
    walk_out: int = 0,
    vn_nodes: Optional[Sequence[int]] = None,
) -> DistillationResult:
    """Produce the distilled topology for ``mode``.

    ``vn_nodes`` defaults to all client nodes. The original topology
    is never modified.
    """
    if vn_nodes is None:
        vn_nodes = [node.id for node in topology.clients()]
    vn_set = set(vn_nodes)
    if not vn_set:
        raise TopologyError("cannot distill a topology with no VNs")

    if mode is DistillationMode.HOP_BY_HOP:
        result = DistillationResult(
            topology.copy(f"{topology.name}-hbh"),
            mode,
            preserved_links=topology.num_links,
        )
        return result

    if mode is DistillationMode.END_TO_END:
        distilled = Topology(f"{topology.name}-e2e")
        for node_id in sorted(vn_set):
            node = topology.node(node_id)
            distilled.add_node(node.kind, node_id=node_id, **dict(node.attrs))
        mesh = _mesh_over(
            topology, distilled, sorted(vn_set), set(topology.nodes)
        )
        return DistillationResult(
            distilled,
            mode,
            collapsed_links=topology.num_links,
            mesh_links=mesh,
        )

    if mode is not DistillationMode.WALK_IN:
        raise TopologyError(f"unknown distillation mode {mode!r}")
    if walk_in < 1:
        raise TopologyError("walk_in must be >= 1")

    frontiers = frontier_sets(topology, sorted(vn_set))
    preserved: Set[int] = set()
    for frontier in frontiers[:walk_in]:
        preserved |= frontier
    if walk_out > 0 and len(frontiers) > walk_in:
        # The topological center is the last frontier (size <= the
        # others, approaching 0/1 as the BFS converges).
        center_index = len(frontiers) - 1
        start = max(walk_in, center_index - walk_out + 1)
        for frontier in frontiers[start:]:
            preserved |= frontier

    interior = set(topology.nodes) - preserved
    distilled = Topology(f"{topology.name}-walkin{walk_in}")
    for node_id in sorted(topology.nodes):
        node = topology.node(node_id)
        distilled.add_node(node.kind, node_id=node_id, **dict(node.attrs))

    preserved_links = 0
    collapsed_links = 0
    for link in sorted(topology.links.values(), key=lambda l: l.id):
        if link.a in interior and link.b in interior:
            collapsed_links += 1
            continue
        new = distilled.add_link(
            link.a,
            link.b,
            link.bandwidth_bps,
            link.latency_s,
            link.loss_rate,
            link.queue_limit,
            link.cost,
            **dict(link.attrs),
        )
        # Build-time topology construction (copying the source link's
        # state into the distilled graph), not a runtime mutation.
        new.up = link.up  # repro: allow-fault-mutation
        preserved_links += 1

    mesh_links = _mesh_over(topology, distilled, sorted(interior), interior)

    # Interior nodes that ended up isolated (no preserved attachment
    # and no mesh reachability) are dropped for cleanliness.
    for node_id in sorted(interior):
        if distilled.degree(node_id) == 0:
            del distilled.nodes[node_id]
            del distilled._adjacency[node_id]

    return DistillationResult(
        distilled,
        mode,
        walk_in=walk_in,
        walk_out=walk_out,
        preserved_links=preserved_links,
        collapsed_links=collapsed_links,
        mesh_links=mesh_links,
        frontier_sizes=[len(f) for f in frontiers],
    )
