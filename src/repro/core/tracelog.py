"""The kernel logging package analog (paper Sec. 3.1).

"We developed a kernel logging package to track the performance and
accuracy of ModelNet. The advantage of this approach is that
information can be efficiently buffered and stored offline for later
analysis."

:class:`TraceLog` is that package: a bounded in-memory ring of
structured records emitted by an instrumented emulation, with offline
dump/load and per-packet analysis helpers. It attaches to an
:class:`~repro.core.emulator.Emulation` by wrapping the monitor's
per-packet hooks and (optionally) sampling pipe state.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

# Record kinds.
PKT_ENTER = "enter"
PKT_EXIT = "exit"
PKT_DROP = "drop"
PIPE_SAMPLE = "pipe"


@dataclass(frozen=True)
class Record:
    """One log record. ``data`` is kind-specific."""

    time: float
    kind: str
    data: Tuple

    def to_json(self) -> str:
        return json.dumps({"t": self.time, "k": self.kind, "d": list(self.data)})

    @classmethod
    def from_json(cls, line: str) -> "Record":
        raw = json.loads(line)
        return cls(raw["t"], raw["k"], tuple(raw["d"]))


class TraceLog:
    """A bounded ring of records plus analysis over them."""

    def __init__(self, capacity: int = 500_000):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._records: Deque[Record] = deque(maxlen=capacity)
        self.emitted = 0

    # -- emission -------------------------------------------------------

    def emit(self, time: float, kind: str, *data) -> None:
        self._records.append(Record(time, kind, tuple(data)))
        self.emitted += 1

    @property
    def dropped_records(self) -> int:
        """Records evicted by the ring bound."""
        return self.emitted - len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def records(self, kind: Optional[str] = None) -> List[Record]:
        if kind is None:
            return list(self._records)
        return [record for record in self._records if record.kind == kind]

    # -- offline storage ---------------------------------------------------

    def dump(self, path: str) -> int:
        """Write records as JSON lines; returns the count written."""
        with open(path, "w") as handle:
            for record in self._records:
                handle.write(record.to_json() + "\n")
        return len(self._records)

    @classmethod
    def load(cls, path: str) -> "TraceLog":
        log = cls()
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    log._records.append(Record.from_json(line))
                    log.emitted += 1
        return log

    # -- attachment ---------------------------------------------------------

    def attach(self, emulation, sample_pipes_every_s: float = 0.0) -> None:
        """Instrument an emulation: per-packet enter/exit records via
        the monitor hooks, optional periodic pipe backlog samples."""
        monitor = emulation.monitor
        sim = emulation.sim
        original_entered = monitor.packet_entered
        original_exited = monitor.packet_exited
        original_ring_drop = monitor.ring_drop

        def entered():
            self.emit(sim.now, PKT_ENTER)
            original_entered()

        def exited(ideal, actual):
            self.emit(sim.now, PKT_EXIT, actual - ideal)
            original_exited(ideal, actual)

        def ring_drop():
            self.emit(sim.now, PKT_DROP, "ring")
            original_ring_drop()

        monitor.packet_entered = entered
        monitor.packet_exited = exited
        monitor.ring_drop = ring_drop

        if sample_pipes_every_s > 0:
            def sample():
                for pipe in emulation.pipes.values():
                    if pipe.in_flight:
                        self.emit(
                            sim.now, PIPE_SAMPLE, pipe.id, pipe.backlog_pkts,
                            pipe.in_flight,
                        )
                sim.schedule(sample_pipes_every_s, sample)

            sim.schedule(sample_pipes_every_s, sample)

    # -- observability bridge ----------------------------------------------

    def export(self, registry) -> None:
        """Publish ring statistics and the logged per-packet error
        distribution into an observability registry (``trace.*``)."""
        registry.gauge("trace.records").set(len(self._records))
        registry.gauge("trace.emitted").set(self.emitted)
        registry.gauge("trace.dropped_records").set(self.dropped_records)
        errors = registry.histogram("trace.error_s")
        for record in self._records:
            if record.kind == PKT_EXIT:
                errors.observe(record.data[0])

    # -- offline analysis ------------------------------------------------------

    def error_series(self) -> List[Tuple[float, float]]:
        """(time, per-packet emulation error) from exit records."""
        return [(r.time, r.data[0]) for r in self._records if r.kind == PKT_EXIT]

    def throughput_series(self, bucket_s: float = 1.0) -> List[Tuple[float, float]]:
        """Delivered packets/sec in fixed time buckets."""
        if bucket_s <= 0:
            raise ValueError("bucket must be positive")
        counts: Dict[int, int] = {}
        for record in self._records:
            if record.kind == PKT_EXIT:
                counts[int(record.time / bucket_s)] = (
                    counts.get(int(record.time / bucket_s), 0) + 1
                )
        return [
            (bucket * bucket_s, count / bucket_s)
            for bucket, count in sorted(counts.items())
        ]

    def worst_pipe_backlogs(self, top: int = 5) -> List[Tuple[int, int]]:
        """(pipe id, max sampled backlog), worst first."""
        worst: Dict[int, int] = {}
        for record in self._records:
            if record.kind == PIPE_SAMPLE:
                pipe_id, backlog, _in_flight = record.data
                worst[pipe_id] = max(worst.get(pipe_id, 0), backlog)
        return sorted(worst.items(), key=lambda kv: -kv[1])[:top]
