"""Pipes: emulated links with a bandwidth queue and a delay line.

Mechanics follow dummynet as extended by the paper (Sec. 2.2): when a
packet (descriptor) arrives at a pipe it is dropped on randomized
loss or queue overflow; otherwise its *dequeue* time is computed from
the sizes of all earlier queued packets and the pipe bandwidth. On
dequeue the packet transfers to the delay line, where it waits the
pipe's latency before exiting.

Each pipe maintains the computation twice:

* in *scheduled* time — driven by the arrival times the (possibly
  tick-quantized) scheduler observed; this determines actual behavior;
* in *ideal* time — exact arithmetic, used for accuracy accounting
  and for packet-debt correction when enabled.

The queues themselves live behind the hot-core seam
(:mod:`repro.core.kernel`): a pipe owns a delay-line engine — scalar
reference, batched columnar, or numpy-vectorized — and the arrival
math here stays kernel-agnostic. All kernels are digest-identical.
"""

from __future__ import annotations

from time import perf_counter
from typing import List

from repro.core.kernel import DEFAULT_KERNEL, make_delay_line
from repro.core.packet import PacketDescriptor
from repro.core.queues import DropTailQueue

INFINITY = float("inf")


class Pipe:
    """One unidirectional emulated link."""

    __slots__ = (
        "id",
        "link_id",
        "src_node",
        "dst_node",
        "bandwidth_bps",
        "latency_s",
        "loss_rate",
        "queue_limit",
        "qdisc",
        "owner",
        "up",
        "_free_at",
        "_ideal_free_at",
        "_line",
        "kernel",
        "_sched_hint",
        "arrivals",
        "departures",
        "drops_overflow",
        "drops_random",
        "drops_down",
        "bytes_accepted",
        "bytes_through",
        "batch_departures",
        "peak_backlog",
        "_timer",
        "_tx_cache",
        "_droptail",
    )

    #: Runtime-adjustable knobs accepted by :meth:`set_params`.
    PARAM_NAMES = ("bandwidth_bps", "latency_s", "loss_rate", "queue_limit")

    def __init__(
        self,
        pipe_id: int,
        bandwidth_bps: float,
        latency_s: float,
        loss_rate: float = 0.0,
        queue_limit: int = 50,
        qdisc=None,
        link_id: int = -1,
        src_node: int = -1,
        dst_node: int = -1,
        kernel: str = DEFAULT_KERNEL,
    ):
        self.id = pipe_id
        self.link_id = link_id
        self.src_node = src_node
        self.dst_node = dst_node
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self.loss_rate = float(loss_rate)
        self.queue_limit = int(queue_limit)
        self.qdisc = qdisc or DropTailQueue()
        # Plain drop-tail admission is a single comparison; inline it
        # on the arrival path instead of dispatching through admit().
        self._droptail = type(self.qdisc) is DropTailQueue
        self.owner = 0
        self.up = True
        self._free_at = 0.0
        self._ideal_free_at = 0.0
        #: The delay-line engine behind the hot-core seam: bandwidth
        #: queue + delay line as columns of (descriptor, time, ideal).
        self.kernel = kernel
        self._line = make_delay_line(kernel)
        self._sched_hint = INFINITY  # deadline the scheduler knows about
        self.arrivals = 0
        self.departures = 0
        self.drops_overflow = 0
        self.drops_random = 0
        self.drops_down = 0
        #: Bytes admitted to the bandwidth queue (offered load that
        #: survived the drop checks).
        self.bytes_accepted = 0
        #: Bytes that fully exited the pipe. Counted at departure in
        #: :meth:`service`, so packets destroyed by :meth:`flush` (a
        #: dying link takes its queue with it) never inflate the
        #: delivered-throughput view that monitor/obs report.
        self.bytes_through = 0
        #: Departures delivered in multi-packet batches (a run of >= 2
        #: due exits drained by one service call) — the §2.2 batching
        #: win, observable as the ``pipe.batch_departures`` metric.
        self.batch_departures = 0
        self.peak_backlog = 0
        # transmission_time memo for the current bandwidth: packet
        # sizes cluster on a handful of MTU/ACK values, so the
        # division is paid once per (size, bandwidth generation).
        self._tx_cache: dict = {}
        # Observability timing hook: a Histogram when the owning
        # emulation runs with a live registry, else None (one
        # attribute check per arrival — the zero-overhead default).
        self._timer = None

    # ------------------------------------------------------------------

    @property
    def backlog_pkts(self) -> int:
        """Packets waiting for (or in) transmission."""
        return self._line.bw_len

    @property
    def in_flight(self) -> int:
        """Packets anywhere inside the pipe."""
        line = self._line
        return line.bw_len + line.dl_len

    def transmission_time(self, size_bytes: int) -> float:
        tx = self._tx_cache.get(size_bytes)
        if tx is None:
            tx = size_bytes * 8.0 / self.bandwidth_bps
            self._tx_cache[size_bytes] = tx
        return tx

    def arrival(
        self,
        descriptor: PacketDescriptor,
        now: float,
        ideal_now: float,
        rng=None,
    ) -> bool:
        """Offer a descriptor to this pipe at scheduled time ``now``
        (``ideal_now`` is the exact-arithmetic arrival). Returns False
        on a virtual drop."""
        timer = self._timer
        if timer is not None:
            t0 = perf_counter()  # repro: allow-wallclock
            accepted = self._arrival(descriptor, now, ideal_now, rng)
            timer.observe(perf_counter() - t0)  # repro: allow-wallclock
            return accepted
        return self._arrival(descriptor, now, ideal_now, rng)

    def _arrival(
        self,
        descriptor: PacketDescriptor,
        now: float,
        ideal_now: float,
        rng=None,
    ) -> bool:
        self.arrivals += 1
        if not self.up:
            self.drops_down += 1
            return False
        if self.loss_rate > 0.0 and rng is not None and rng.random() < self.loss_rate:
            self.drops_random += 1
            return False
        line = self._line
        backlog = line.bw_len
        if self._droptail:
            admitted = backlog < self.queue_limit
        else:
            admitted = self.qdisc.admit(backlog, self.queue_limit, now, rng)
        if not admitted:
            self.drops_overflow += 1
            return False
        size = descriptor.packet.size_bytes
        tx = self._tx_cache.get(size)
        if tx is None:
            tx = self.transmission_time(size)
        free_at = self._free_at
        dequeue_at = (now if now > free_at else free_at) + tx
        self._free_at = dequeue_at
        ideal_free = self._ideal_free_at
        ideal_dequeue = (ideal_now if ideal_now > ideal_free else ideal_free) + tx
        self._ideal_free_at = ideal_dequeue
        ideal_exit = ideal_dequeue + self.latency_s
        descriptor.ideal_time = ideal_exit
        line.admit(descriptor, dequeue_at, ideal_exit)
        if backlog >= self.peak_backlog:
            self.peak_backlog = backlog + 1
        self.bytes_accepted += size
        return True

    def next_deadline(self) -> float:
        """Earliest future event in this pipe: a dequeue into the
        delay line or an exit from it."""
        return self._line.head_deadline

    def service(self, now: float) -> List[PacketDescriptor]:
        """Advance pipe state to ``now``; return descriptors that have
        fully exited (dequeued and served their latency). The kernel
        drains the due *run* in one call (batched delivery)."""
        exits, through = self._line.service(now, self.latency_s)
        departed = len(exits)
        if departed:
            self.departures += departed
            self.bytes_through += through
            if departed > 1:
                self.batch_departures += departed
        return exits

    def flush(self) -> int:
        """Drop everything queued or in flight (a link that dies takes
        its queue with it). Returns the number of packets lost.

        Resets ``_sched_hint`` to INFINITY so the owning scheduler's
        heap entry for this pipe goes stale and is discarded instead
        of firing a spurious wakeup — and so a post-flush arrival is
        not shadowed by the orphaned earlier deadline."""
        lost = self._line.flush()
        self.drops_down += lost
        self._free_at = 0.0
        self._ideal_free_at = 0.0
        self._sched_hint = INFINITY
        return lost

    # ------------------------------------------------------------------
    # Dynamic reconfiguration (cross traffic, faults)
    # ------------------------------------------------------------------

    def set_params(self, **params) -> None:
        """Adjust pipe parameters in place. In-flight packets keep
        their already-computed times (dummynet semantics); new
        arrivals see the new parameters.

        Unknown parameter names raise :class:`ValueError` (a silently
        ignored typo would emulate the wrong network)."""
        unknown = set(params) - set(self.PARAM_NAMES)
        if unknown:
            raise ValueError(
                f"unknown pipe parameter(s) {sorted(unknown)}; "
                f"valid knobs: {', '.join(self.PARAM_NAMES)}"
            )
        bandwidth_bps = params.get("bandwidth_bps")
        latency_s = params.get("latency_s")
        loss_rate = params.get("loss_rate")
        queue_limit = params.get("queue_limit")
        if bandwidth_bps is not None:
            if bandwidth_bps <= 0:
                raise ValueError("bandwidth must be positive")
            if float(bandwidth_bps) != self.bandwidth_bps:
                # New bandwidth generation: drop the memoized
                # per-size transmission times.
                self._tx_cache.clear()
            self.bandwidth_bps = float(bandwidth_bps)
        if latency_s is not None:
            if latency_s < 0:
                raise ValueError("latency must be >= 0")
            self.latency_s = float(latency_s)
        if loss_rate is not None:
            if not 0.0 <= loss_rate < 1.0:
                raise ValueError("loss rate must be in [0, 1)")
            self.loss_rate = float(loss_rate)
        if queue_limit is not None:
            if queue_limit < 1:
                raise ValueError("queue limit must be >= 1")
            self.queue_limit = int(queue_limit)

    def __repr__(self) -> str:
        return (
            f"<Pipe {self.id} {self.src_node}->{self.dst_node} "
            f"{self.bandwidth_bps/1e6:g}Mb/s {self.latency_s*1e3:g}ms "
            f"q={self.backlog_pkts}/{self.queue_limit}>"
        )
