"""The ModelNet core router (paper Sec. 2.2, Fig. 3).

A core node performs two principal tasks: it processes "hardware
interrupts" to retrieve packets from its NIC ring, and its scheduler
moves packets from pipe to pipe at every clock tick. The scheduler
runs at strictly higher priority, so under CPU saturation the NIC
ring overflows and packets are dropped *physically* rather than
emulated inaccurately — the paper's central accuracy invariant.

The cost model (per-packet ingress, per-hop scheduling, tunneling)
comes from :class:`repro.hardware.calibration.CoreSpec`. With
``exact=True`` the node models an infinitely fast core with no tick
quantization — the reference mode used for ns2-style comparison runs
and for application studies where core hardware is not the subject.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop
from math import ceil
from typing import Deque, Optional, Tuple

from repro.core.packet import PacketDescriptor
from repro.core.pipe import INFINITY, Pipe
from repro.core.scheduler import PipeScheduler
from repro.engine.sync import MSG_HOST, MSG_TUNNEL, DomainChannel
from repro.hardware.calibration import CoreSpec
from repro.hardware.links import PhysicalLink

# Ring work-item tags.
INGRESS = 0  # a fresh packet from an edge node
TUNNEL_IN = 1  # a descriptor arriving from a peer core
DELIVER = 2  # a payload-caching delivery order returning to the entry core


class CoreNode:
    """One core router."""

    def __init__(
        self,
        sim,
        index: int,
        spec: CoreSpec,
        emulation,
        exact: bool = False,
        debt_handling: bool = False,
        domain_id: int = 0,
    ):
        self.sim = sim
        self.index = index
        self.spec = spec
        self.emulation = emulation
        self.exact = exact
        self.debt_handling = debt_handling
        #: Which event domain this core's heap/clock belongs to.
        self.domain_id = domain_id
        #: This domain's pipe-loss stream (== emulation.loss_rng for
        #: domain 0, so single-domain digests are unchanged).
        self._loss_rng = emulation._loss_rngs[domain_id]
        # Partitioned plumbing: cross-domain sends go through the
        # router mailbox over a synchronous channel model instead of a
        # PhysicalLink (whose delivery callback would fire on *this*
        # domain's clock). None in single-domain runs.
        if emulation.num_domains > 1:
            self._router = emulation.router
            self._domain_of_core = emulation._domain_of_core
            self._cross_channel = DomainChannel(
                spec.nic_bps, spec.switch_latency_s
            )
        else:
            self._router = None
            self._domain_of_core = None
            self._cross_channel = None
        self.scheduler = PipeScheduler(0.0 if exact else spec.tick_s)
        # Spec constants hoisted onto the instance: the wake loop and
        # ingress path read them once per packet/tick.
        self._tick_s = spec.tick_s
        self._sched_tick_s = self.scheduler.tick_s
        self._per_hop_s = spec.per_hop_s
        self._per_packet_s = spec.per_packet_s
        self._nic_ring_slots = spec.nic_ring_slots
        self._ring: Deque[Tuple[int, object]] = deque()
        self._wake_event = None
        self._wake_time = INFINITY
        self._last_wake = 0.0
        self._cpu_backlog = 0.0
        self.cpu_busy_s = 0.0
        self.packets_processed = 0
        self.hops_processed = 0
        #: Wakeups whose work exceeded one tick of CPU (the real-time
        #: scheduler "overrun" signal: emulation is falling behind).
        self.tick_overruns = 0
        #: Optional (prev_pipe_id, next_pipe_id) -> packet counter,
        #: installed by the dynamic reassigner to learn the traffic's
        #: pipe adjacency ("evolving communication patterns").
        self.pair_tracker: Optional[dict] = None
        self.tunnels_sent = 0
        self.tunnels_received = 0
        # Physical NIC links, attached by the emulation when the
        # physical layer is modeled.
        self.ingress_link: Optional[PhysicalLink] = None
        self.egress_link: Optional[PhysicalLink] = None

    # ------------------------------------------------------------------
    # Physical arrival paths
    # ------------------------------------------------------------------

    def physical_ingress(self, tag: int, item) -> None:
        """A packet/descriptor reached this core's NIC: join the
        receive ring, or be dropped physically if the ring is full."""
        if self.exact:
            self._process_item(tag, item, self.sim.now)
            return
        if len(self._ring) >= self._nic_ring_slots:
            self.emulation.monitor.ring_drop()
            return
        self._ring.append((tag, item))
        # scheduler.quantize(now) clamped to now, inlined: the next
        # tick boundary, or this instant if one lands (just) behind us.
        now = self.sim._now
        tick = self._sched_tick_s
        if tick > 0.0:
            wake = ceil(now / tick - 1e-9) * tick
            if wake <= now:
                wake = now
        else:
            wake = now
        self._ensure_wake(wake)

    def ingress_packet(self, packet) -> None:
        """Entry point for fresh edge traffic (ipfw intercept)."""
        self.physical_ingress(INGRESS, packet)

    # ------------------------------------------------------------------
    # The kernel loop
    # ------------------------------------------------------------------

    def _ensure_wake(self, time: float) -> None:
        # Debt handling can produce already-matured deadlines; service
        # them at the current instant.
        now = self.sim._now
        if time < now:
            time = now
        event = self._wake_event
        if event is not None:
            if self._wake_time <= time:
                return
            event.cancel()
        self._wake_time = time
        self._wake_event = self.sim.at(time, self._wake)

    def _reschedule_wake(self) -> None:
        # scheduler.next_wake() and _ensure_wake() inlined: this runs
        # after every wake and every packet offer.
        sched_heap = self.scheduler._heap
        while sched_heap:
            entry = sched_heap[0]
            if entry[0] == entry[2]._sched_hint:
                break
            heappop(sched_heap)  # stale: superseded, serviced, flushed
        if sched_heap:
            wake = sched_heap[0][0]
            tick = self._sched_tick_s
            if tick > 0.0:
                wake = ceil(wake / tick - 1e-9) * tick
        else:
            wake = INFINITY
        if self._ring:
            ring_wake = self.sim._now + self._tick_s
            if ring_wake < wake:
                wake = ring_wake
        if wake < INFINITY:
            now = self.sim._now
            if wake < now:
                wake = now
            event = self._wake_event
            if event is not None:
                if self._wake_time <= wake:
                    return
                event.cancel()
            self._wake_time = wake
            self._wake_event = self.sim.at(wake, self._wake)

    def _wake(self) -> None:
        now = self.sim._now
        self._wake_event = None
        self._wake_time = INFINITY
        tick = self._tick_s

        # CPU backlog decays with elapsed wall (virtual) time.
        elapsed = now - self._last_wake
        self._last_wake = now
        backlog = self._cpu_backlog - elapsed
        if backlog < 0.0:
            backlog = 0.0

        spent = 0.0
        # 1) Scheduler pass: highest priority, always runs to completion.
        # Ticks with no matured deadline (common under light load) skip
        # the collect() call entirely; the wakeup is still counted so
        # sched.wakeups reads the same either way.
        scheduler = self.scheduler
        sched_heap = scheduler._heap
        if (
            sched_heap
            and sched_heap[0][0] <= now + scheduler._slack
            or scheduler.collect_timer is not None
        ):
            hops = 0
            per_hop = self._per_hop_s
            descriptor_exited = self._descriptor_exited
            # Batched delivery: collect() hands back one (pipe, exits)
            # run per serviced pipe; hop bookkeeping is per batch. The
            # CPU charge stays per descriptor *in order* — the float
            # accumulation sequence is part of the digest contract
            # (summing per_hop * n would perturb the NIC-ring budget).
            for _pipe, exits in scheduler.collect(now):
                hops += len(exits)
                for descriptor in exits:
                    spent += per_hop
                    spent += descriptor_exited(descriptor, now)
            self.hops_processed += hops
        else:
            scheduler.wakeups += 1

        # 2) Interrupt pass: drain the NIC ring with whatever CPU
        #    remains in this tick.
        budget = tick - backlog - spent
        ring = self._ring
        if ring:
            per_packet = self._per_packet_s
            popleft = ring.popleft
            process_item = self._process_item
            while ring:
                tag, item = ring[0]
                cost = (
                    per_packet
                    if tag == INGRESS
                    else self._item_cost(tag, item)
                )
                if budget < cost:
                    break
                popleft()
                budget -= cost
                spent += cost
                process_item(tag, item, now)

        self.cpu_busy_s += spent
        backlog = backlog + spent - tick
        if backlog > 0.0:
            self._cpu_backlog = backlog
            self.tick_overruns += 1
        else:
            self._cpu_backlog = 0.0
        self._reschedule_wake()

    def _item_cost(self, tag: int, item=None) -> float:
        if tag == INGRESS:
            return self.spec.per_packet_s
        if tag == TUNNEL_IN:
            cost = self.spec.tunnel_recv_s
            if not self.emulation.config.payload_caching and item is not None:
                # The packet body came along: pay the memcpy.
                cost += self.spec.tunnel_byte_s * item.packet.size_bytes
            return cost
        return self.spec.deliver_order_s

    def _process_item(self, tag: int, item, now: float) -> None:
        if tag == INGRESS:
            self._admit_packet(item, now)
        elif tag == TUNNEL_IN:
            self.tunnels_received += 1
            self._offer(item, now)
        else:  # DELIVER: payload-caching order back at the entry core
            self._deliver_local(item)

    # ------------------------------------------------------------------
    # Packet admission and movement
    # ------------------------------------------------------------------

    def _admit_packet(self, packet, now: float) -> None:
        pipes = self.emulation.lookup_pipes(packet.src, packet.dst)
        if pipes is None:
            self.emulation.monitor.packet_unroutable()
            return
        self.packets_processed += 1
        self.emulation.monitor.packet_entered()
        descriptor = PacketDescriptor.acquire(packet, pipes, self.index, now)
        if not pipes:
            # Source and destination share an attachment point.
            self._complete(descriptor, now)
            return
        if self.pair_tracker is not None:
            # Pseudo-source -1-k encodes "entered at core k": a first
            # pipe owned elsewhere is also a crossing.
            key = (-1 - self.index, pipes[0].id)
            self.pair_tracker[key] = self.pair_tracker.get(key, 0) + 1
        self._offer(descriptor, now)

    def _offer(self, descriptor: PacketDescriptor, now: float) -> None:
        """Place a descriptor on its current pipe, tunneling first if
        the pipe belongs to a different core."""
        pipe = descriptor.current_pipe
        if pipe.owner != self.index:
            self._tunnel(descriptor, pipe.owner)
            return
        sched_arrival = descriptor.ideal_time if self.debt_handling else now
        accepted = pipe.arrival(
            descriptor, sched_arrival, descriptor.ideal_time, self._loss_rng
        )
        if accepted:
            if self._router is not None and not self.exact:
                self._announce_handoff(descriptor, pipe)
            self.scheduler.notify(pipe)
            self._reschedule_wake()
        # A refusal is a virtual drop, already counted by the pipe.

    def _announce_handoff(self, descriptor: PacketDescriptor, pipe: Pipe) -> None:
        """Announce a cross-domain continuation at *admission* time.

        The instant ``pipe`` accepts a descriptor, its exit is fully
        determined: ``_arrival`` fixed the dequeue time (the pipe's
        new ``_free_at``) and the exit follows one pipe latency later,
        regardless of when the tick scheduler collects it. So when the
        hop *after* this pipe lives in another domain, the successor
        can be put on the wire now, timed at that future exit — the
        message rides the pipe's own latency, which is what lets the
        lookahead matrix carry per-pair pipe latencies instead of the
        20 us channel floor (the whole point of per-pair sync; see
        ``Emulation._derive_lookahead_matrix``). The local descriptor
        finishes its traversal for CPU/stat accounting and is marked
        ``handoff`` so the exit handler releases it instead of
        forwarding it a second time.

        One modeled cost moves with this: with payload caching, a
        completion whose entry core sits in a foreign domain no longer
        bounces a delivery order back to it (that bounce would pin
        every communicating domain pair at the channel floor); the
        packet exits directly from the last pipe's core. Same-domain
        delivery orders are unchanged.
        """
        next_index = descriptor.hop_index + 1
        pipes = descriptor.pipes
        exit_at = pipe._free_at + pipe.latency_s
        emulation = self.emulation
        if next_index < len(pipes):
            next_pipe = pipes[next_index]
            next_domain = self._domain_of_core[next_pipe.owner]
            if next_domain == self.domain_id:
                return
            copy = PacketDescriptor.acquire(
                descriptor.packet,
                pipes,
                descriptor.entry_core,
                descriptor.entered_at,
            )
            copy.hop_index = next_index
            copy.ideal_time = descriptor.ideal_time
            copy.tunnel_hops = descriptor.tunnel_hops + 1
            if self.pair_tracker is not None:
                key = (pipe.id, next_pipe.id)
                self.pair_tracker[key] = self.pair_tracker.get(key, 0) + 1
            self.tunnels_sent += 1
            emulation.monitor.packet_tunneled()
            if emulation.config.payload_caching:
                size = self.spec.descriptor_bytes
            else:
                size = descriptor.packet.size_bytes
            self._router.send(
                self._cross_channel.handoff_time(exit_at, size),
                self.domain_id,
                next_domain,
                MSG_TUNNEL,
                next_pipe.owner,
                copy,
            )
            descriptor.handoff = 1
            return
        # Last pipe: on exit the packet leaves the core fabric toward
        # its destination host. Announce that too when the host's
        # domain is foreign.
        packet = descriptor.packet
        host = emulation.host_of_vn(packet.dst)
        host_domain = emulation._domain_of_host[host.index]
        if host_domain == self.domain_id:
            return
        self._router.send(
            self._cross_channel.handoff_time(exit_at, packet.size_bytes),
            self.domain_id,
            host_domain,
            MSG_HOST,
            host.index,
            packet,
        )
        descriptor.handoff = 2

    def _descriptor_exited(self, descriptor: PacketDescriptor, now: float) -> float:
        """Handle a pipe exit; returns extra CPU spent (tunnel sends)."""
        handoff = descriptor.handoff
        if handoff:
            # The continuation crossed the domain boundary at admission
            # time; this exit only accounts the local CPU cost.
            if handoff == 1:
                cost = self.spec.tunnel_send_s
                if not self.emulation.config.payload_caching:
                    cost += self.spec.tunnel_byte_s * descriptor.packet.size_bytes
                descriptor.release()
                return cost
            # handoff == 2: exiting toward a foreign-domain host.
            self.emulation.monitor.packet_exited(descriptor.ideal_time, now)
            descriptor.release()
            return self.spec.deliver_order_s
        previous_pipe = descriptor.current_pipe
        if descriptor.advance():
            next_pipe = descriptor.current_pipe
            if self.pair_tracker is not None:
                key = (previous_pipe.id, next_pipe.id)
                self.pair_tracker[key] = self.pair_tracker.get(key, 0) + 1
            if next_pipe.owner != self.index:
                self._tunnel(descriptor, next_pipe.owner)
                cost = self.spec.tunnel_send_s
                if not self.emulation.config.payload_caching:
                    cost += self.spec.tunnel_byte_s * descriptor.packet.size_bytes
                return cost
            sched_arrival = descriptor.ideal_time if self.debt_handling else now
            accepted = next_pipe.arrival(
                descriptor,
                sched_arrival,
                descriptor.ideal_time,
                self._loss_rng,
            )
            if accepted:
                if self._router is not None and not self.exact:
                    self._announce_handoff(descriptor, next_pipe)
                self.scheduler.notify(next_pipe)
            return 0.0
        return self._complete(descriptor, now)

    def _tunnel(self, descriptor: PacketDescriptor, owner: int) -> None:
        """Forward a descriptor to the core owning its next pipe."""
        descriptor.tunnel_hops += 1
        self.tunnels_sent += 1
        self.emulation.monitor.packet_tunneled()
        if self.emulation.config.payload_caching:
            size = self.spec.descriptor_bytes
        else:
            size = descriptor.packet.size_bytes
        router = self._router
        if router is not None:
            owner_domain = self._domain_of_core[owner]
            if owner_domain != self.domain_id:
                router.send(
                    self._cross_channel.delivery_time(self.sim._now, size),
                    self.domain_id,
                    owner_domain,
                    MSG_TUNNEL,
                    owner,
                    descriptor,
                )
                return
        target = self.emulation.cores[owner]
        if self.exact or self.egress_link is None:
            target.physical_ingress(TUNNEL_IN, descriptor)
            return
        ok = self.egress_link.send(
            size, target.physical_ingress, TUNNEL_IN, descriptor
        )
        if not ok:
            self.emulation.monitor.egress_drop()

    def _complete(self, descriptor: PacketDescriptor, now: float) -> float:
        """A descriptor finished its last pipe on this core."""
        self.emulation.monitor.packet_exited(descriptor.ideal_time, now)
        if (
            self.emulation.config.payload_caching
            and descriptor.entry_core != self.index
            and not self.exact
        ):
            # Payload stayed at the entry core [22]: send it the
            # delivery order; the body never crossed the core fabric.
            entry_core = descriptor.entry_core
            router = self._router
            if router is not None:
                entry_domain = self._domain_of_core[entry_core]
                if entry_domain != self.domain_id:
                    # Delivery orders are modeled only within a domain
                    # (see _announce_handoff): deliver straight from
                    # the exit core, keeping the order's CPU cost.
                    self._deliver_local(descriptor)
                    return self.spec.deliver_order_s
            entry = self.emulation.cores[entry_core]
            if self.egress_link is not None:
                ok = self.egress_link.send(
                    self.spec.descriptor_bytes,
                    entry.physical_ingress,
                    DELIVER,
                    descriptor,
                )
                if not ok:
                    self.emulation.monitor.egress_drop()
                return self.spec.deliver_order_s
            entry.physical_ingress(DELIVER, descriptor)
            return self.spec.deliver_order_s
        self._deliver_local(descriptor)
        return 0.0

    def _deliver_local(self, descriptor: PacketDescriptor) -> None:
        """Push the buffered packet out of this core toward the edge
        host of the destination VN."""
        packet = descriptor.packet
        # The descriptor's journey ends here: only the buffered packet
        # travels on. Recycle it for the next admission.
        descriptor.release()
        if self.exact or self.egress_link is None:
            self.emulation.deliver_to_vn(packet)
            return
        host = self.emulation.host_of_vn(packet.dst)
        router = self._router
        if router is not None:
            host_domain = self.emulation._domain_of_host[host.index]
            if host_domain != self.domain_id:
                router.send(
                    self._cross_channel.delivery_time(
                        self.sim._now, packet.size_bytes
                    ),
                    self.domain_id,
                    host_domain,
                    MSG_HOST,
                    host.index,
                    packet,
                )
                return
        ok = self.egress_link.send(
            packet.size_bytes, host.receive_from_switch, packet
        )
        if not ok:
            self.emulation.monitor.egress_drop()

    # ------------------------------------------------------------------

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` the core CPU was busy."""
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, self.cpu_busy_s / elapsed_s)

    def __repr__(self) -> str:
        return f"<CoreNode {self.index} ring={len(self._ring)}>"
