"""The hot-core seam: swappable delay-line kernels for pipes.

The paper's heap-of-pipes scheduler (Sec. 2.2) pays scheduling cost
per *pipe*; this module takes the idea one level further so the
per-packet work inside each pipe is batchable too. A pipe's bandwidth
queue and delay line are *data*, not events: parallel columns of
departure times and descriptors that :meth:`service` drains in runs
(one call per pipe per tick), instead of one heap entry and one
callback per packet.

Three interchangeable kernels implement the same delay-line contract:

``scalar``
    The reference implementation: deques of ``(descriptor, time,
    ideal)`` tuples, one pop per packet, every value recomputed where
    it is read. Written for auditability — this is the yardstick the
    sanitizer compares the optimized kernels against.
``batched``
    The production kernel: columnar Python lists (descriptor, time,
    ideal columns) with head offsets, run-scanned and drained by
    slice. Also selects the optimized dispatch loop in
    :class:`~repro.engine.domain.EventDomain`.
``numpy``
    The vectorized kernel: float64 time columns, ``searchsorted`` run
    detection and vectorized latency freeze. Requires numpy; the
    config layer refuses the name when it is missing.

Every kernel must be *digest-identical*: same exit order, same exit
times, same ``head_deadline`` floats (all IEEE-double arithmetic in
the same order), so the event streams the sanitize machinery hashes
are byte-equal across kernels and backends. CI enforces this on the
committed ``examples/*.digests.json`` baselines for every kernel.

The contract each kernel implements:

``admit(descriptor, dequeue_at, ideal_exit)``
    Append to the bandwidth queue. ``dequeue_at`` values are
    non-decreasing per pipe (the pipe's ``_free_at`` is monotone).
``service(cutoff, latency_s) -> (exits, bytes_through)``
    Move every due bandwidth entry (``dequeue_at <= cutoff``) into
    the delay line at ``dequeue_at + latency_s`` — latency is read at
    *service* time, dummynet semantics — then drain the delay-line
    prefix that is due, stopping at the first entry beyond ``cutoff``
    (entries behind it wait even if already due: latency changes can
    make the line non-monotone, and the reference drains head-order).
    Sets ``descriptor.ideal_time`` on each exit.
``head_deadline``
    The earliest pending time in either queue (``inf`` when empty).
    Scheduler-facing: read once per offer and per serviced pipe.
``bw_len`` / ``dl_len``
    Occupancy counts (drop-tail admission reads ``bw_len``).
``flush() -> int``
    Release every queued descriptor; returns the number lost.
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

try:  # pragma: no cover - exercised via numpy_available()
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is an optional kernel dep
    _np = None

INFINITY = float("inf")

#: Kernel names accepted by ``--kernel`` / ``EmulationConfig.kernel``.
KERNELS = ("scalar", "batched", "numpy")

#: The production default.
DEFAULT_KERNEL = "batched"

#: Compact a consumed column prefix once it reaches this length *and*
#: at least half the column (amortized O(1) per packet either way).
_COMPACT_AT = 512


def numpy_available() -> bool:
    """Whether the ``numpy`` kernel can run in this interpreter."""
    return _np is not None


def require_kernel(name: str) -> str:
    """Validate a kernel name; raises :class:`ValueError` on an
    unknown name or an unavailable backend library."""
    if name not in KERNELS:
        raise ValueError(
            f"unknown kernel {name!r}; valid kernels: {', '.join(KERNELS)}"
        )
    if name == "numpy" and _np is None:
        raise ValueError(
            "kernel 'numpy' requires numpy, which is not installed; "
            "use 'batched' or 'scalar'"
        )
    return name


class ScalarDelayLine:
    """Reference delay line: tuple deques, one element at a time.

    Deliberately plain — no cached deadlines, no columnar storage —
    so its behavior is auditable by inspection. The optimized kernels
    are verified against it (same exits, same floats, same digests).
    """

    __slots__ = ("_bw", "_dl")

    name = "scalar"

    def __init__(self):
        # (descriptor, dequeue_time, ideal_exit_time)
        self._bw: deque = deque()
        # (descriptor, exit_time, ideal_exit_time)
        self._dl: deque = deque()

    @property
    def bw_len(self) -> int:
        return len(self._bw)

    @property
    def dl_len(self) -> int:
        return len(self._dl)

    @property
    def head_deadline(self) -> float:
        deadline = INFINITY
        if self._bw:
            deadline = self._bw[0][1]
        if self._dl and self._dl[0][1] < deadline:
            deadline = self._dl[0][1]
        return deadline

    def admit(self, descriptor, dequeue_at: float, ideal_exit: float) -> None:
        self._bw.append((descriptor, dequeue_at, ideal_exit))

    def service(self, cutoff: float, latency_s: float) -> Tuple[list, int]:
        bw = self._bw
        dl = self._dl
        while bw and bw[0][1] <= cutoff:
            descriptor, dequeue_at, ideal_exit = bw.popleft()
            dl.append((descriptor, dequeue_at + latency_s, ideal_exit))
        exits: List = []
        through = 0
        while dl and dl[0][1] <= cutoff:
            descriptor, _exit_at, ideal_exit = dl.popleft()
            descriptor.ideal_time = ideal_exit
            through += descriptor.packet.size_bytes
            exits.append(descriptor)
        return exits, through

    def flush(self) -> int:
        lost = len(self._bw) + len(self._dl)
        for descriptor, _time, _ideal in self._bw:
            descriptor.release()
        for descriptor, _time, _ideal in self._dl:
            descriptor.release()
        self._bw.clear()
        self._dl.clear()
        return lost


class BatchedDelayLine:
    """Columnar delay line: parallel lists with head offsets.

    Departure times, descriptors and ideal exits live in separate
    columns; :meth:`service` finds the due run with one forward scan
    and moves/drains it with list slices, so per-packet Python work
    shrinks to the unavoidable descriptor field writes. The earliest
    pending time is cached in :attr:`head_deadline` (admission only
    ever appends later times, so a min-update keeps it exact) —
    the scheduler reads an attribute instead of peeking two queues.
    """

    __slots__ = (
        "_bw_desc", "_bw_time", "_bw_ideal", "_bw_head",
        "_dl_desc", "_dl_time", "_dl_ideal", "_dl_head",
        "bw_len", "dl_len", "head_deadline",
    )

    name = "batched"

    def __init__(self):
        self._bw_desc: list = []
        self._bw_time: list = []
        self._bw_ideal: list = []
        self._bw_head = 0
        self._dl_desc: list = []
        self._dl_time: list = []
        self._dl_ideal: list = []
        self._dl_head = 0
        self.bw_len = 0
        self.dl_len = 0
        self.head_deadline = INFINITY

    def admit(self, descriptor, dequeue_at: float, ideal_exit: float) -> None:
        self._bw_desc.append(descriptor)
        self._bw_time.append(dequeue_at)
        self._bw_ideal.append(ideal_exit)
        self.bw_len += 1
        if dequeue_at < self.head_deadline:
            self.head_deadline = dequeue_at

    def service(self, cutoff: float, latency_s: float) -> Tuple[list, int]:
        bw_time = self._bw_time
        h = self._bw_head
        n = len(bw_time)
        if h < n and bw_time[h] <= cutoff:
            dl_time = self._dl_time
            dl_desc = self._dl_desc
            dl_ideal = self._dl_ideal
            k = h + 1
            if k >= n or bw_time[k] > cutoff:
                # Single due entry — the common case under interactive
                # traffic: plain appends, no slicing.
                dl_time.append(bw_time[h] + latency_s)
                dl_desc.append(self._bw_desc[h])
                dl_ideal.append(self._bw_ideal[h])
                self.bw_len -= 1
                self.dl_len += 1
            else:
                # Due run: dequeue times are monotone, so the run ends
                # at the first entry beyond the cutoff.
                while k < n and bw_time[k] <= cutoff:
                    k += 1
                # Freeze the latency at service time (dummynet
                # semantics) for the whole run at once.
                dl_time.extend([t + latency_s for t in bw_time[h:k]])
                dl_desc.extend(self._bw_desc[h:k])
                dl_ideal.extend(self._bw_ideal[h:k])
                moved = k - h
                self.bw_len -= moved
                self.dl_len += moved
            self._bw_head = k
            if k >= _COMPACT_AT and k * 2 >= len(self._bw_desc):
                del self._bw_desc[:k]
                del self._bw_time[:k]
                del self._bw_ideal[:k]
                self._bw_head = 0
        exits: List = []
        through = 0
        dl_time = self._dl_time
        dh = self._dl_head
        dn = len(dl_time)
        if dh < dn and dl_time[dh] <= cutoff:
            # Head-order drain: stop at the first not-yet-due entry
            # even if later ones are due (matches the reference; the
            # line can be non-monotone after a latency change).
            dl_desc = self._dl_desc
            dl_ideal = self._dl_ideal
            dk = dh + 1
            if dk >= dn or dl_time[dk] > cutoff:
                descriptor = dl_desc[dh]
                descriptor.ideal_time = dl_ideal[dh]
                through = descriptor.packet.size_bytes
                exits = [descriptor]
                self.dl_len -= 1
            else:
                while dk < dn and dl_time[dk] <= cutoff:
                    dk += 1
                exits = dl_desc[dh:dk]
                ideal_run = dl_ideal[dh:dk]
                for i, descriptor in enumerate(exits):
                    descriptor.ideal_time = ideal_run[i]
                    through += descriptor.packet.size_bytes
                self.dl_len -= dk - dh
            self._dl_head = dk
            if dk >= _COMPACT_AT and dk * 2 >= len(dl_desc):
                del dl_desc[:dk]
                del self._dl_time[:dk]
                del dl_ideal[:dk]
                self._dl_head = 0
        # Refresh the cached earliest deadline from the new heads.
        head = INFINITY
        if self.bw_len:
            head = self._bw_time[self._bw_head]
        if self.dl_len:
            t = self._dl_time[self._dl_head]
            if t < head:
                head = t
        self.head_deadline = head
        return exits, through

    def flush(self) -> int:
        lost = self.bw_len + self.dl_len
        for descriptor in self._bw_desc[self._bw_head:]:
            descriptor.release()
        for descriptor in self._dl_desc[self._dl_head:]:
            descriptor.release()
        self._bw_desc.clear()
        self._bw_time.clear()
        self._bw_ideal.clear()
        self._bw_head = 0
        self._dl_desc.clear()
        self._dl_time.clear()
        self._dl_ideal.clear()
        self._dl_head = 0
        self.bw_len = 0
        self.dl_len = 0
        self.head_deadline = INFINITY
        return lost


class NumpyDelayLine:
    """Vectorized delay line: float64 time columns.

    Times live in preallocated numpy arrays (grown by doubling);
    descriptors and ideal exits stay in Python lists aligned index-
    for-index with the arrays. Run detection uses ``searchsorted`` on
    the (monotone) bandwidth column and a first-exceed scan on the
    delay column; the latency freeze is one vectorized add. All
    arithmetic is IEEE double, bit-identical to the Python kernels;
    scalars crossing back into the engine are cast to ``float`` so no
    ``np.float64`` ever enters a heap or the quantizer.
    """

    __slots__ = (
        "_bw_desc", "_bw_time", "_bw_ideal", "_bw_head",
        "_dl_desc", "_dl_time", "_dl_ideal", "_dl_head",
        "bw_len", "dl_len", "head_deadline",
    )

    name = "numpy"

    def __init__(self):
        if _np is None:
            raise RuntimeError(
                "kernel 'numpy' requires numpy, which is not installed"
            )
        self._bw_desc: list = []
        self._bw_time = _np.empty(64, dtype=_np.float64)
        self._bw_ideal: list = []
        self._bw_head = 0
        self._dl_desc: list = []
        self._dl_time = _np.empty(64, dtype=_np.float64)
        self._dl_ideal: list = []
        self._dl_head = 0
        self.bw_len = 0
        self.dl_len = 0
        self.head_deadline = INFINITY

    @staticmethod
    def _grown(array, needed: int):
        capacity = array.shape[0]
        if needed <= capacity:
            return array
        while capacity < needed:
            capacity *= 2
        grown = _np.empty(capacity, dtype=_np.float64)
        grown[: array.shape[0]] = array
        return grown

    def admit(self, descriptor, dequeue_at: float, ideal_exit: float) -> None:
        tail = len(self._bw_desc)
        bw_time = self._bw_time
        if tail == bw_time.shape[0]:
            self._bw_time = bw_time = self._grown(bw_time, tail + 1)
        bw_time[tail] = dequeue_at
        self._bw_desc.append(descriptor)
        self._bw_ideal.append(ideal_exit)
        self.bw_len += 1
        if dequeue_at < self.head_deadline:
            self.head_deadline = dequeue_at

    def service(self, cutoff: float, latency_s: float) -> Tuple[list, int]:
        bw_time = self._bw_time
        h = self._bw_head
        n = len(self._bw_desc)
        if h < n and bw_time[h] <= cutoff:
            k = h + int(
                _np.searchsorted(bw_time[h:n], cutoff, side="right")
            )
            moved = k - h
            dl_tail = len(self._dl_desc)
            dl_time = self._dl_time = self._grown(
                self._dl_time, dl_tail + moved
            )
            dl_time[dl_tail : dl_tail + moved] = bw_time[h:k] + latency_s
            self._dl_desc.extend(self._bw_desc[h:k])
            self._dl_ideal.extend(self._bw_ideal[h:k])
            self.bw_len -= moved
            self.dl_len += moved
            self._bw_head = k
            if k >= _COMPACT_AT and k * 2 >= len(self._bw_desc):
                remaining = len(self._bw_desc) - k
                bw_time[:remaining] = bw_time[k : k + remaining]
                del self._bw_desc[:k]
                del self._bw_ideal[:k]
                self._bw_head = 0
        exits: List = []
        through = 0
        dl_time = self._dl_time
        dh = self._dl_head
        dn = len(self._dl_desc)
        if dh < dn and dl_time[dh] <= cutoff:
            segment = dl_time[dh:dn]
            over = _np.nonzero(segment > cutoff)[0]
            dk = dh + (int(over[0]) if over.size else dn - dh)
            dl_desc = self._dl_desc
            dl_ideal = self._dl_ideal
            exits = dl_desc[dh:dk]
            for i in range(dh, dk):
                descriptor = dl_desc[i]
                descriptor.ideal_time = dl_ideal[i]
                through += descriptor.packet.size_bytes
            self.dl_len -= dk - dh
            self._dl_head = dk
            if dk >= _COMPACT_AT and dk * 2 >= len(dl_desc):
                remaining = len(dl_desc) - dk
                dl_time[:remaining] = dl_time[dk : dk + remaining]
                del dl_desc[:dk]
                del dl_ideal[:dk]
                self._dl_head = 0
        head = INFINITY
        if self.bw_len:
            head = float(self._bw_time[self._bw_head])
        if self.dl_len:
            t = float(self._dl_time[self._dl_head])
            if t < head:
                head = t
        self.head_deadline = head
        return exits, through

    def flush(self) -> int:
        lost = self.bw_len + self.dl_len
        for descriptor in self._bw_desc[self._bw_head:]:
            descriptor.release()
        for descriptor in self._dl_desc[self._dl_head:]:
            descriptor.release()
        del self._bw_desc[:]
        del self._bw_ideal[:]
        self._bw_head = 0
        del self._dl_desc[:]
        del self._dl_ideal[:]
        self._dl_head = 0
        self.bw_len = 0
        self.dl_len = 0
        self.head_deadline = INFINITY
        return lost


_DELAY_LINES = {
    "scalar": ScalarDelayLine,
    "batched": BatchedDelayLine,
    "numpy": NumpyDelayLine,
}


def make_delay_line(kernel: str):
    """A fresh delay-line engine for one pipe."""
    try:
        factory = _DELAY_LINES[kernel]
    except KeyError:
        raise ValueError(
            f"unknown kernel {kernel!r}; valid kernels: {', '.join(KERNELS)}"
        ) from None
    return factory()
