"""The ModelNet core: pipes, scheduler, phases, multi-core emulation.

This package is the paper's primary contribution. The five phases
(Sec. 2.1) map to modules as:

* Create   — :mod:`repro.topology` (imported, not duplicated here)
* Distill  — :mod:`repro.core.distill`
* Assign   — :mod:`repro.core.assign`
* Bind     — :mod:`repro.core.bind`
* Run      — :mod:`repro.core.emulator` wiring
  :mod:`repro.core.node`, :mod:`repro.core.pipe`,
  :mod:`repro.core.scheduler`, :mod:`repro.core.pod`

plus the accuracy/scalability machinery of Sec. 4:
:mod:`repro.core.crosstraffic` (synthetic background traffic via pipe
parameter adjustment) and :mod:`repro.core.faults` (dynamic network
changes), with :mod:`repro.core.monitor` playing the role of the
kernel logging package.
"""

from repro.core.packet import PacketDescriptor
from repro.core.queues import DropTailQueue, REDQueue
from repro.core.pipe import Pipe
from repro.core.scheduler import PipeScheduler
from repro.core.distill import DistillationMode, DistillationResult, distill
from repro.core.assign import Assignment, greedy_k_clusters, assign_by_vn_groups
from repro.core.bind import Binding, bind_vns
from repro.core.emulator import Emulation, EmulationConfig, VirtualNode
from repro.core.phases import ExperimentPipeline
from repro.core.crosstraffic import CrossTrafficMatrix, CrossTrafficModel
from repro.core.faults import FaultApplier, FaultInjector, LinkPerturbation
from repro.core.monitor import EmulationMonitor, AccuracyReport
from repro.core.routing_emulation import DistanceVectorRouting
from repro.core.reassign import DynamicReassigner
from repro.core.tracelog import TraceLog

__all__ = [
    "PacketDescriptor",
    "DropTailQueue",
    "REDQueue",
    "Pipe",
    "PipeScheduler",
    "DistillationMode",
    "DistillationResult",
    "distill",
    "Assignment",
    "greedy_k_clusters",
    "assign_by_vn_groups",
    "Binding",
    "bind_vns",
    "Emulation",
    "EmulationConfig",
    "VirtualNode",
    "ExperimentPipeline",
    "CrossTrafficMatrix",
    "CrossTrafficModel",
    "FaultApplier",
    "FaultInjector",
    "LinkPerturbation",
    "EmulationMonitor",
    "AccuracyReport",
    "DistanceVectorRouting",
    "DynamicReassigner",
    "TraceLog",
]
