"""Queueing disciplines for pipe bandwidth queues.

Each pipe has an associated packet queue and queueing discipline;
"each pipe is FIFO by default" with drop-tail overflow, and RED is
available as in dummynet [18].
"""

from __future__ import annotations

import math
import random
from typing import Optional


class DropTailQueue:
    """FIFO drop-tail: admit while the backlog is below the limit."""

    def admit(self, backlog_pkts: int, limit_pkts: int, now: float, rng) -> bool:
        return backlog_pkts < limit_pkts

    def reset(self) -> None:
        """No state to reset."""

    def __repr__(self) -> str:
        return "<DropTail>"


class REDQueue:
    """Random Early Detection (Floyd/Jacobson gentle-free variant).

    Maintains an EWMA of the queue length; drops with probability
    ramping from 0 at ``min_th`` to ``max_p`` at ``max_th``, and
    always above ``max_th``. Thresholds are fractions of the pipe's
    queue limit so one discipline instance adapts to any pipe.
    """

    def __init__(
        self,
        min_th_frac: float = 0.25,
        max_th_frac: float = 0.75,
        max_p: float = 0.1,
        weight: float = 0.002,
    ):
        if not 0.0 < min_th_frac < max_th_frac <= 1.0:
            raise ValueError("need 0 < min_th < max_th <= 1")
        if not 0.0 < max_p <= 1.0:
            raise ValueError("max_p must be in (0, 1]")
        self.min_th_frac = min_th_frac
        self.max_th_frac = max_th_frac
        self.max_p = max_p
        self.weight = weight
        self.avg = 0.0
        self._count = 0  # packets since last drop (for drop spreading)
        self.early_drops = 0

    def reset(self) -> None:
        self.avg = 0.0
        self._count = 0

    def admit(self, backlog_pkts: int, limit_pkts: int, now: float, rng) -> bool:
        """RED admission: EWMA the queue, drop probabilistically
        between the thresholds, always above max_th or the limit."""
        self.avg += self.weight * (backlog_pkts - self.avg)
        min_th = self.min_th_frac * limit_pkts
        max_th = self.max_th_frac * limit_pkts
        if backlog_pkts >= limit_pkts:
            self._count = 0
            return False
        if self.avg < min_th:
            self._count = 0
            return True
        if self.avg >= max_th:
            self._count = 0
            self.early_drops += 1
            return False
        base_p = self.max_p * (self.avg - min_th) / (max_th - min_th)
        self._count += 1
        denominator = max(1e-9, 1.0 - self._count * base_p)
        probability = min(1.0, base_p / denominator)
        if rng is not None and rng.random() < probability:
            self._count = 0
            self.early_drops += 1
            return False
        return True

    def __repr__(self) -> str:
        return f"<RED avg={self.avg:.1f}>"
