"""The Run phase: wiring cores, edge hosts, VN stacks, and routing.

:class:`Emulation` is the public entry point for running traffic
through a distilled topology. It owns:

* two pipes per topology link (one per direction), stamped with
  owners from the Assignment;
* one :class:`~repro.core.node.CoreNode` per core, with physical NIC
  links when the physical layer is modeled;
* one :class:`EdgeHost` per physical edge node from the Binding, with
  uplink/downlink wires and (optionally) an edge CPU;
* one :class:`VirtualNode` (and :class:`~repro.net.sockets.NetStack`)
  per VN.

Two fidelity regimes are supported via :class:`EmulationConfig`:

* **full** (default) — tick-quantized scheduling, core CPU and NIC
  models, physical cluster links: reproduces the paper's capacity
  and accuracy behaviour, including physical drops under overload;
* **reference** (``EmulationConfig.reference()``) — exact event
  times, infinite hardware: the stand-in for the paper's ns2
  validation runs, and the cheap mode for application-level studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.assign import Assignment, greedy_k_clusters, single_core
from repro.core.bind import Binding, bind_vns, bind_vns_locality
from repro.core.kernel import DEFAULT_KERNEL, KERNELS, require_kernel
from repro.core.monitor import EmulationMonitor
from repro.core.node import CoreNode
from repro.core.pipe import Pipe
from repro.core.pod import PipeOwnershipDirectory
from repro.engine.randomness import RngRegistry
from repro.engine.simulator import Simulator
from repro.hardware.calibration import (
    CoreSpec,
    DEFAULT_CORE_SPEC,
    DEFAULT_EDGE_SPEC,
    EdgeHostSpec,
)
from repro.hardware.cpu import EdgeCpu
from repro.hardware.links import PhysicalLink
from repro.net.packet import Packet
from repro.net.sockets import NetStack
from repro.obs import MetricsRegistry, NULL_REGISTRY, RunReport, build_report
from repro.net.tcp import TcpParams
from repro.routing.service import CachedRouting, DynamicRouting
from repro.topology.graph import Topology, TopologyError


@dataclass
class EmulationConfig:
    """Knobs for one emulation run."""

    num_cores: int = 1
    num_hosts: int = 1
    tick_s: float = 1e-4
    debt_handling: bool = False
    payload_caching: bool = True
    model_physical: bool = True
    model_edge_cpu: bool = False
    binding_strategy: str = "contiguous"
    routing_weight: str = "latency"
    core_spec: CoreSpec = field(default_factory=lambda: DEFAULT_CORE_SPEC)
    edge_spec: EdgeHostSpec = field(default_factory=lambda: DEFAULT_EDGE_SPEC)
    tcp_params: Optional[TcpParams] = None
    seed: int = 0
    #: Execution backend: ``"serial"`` runs every event domain in this
    #: process under the epoch barrier; ``"multiprocess"`` runs one
    #: worker process per domain group (see repro.engine.parallel).
    backend: str = "serial"
    #: Number of event domains. 0 means "pick the backend default":
    #: 1 for serial (the classic single-kernel engine, byte-identical
    #: to the pre-partitioning code path) and ``num_cores`` for
    #: multiprocess.
    num_domains: int = 0
    #: Worker processes for the multiprocess backend. 0 means one per
    #: domain. Digests are worker-count invariant by construction.
    workers: int = 0
    #: Hot-core kernel (see :mod:`repro.core.kernel`): ``"scalar"``
    #: reference, ``"batched"`` columnar (default), or ``"numpy"``
    #: vectorized. Selects both each pipe's delay-line engine and the
    #: event-domain dispatch loop; every kernel dispatches a
    #: digest-identical event stream.
    kernel: str = DEFAULT_KERNEL

    #: Strategies understood by :func:`repro.core.bind.bind_vns`.
    BINDING_STRATEGIES = ("contiguous", "round_robin")
    ROUTING_WEIGHTS = ("latency", "hops", "cost")
    BACKENDS = ("serial", "multiprocess")
    KERNELS = KERNELS

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject configurations that cannot run. Called on
        construction; call again after mutating fields in place."""
        if self.tick_s < 0:
            raise ValueError(f"tick_s must be >= 0, got {self.tick_s}")
        if self.num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {self.num_cores}")
        if self.num_hosts < 1:
            raise ValueError(f"num_hosts must be >= 1, got {self.num_hosts}")
        if self.binding_strategy not in self.BINDING_STRATEGIES:
            raise ValueError(
                f"unknown binding_strategy {self.binding_strategy!r}; "
                f"valid: {', '.join(self.BINDING_STRATEGIES)}"
            )
        if not callable(self.routing_weight) and (
            self.routing_weight not in self.ROUTING_WEIGHTS
        ):
            raise ValueError(
                f"unknown routing_weight {self.routing_weight!r}; "
                f"valid: {', '.join(self.ROUTING_WEIGHTS)} or a callable"
            )
        if self.backend not in self.BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"valid: {', '.join(self.BACKENDS)}"
            )
        if self.num_domains < 0:
            raise ValueError(
                f"num_domains must be >= 0, got {self.num_domains}"
            )
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        require_kernel(self.kernel)
        if (self.backend == "multiprocess" or self.num_domains > 1) and (
            not self.model_physical
        ):
            raise ValueError(
                "partitioned execution requires model_physical=True: "
                "exact mode tunnels descriptors with zero latency, so "
                "the epoch synchronizer would have no lookahead"
            )

    def resolved_domains(self) -> int:
        """The actual domain count after applying backend defaults."""
        if self.num_domains > 0:
            return min(self.num_domains, self.num_cores)
        if self.backend == "multiprocess":
            return self.num_cores
        return 1

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        return tuple(f.name for f in fields(cls))

    @classmethod
    def reference(cls, **overrides) -> "EmulationConfig":
        """Exact-time, infinite-hardware configuration (the ns2
        stand-in)."""
        config = cls(
            tick_s=0.0,
            model_physical=False,
            model_edge_cpu=False,
        )
        return replace(config, **overrides)

    @property
    def exact(self) -> bool:
        return not self.model_physical


class VirtualNode:
    """One VN: a unique IP, a topology attachment point, a host, and
    a network stack."""

    __slots__ = ("vn_id", "node_id", "host", "stack")

    def __init__(self, vn_id: int, node_id: int, host, stack: NetStack):
        self.vn_id = vn_id
        self.node_id = node_id
        self.host = host
        self.stack = stack

    @property
    def ip(self) -> str:
        return self.stack.ip

    def udp_socket(self, *args, **kwargs):
        return self.stack.udp_socket(*args, **kwargs)

    def tcp_listen(self, *args, **kwargs):
        return self.stack.tcp_listen(*args, **kwargs)

    def tcp_connect(self, *args, **kwargs):
        return self.stack.tcp_connect(*args, **kwargs)

    def __repr__(self) -> str:
        return f"<VN {self.vn_id} node={self.node_id}>"


class EdgeHost:
    """A physical edge node hosting one or more VNs."""

    def __init__(
        self,
        sim: Simulator,
        index: int,
        spec: EdgeHostSpec,
        core: CoreNode,
        emulation: "Emulation",
        model_cpu: bool,
    ):
        self.sim = sim
        self.index = index
        self.spec = spec
        self.core = core
        self.emulation = emulation
        self.uplink = PhysicalLink(
            sim,
            spec.nic_bps,
            spec.link_latency_s,
            spec.nic_queue_slots,
            framing_bytes=spec.framing_bytes,
            name=f"edge{index}-up",
        )
        self.downlink = PhysicalLink(
            sim,
            spec.nic_bps,
            spec.link_latency_s,
            spec.nic_queue_slots,
            framing_bytes=spec.framing_bytes,
            name=f"edge{index}-down",
        )
        self.cpu: Optional[EdgeCpu] = EdgeCpu(sim, spec) if model_cpu else None
        self.vns: List[VirtualNode] = []

    def send_from_vn(self, packet: Packet) -> None:
        """A resident VN's stack emitted a packet."""
        if self.cpu is not None:
            self.cpu.run_seconds(
                ("vn", packet.src),
                self.spec.per_packet_stack_s,
                self._uplink_send,
                packet,
            )
        else:
            self._uplink_send(packet)

    def _uplink_send(self, packet: Packet) -> None:
        accepted = self.uplink.send(
            packet.size_bytes, self._reach_core, packet
        )
        if not accepted:
            self.emulation.monitor.uplink_drop()

    def _reach_core(self, packet: Packet) -> None:
        if self.core.ingress_link is not None:
            accepted = self.core.ingress_link.send(
                packet.size_bytes, self.core.ingress_packet, packet
            )
            if not accepted:
                self.emulation.monitor.uplink_drop()
        else:
            self.core.ingress_packet(packet)

    def receive_from_switch(self, packet: Packet) -> None:
        """A packet exiting the emulated network arrives on our wire."""
        self.downlink.send(packet.size_bytes, self._to_stack, packet)

    def _to_stack(self, packet: Packet) -> None:
        if self.cpu is not None:
            self.cpu.run_seconds(
                ("vn", packet.dst),
                self.spec.per_packet_stack_s,
                self.emulation.deliver_to_vn,
                packet,
            )
        else:
            self.emulation.deliver_to_vn(packet)

    def __repr__(self) -> str:
        return f"<EdgeHost {self.index} vns={len(self.vns)} core={self.core.index}>"


class Emulation:
    """A running ModelNet instance over a distilled topology."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        config: Optional[EmulationConfig] = None,
        assignment: Optional[Assignment] = None,
        binding: Optional[Binding] = None,
        routing=None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.sim = sim
        self.topology = topology
        self.config = config or EmulationConfig()
        self.rng = RngRegistry(self.config.seed)

        # --- event domains -------------------------------------------------
        # A partitioned simulator exposes ``domains``; the classic
        # Simulator is itself the single domain. Components are
        # constructed against *their* domain, so their schedule/post
        # calls land on the right heap without any indirection.
        domains = getattr(sim, "domains", None)
        self.domains = list(domains) if domains is not None else [sim]
        self.num_domains = len(self.domains)
        self.router = getattr(sim, "router", None)
        if self.num_domains > 1 and not self.config.model_physical:
            raise ValueError(
                "partitioned execution requires model_physical=True "
                "(exact-mode tunnels have zero latency, hence zero "
                "lookahead)"
            )
        #: Per-domain pipe-loss streams. Domain 0 keeps the historical
        #: "pipe-loss" stream so single-domain digests are unchanged;
        #: extra domains draw from independently derived streams so
        #: each domain's draw sequence is self-contained (the
        #: determinism requirement for partitioned and multiprocess
        #: runs, where dispatch interleaving across domains varies).
        self.loss_rng = self.rng.stream("pipe-loss")
        self._loss_rngs = [self.loss_rng] + [
            self.rng.stream(f"pipe-loss-d{d}")
            for d in range(1, self.num_domains)
        ]
        self.monitor = EmulationMonitor()
        #: Observability registry; the shared null registry (every
        #: operation a no-op, no hot-path timers installed) unless the
        #: caller opts in with a live MetricsRegistry.
        self.obs: MetricsRegistry = registry if registry is not None else NULL_REGISTRY
        self._route_timer = None

        # --- pipes: one per link direction --------------------------------
        self.pipes: Dict[Tuple[int, int], Pipe] = {}
        pipe_id = 0
        for link in sorted(topology.links.values(), key=lambda l: l.id):
            for direction, (src, dst) in enumerate(
                ((link.a, link.b), (link.b, link.a))
            ):
                pipe = Pipe(
                    pipe_id,
                    link.bandwidth_bps,
                    link.latency_s,
                    link.loss_rate,
                    link.queue_limit,
                    qdisc=self._make_qdisc(link),
                    link_id=link.id,
                    src_node=src,
                    dst_node=dst,
                    kernel=self.config.kernel,
                )
                pipe.up = link.up
                self.pipes[(link.id, direction)] = pipe
                pipe_id += 1

        # --- assignment & POD ----------------------------------------------
        if assignment is None:
            if self.config.num_cores == 1:
                assignment = single_core(topology)
            else:
                assignment = greedy_k_clusters(
                    topology, self.config.num_cores, self.rng.stream("assign")
                )
        if assignment.num_cores != self.config.num_cores:
            self.config.num_cores = assignment.num_cores
        self.assignment = assignment
        self.pod = PipeOwnershipDirectory(assignment)
        self.pod.install(self.pipes.values())
        #: Pipe id -> pipe, for rehydrating tunneled descriptors that
        #: crossed a process boundary (repro.engine.parallel).
        self._pipes_by_id: Dict[int, Pipe] = {
            pipe.id: pipe for pipe in self.pipes.values()
        }

        # --- core -> domain map --------------------------------------------
        if self.num_domains > self.config.num_cores:
            raise ValueError(
                f"{self.num_domains} event domains but only "
                f"{self.config.num_cores} cores; domains partition cores"
            )
        self._domain_of_core: List[int] = [
            index % self.num_domains for index in range(self.config.num_cores)
        ]
        if self.router is not None:
            self.router.bind(self)

        # --- routing ---------------------------------------------------------
        # Default: the "perfect routing protocol" (instant shortest
        # paths). Pass an emulated protocol (e.g.
        # core.routing_emulation.DistanceVectorRouting) to capture
        # convergence dynamics instead.
        if routing is None:
            routing = DynamicRouting(
                CachedRouting(topology, self.config.routing_weight)
            )
        self.routing = routing
        # Route memo for the core forwarding path, keyed (src, dst)
        # with a generation stamp: invalidate() bumps the generation
        # (O(1)) instead of clearing the table, and stale entries are
        # simply overwritten on their next lookup.
        self._route_gen = 0
        self._route_pipes: Dict[
            Tuple[int, int], Tuple[int, Optional[Tuple[Pipe, ...]]]
        ] = {}
        self.routing.on_change(self._bump_route_generation)

        # --- cores -----------------------------------------------------------
        self.cores: List[CoreNode] = []
        for index in range(self.config.num_cores):
            core_sim = self.domains[self._domain_of_core[index]]
            core = CoreNode(
                core_sim,
                index,
                self.config.core_spec,
                self,
                exact=self.config.exact,
                debt_handling=self.config.debt_handling,
                domain_id=self._domain_of_core[index],
            )
            if self.config.model_physical:
                core.ingress_link = PhysicalLink(
                    core_sim,
                    self.config.core_spec.nic_bps,
                    self.config.core_spec.switch_latency_s,
                    self.config.core_spec.switch_queue_slots,
                    name=f"core{index}-in",
                )
                core.egress_link = PhysicalLink(
                    core_sim,
                    self.config.core_spec.nic_bps,
                    self.config.core_spec.switch_latency_s,
                    self.config.core_spec.switch_queue_slots,
                    name=f"core{index}-out",
                )
            self.cores.append(core)

        # --- binding, hosts, VNs ----------------------------------------------
        if binding is None:
            if self.num_domains > 1:
                # Partitioned default: localize each client node's edge
                # host on the core that owns its access link. The
                # host-count default (num_hosts=1) would pile every VN
                # stack, edge wire, and ingress interrupt onto one
                # domain — see bind_vns_locality's docstring.
                binding = bind_vns_locality(topology, self.assignment)
                self.config.num_hosts = binding.num_hosts
            else:
                binding = bind_vns(
                    topology,
                    self.config.num_hosts,
                    self.config.num_cores,
                    self.config.binding_strategy,
                )
        self.binding = binding
        #: A host lives in the domain of the core it attaches to, so
        #: its uplink/downlink wires and its VNs' stacks all share one
        #: clock with that core's ingress path.
        self._domain_of_host: List[int] = [
            self._domain_of_core[binding.host_to_core[host_index]]
            for host_index in range(binding.num_hosts)
        ]
        self.hosts: List[EdgeHost] = [
            EdgeHost(
                self.domains[self._domain_of_host[host_index]],
                host_index,
                self.config.edge_spec,
                self.cores[binding.host_to_core[host_index]],
                self,
                self.config.model_edge_cpu,
            )
            for host_index in range(binding.num_hosts)
        ]

        self.vns: List[VirtualNode] = []
        self._node_of_vn: List[int] = list(binding.vn_nodes)
        self._vn_of_node: Dict[int, int] = {}
        for vn_id, node_id in enumerate(binding.vn_nodes):
            if node_id not in topology.nodes:
                raise TopologyError(f"binding references unknown node {node_id}")
            host = self.hosts[binding.vn_to_host[vn_id]]
            stack = NetStack(host.sim, vn_id, tcp_params=self.config.tcp_params)
            vn = VirtualNode(vn_id, node_id, host, stack)
            if self.config.model_physical:
                stack.attach(host.send_from_vn)
            else:
                stack.attach(self._direct_transmit)
            host.vns.append(vn)
            self.vns.append(vn)
            self._vn_of_node[node_id] = vn_id
            if host.cpu is not None:
                host.cpu.register(("vn", vn_id))

        if self.obs.enabled:
            self._install_timing_hooks()

        #: The sanctioned applier for a declarative fault plan, or
        #: None. Installed via :meth:`install_fault_plan` before the
        #: run starts.
        self.fault_applier = None

        # --- per-pair lookahead -------------------------------------------
        # Derived from the actual cross-domain hop structure (pipe
        # latencies + the channel floor), so the epoch synchronizer
        # can grant windows per destination domain instead of the
        # single global channel floor.
        if self.num_domains > 1 and hasattr(sim, "install_lookahead"):
            sim.install_lookahead(self._derive_lookahead_matrix())

    def install_fault_plan(self, plan):
        """Install a declarative :class:`repro.faults.FaultPlan`.

        Validates the plan against the topology, re-derives the
        lookahead matrix from each pipe's *minimum* latency over the
        plan's entire timeline (a matrix derived from bind-time
        latencies would break causality the moment the timeline
        lowers a cross-domain latency), and arms the single
        sanctioned :class:`repro.core.faults.FaultApplier`. A plan
        that takes a cross-domain latency below the lookahead floor
        is refused with :class:`repro.faults.FaultPlanError` — a
        typed error at install time, not a causality violation
        mid-run. Must be called before the run starts.
        """
        from repro.core.faults import FaultApplier
        from repro.faults import FaultPlanError

        if self.fault_applier is not None:
            raise FaultPlanError("a fault plan is already installed")
        plan.validate(self.topology)
        if self.num_domains > 1 and hasattr(self.sim, "install_lookahead"):
            minimums = plan.min_latency(self.topology)
            if minimums:
                self.sim.install_lookahead(
                    self._derive_lookahead_matrix(latency_min=minimums)
                )
        self.fault_applier = FaultApplier(self, plan).install()
        return self.fault_applier

    def _derive_lookahead_matrix(self, latency_min=None):
        """The per-domain-pair lookahead matrix for this topology,
        assignment, and binding.

        Every cross-domain message the runtime can emit is one of four
        shapes, and each contributes a lower bound on how far ahead of
        the sender's clock it can be timestamped (``floor`` is the
        channel's minimum cross-core latency):

        R1 — a descriptor admitted to pipe P whose successor pipe is
            foreign: announced at admission for P's *exit*, so it is
            at least ``P.latency_s + floor`` ahead.
        R2 — a descriptor exiting its last pipe P to a foreign host:
            same bound, ``P.latency_s + floor``.
        R3 — a packet admitted at its entry core whose *first* pipe is
            foreign: tunneled immediately, only ``floor`` ahead.
        R4 — co-located VNs whose empty route delivers directly from
            the sender's entry domain to the receiver's host domain:
            ``floor`` ahead.

        The matrix keeps the minimum bound per (src, dst) domain pair;
        pairs with no contributing shape stay unbounded (infinite
        lookahead), and :class:`LookaheadMatrix` min-plus-closes the
        result so relayed deliveries are covered too. Entry domain
        and host domain coincide by construction (a host lives in its
        core's domain), which is what lets R3/R4 key off the host map.

        ``latency_min`` (link id -> seconds) overrides a pipe's
        bind-time latency with the minimum its fault timeline can
        reach, so the granted windows stay safe for the whole run; a
        timeline minimum below the floor on a pipe that contributes a
        cross-domain bound is refused with a typed
        :class:`~repro.faults.FaultPlanError`.
        """
        from repro.engine.sync import LookaheadMatrix
        from repro.hardware.calibration import min_cross_core_latency

        floor = min_cross_core_latency(self.config.core_spec)
        # Tick-aligned send times let the synchronizer round grants up
        # to tick boundaries — valid only when every send happens in a
        # tick-collected wake, which debt handling and exact mode break.
        tick_s = (
            0.0
            if (self.config.debt_handling or self.config.exact)
            else self.config.tick_s
        )
        pairs: Dict[Tuple[int, int], float] = {}

        def offer(src: int, dst: int, bound: float) -> None:
            if src == dst:
                return
            prev = pairs.get((src, dst))
            if prev is None or bound < prev:
                pairs[(src, dst)] = bound

        domain_of_pipe = {
            pipe.id: self._domain_of_core[pipe.owner]
            for pipe in self.pipes.values()
        }
        pipes_from: Dict[int, List[Pipe]] = {}
        for pipe in self.pipes.values():
            pipes_from.setdefault(pipe.src_node, []).append(pipe)
        host_domains_of_node: Dict[int, set] = {}
        for vn_id, node_id in enumerate(self._node_of_vn):
            host_domains_of_node.setdefault(node_id, set()).add(
                self.domain_of_vn(vn_id)
            )

        overrides = latency_min or {}

        def checked(pipe: Pipe, src: int, dst: int) -> float:
            lat = pipe.latency_s
            timeline_min = overrides.get(pipe.link_id)
            if timeline_min is not None and timeline_min < lat:
                lat = timeline_min
                if src != dst and lat < floor:
                    from repro.faults import FaultPlanError

                    raise FaultPlanError(
                        f"fault timeline lowers link {pipe.link_id} latency "
                        f"to {lat:.6g}s, below the cross-domain lookahead "
                        f"floor {floor:.6g}s (domains {src}->{dst}); the "
                        f"epoch synchronizer could not grant safe windows"
                    )
            return lat

        for pipe in self.pipes.values():
            src_domain = domain_of_pipe[pipe.id]
            for next_pipe in pipes_from.get(pipe.dst_node, ()):  # R1
                dst_domain = domain_of_pipe[next_pipe.id]
                offer(
                    src_domain,
                    dst_domain,
                    checked(pipe, src_domain, dst_domain) + floor,
                )
            for host_domain in host_domains_of_node.get(pipe.dst_node, ()):
                offer(  # R2
                    src_domain,
                    host_domain,
                    checked(pipe, src_domain, host_domain) + floor,
                )
        for vn_id, node_id in enumerate(self._node_of_vn):
            entry_domain = self.domain_of_vn(vn_id)
            for first_pipe in pipes_from.get(node_id, ()):  # R3
                offer(entry_domain, domain_of_pipe[first_pipe.id], floor)
            for host_domain in host_domains_of_node.get(node_id, ()):
                offer(entry_domain, host_domain, floor)  # R4

        return LookaheadMatrix(
            self.num_domains, pairs, floor=floor, tick_s=tick_s
        )

    def _install_timing_hooks(self) -> None:
        """Arm the hot-path wall-clock timers (live registry only):
        per-arrival pipe enqueue, per-wakeup scheduler collect, and
        route-cache misses."""
        self._route_timer = self.obs.histogram("route.lookup_s")
        enqueue = self.obs.histogram("pipe.enqueue_s")
        for pipe in self.pipes.values():
            pipe._timer = enqueue
        for core in self.cores:
            core.scheduler.collect_timer = self.obs.histogram(
                "sched.collect_s", core=core.index
            )
            core.scheduler.batch_hist = self.obs.histogram(
                "sched.batch_size", core=core.index
            )

    # ------------------------------------------------------------------
    # Fabric interface
    # ------------------------------------------------------------------

    @staticmethod
    def _make_qdisc(link):
        """Per-link queueing discipline: FIFO drop-tail by default;
        ``qdisc="red"`` in the link attrs selects RED, with optional
        red_min_th/red_max_th/red_max_p overrides (dummynet-style)."""
        from repro.core.queues import DropTailQueue, REDQueue

        if link.attrs.get("qdisc") == "red":
            return REDQueue(
                min_th_frac=link.attrs.get("red_min_th", 0.25),
                max_th_frac=link.attrs.get("red_max_th", 0.75),
                max_p=link.attrs.get("red_max_p", 0.1),
            )
        return DropTailQueue()

    def _direct_transmit(self, packet: Packet) -> None:
        """Reference mode: packets enter the entry core instantly.

        Reference mode cannot be partitioned (build() raises when
        ``num_domains > 1`` without ``model_physical``), so this core
        is always on our own — the only — event domain.
        """
        core = self.cores[self.binding.core_of_vn(packet.src)]
        core.ingress_packet(packet)  # repro: allow-unrouted-peer-call

    def _bump_route_generation(self) -> None:
        """Invalidate every memoized route without touching the table."""
        self._route_gen += 1

    def lookup_pipes(self, src_vn: int, dst_vn: int) -> Optional[Tuple[Pipe, ...]]:
        """The core's route lookup: VN pair to ordered pipe list."""
        key = (src_vn, dst_vn)
        generation = self._route_gen
        entry = self._route_pipes.get(key)
        if entry is not None and entry[0] == generation:
            return entry[1]
        timer = self._route_timer
        t0 = perf_counter() if timer is not None else 0.0  # repro: allow-wallclock
        route = self.routing.route(
            self._node_of_vn[src_vn], self._node_of_vn[dst_vn]
        )
        if route is None:
            pipes = None
        else:
            pipes = tuple(self._pipe_for_hop(hop) for hop in route)
        self._route_pipes[key] = (generation, pipes)
        if timer is not None:
            timer.observe(perf_counter() - t0)  # repro: allow-wallclock
        return pipes

    def _pipe_for_hop(self, hop) -> Pipe:
        direction = 0 if hop.src == hop.link.a else 1
        return self.pipes[(hop.link.id, direction)]

    def host_of_vn(self, vn_id: int) -> EdgeHost:
        return self.hosts[self.binding.vn_to_host[vn_id]]

    def domain_of_vn(self, vn_id: int) -> int:
        """Event domain a VN's stack is clocked by (its host's)."""
        return self._domain_of_host[self.binding.vn_to_host[vn_id]]

    def sim_of_vn(self, vn_id: int):
        """The domain kernel to schedule a VN's app-level events on.

        In partitioned mode, app callbacks that touch a VN's stack
        *must* run on this domain — scheduling them on another
        domain's clock would dispatch them at a skewed time (or, under
        the multiprocess backend, in a different process entirely).
        """
        return self.domains[self.domain_of_vn(vn_id)]

    def deliver_to_vn(self, packet: Packet) -> None:
        self.vns[packet.dst].stack.deliver(packet)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    def vn(self, vn_id: int) -> VirtualNode:
        return self.vns[vn_id]

    @property
    def num_vns(self) -> int:
        return len(self.vns)

    def pipes_of_link(self, link_id: int) -> Tuple[Pipe, Pipe]:
        """(a->b, b->a) pipes of a topology link."""
        return self.pipes[(link_id, 0)], self.pipes[(link_id, 1)]

    def set_link_params(self, link_id: int, **params) -> None:
        """Adjust both directions of a link's pipes at runtime.

        Unknown parameter names raise :class:`ValueError` before
        either pipe is touched."""
        unknown = set(params) - set(Pipe.PARAM_NAMES)
        if unknown:
            raise ValueError(
                f"unknown link parameter(s) {sorted(unknown)}; "
                f"valid knobs: {', '.join(Pipe.PARAM_NAMES)}"
            )
        for pipe in self.pipes_of_link(link_id):
            pipe.set_params(**params)

    def set_link_up(self, link_id: int, up: bool) -> None:
        """Fail or recover a link: pipes stop accepting packets and
        routes are recomputed instantaneously (the "perfect routing
        protocol" assumption)."""
        link = self.topology.links[link_id]
        for pipe in self.pipes_of_link(link_id):
            pipe.up = up
            if not up:
                pipe.flush()
        if up:
            self.routing.link_recovered(link)
        else:
            self.routing.link_failed(link)

    def virtual_drops(self) -> int:
        return sum(
            pipe.drops_overflow + pipe.drops_random + pipe.drops_down
            for pipe in self.pipes.values()
        )

    def accuracy_report(self):
        return self.monitor.report(virtual_drops=self.virtual_drops())

    def run_report(self, name: str = "", wall_time_s: float = 0.0) -> RunReport:
        """Collect every subsystem's statistics into a
        :class:`~repro.obs.RunReport` manifest."""
        return build_report(self, name=name, wall_time_s=wall_time_s)

    def __repr__(self) -> str:
        return (
            f"<Emulation vns={self.num_vns} pipes={len(self.pipes)} "
            f"cores={len(self.cores)} hosts={len(self.hosts)}>"
        )

