"""The five-phase pipeline: Create, Distill, Assign, Bind, Run.

:class:`ExperimentPipeline` is a small builder that walks a topology
through the paper's phases (Fig. 2) and produces a running
:class:`~repro.core.emulator.Emulation`:

>>> emulation = (
...     ExperimentPipeline(sim)
...     .create(ring_topology())
...     .distill(DistillationMode.WALK_IN, walk_in=1)
...     .assign(num_cores=2)
...     .bind(num_hosts=4)
...     .run()
... )
"""

from __future__ import annotations

from typing import Optional

from repro.core.assign import Assignment, greedy_k_clusters, single_core
from repro.core.bind import Binding, bind_vns, bind_vns_locality
from repro.core.distill import DistillationMode, DistillationResult, distill
from repro.core.emulator import Emulation, EmulationConfig
from repro.engine.randomness import RngRegistry
from repro.engine.simulator import Simulator
from repro.topology.gml import parse_gml
from repro.topology.graph import Topology, TopologyError


class ExperimentPipeline:
    """Fluent Create -> Distill -> Assign -> Bind -> Run builder."""

    def __init__(self, sim: Simulator, seed: int = 0):
        self.sim = sim
        self.seed = seed
        self.target: Optional[Topology] = None
        self.distillation: Optional[DistillationResult] = None
        self.assignment: Optional[Assignment] = None
        self.binding: Optional[Binding] = None
        self._num_cores = 1
        self._num_hosts = 1
        self._binding_strategy = "contiguous"
        self._binding_explicit = False

    # -- Create -----------------------------------------------------------

    def create(self, topology: Topology) -> "ExperimentPipeline":
        """Install the target topology (from any generator/source)."""
        topology.validate()
        if not topology.clients():
            raise TopologyError("target topology has no client (VN) nodes")
        self.target = topology
        return self

    def create_gml(self, gml_text: str) -> "ExperimentPipeline":
        """Install a target topology from GML text."""
        return self.create(parse_gml(gml_text))

    # -- Distill ---------------------------------------------------------

    def distill(
        self,
        mode: DistillationMode = DistillationMode.HOP_BY_HOP,
        walk_in: int = 1,
        walk_out: int = 0,
    ) -> "ExperimentPipeline":
        """Distill the target topology (Sec. 4.1 modes)."""
        if self.target is None:
            raise TopologyError("Create phase must run before Distill")
        self.distillation = distill(
            self.target, mode, walk_in=walk_in, walk_out=walk_out
        )
        return self

    @property
    def distilled(self) -> Topology:
        if self.distillation is None:
            raise TopologyError("Distill phase has not run")
        return self.distillation.topology

    # -- Assign ------------------------------------------------------------

    def assign(
        self,
        num_cores: int = 1,
        assignment: Optional[Assignment] = None,
    ) -> "ExperimentPipeline":
        """Partition the distilled pipes across cores."""
        if self.distillation is None:
            self.distill()  # default: pure hop-by-hop
        if assignment is not None:
            self.assignment = assignment
            self._num_cores = assignment.num_cores
            return self
        self._num_cores = num_cores
        if num_cores == 1:
            self.assignment = single_core(self.distilled)
        else:
            self.assignment = greedy_k_clusters(
                self.distilled, num_cores, RngRegistry(self.seed).stream("assign")
            )
        return self

    # -- Bind ----------------------------------------------------------------

    def bind(
        self,
        num_hosts: int = 1,
        strategy: str = "contiguous",
        binding: Optional[Binding] = None,
    ) -> "ExperimentPipeline":
        """Bind VNs to edge hosts and hosts to cores."""
        if self.assignment is None:
            self.assign()
        if binding is not None:
            self.binding = binding
            self._binding_explicit = True
            return self
        self._num_hosts = num_hosts
        self._binding_strategy = strategy
        self._binding_explicit = num_hosts != 1
        self.binding = bind_vns(
            self.distilled, num_hosts, self._num_cores, strategy
        )
        return self

    # -- Run -------------------------------------------------------------------

    def run(
        self,
        config: Optional[EmulationConfig] = None,
        registry=None,
    ) -> Emulation:
        """Build the emulation (traffic starts when the caller runs
        the simulator). Pass a live
        :class:`~repro.obs.MetricsRegistry` to arm observability."""
        if self.binding is None:
            self.bind()
        if config is None:
            config = EmulationConfig()
        config.num_cores = self._num_cores
        # The bind phase runs before the domain count is known, so the
        # partitioned-execution default (locality binding — balanced
        # per-domain load, pipe-latency lookahead on every crossing)
        # is applied here, once the config says how many domains the
        # run will use. An explicit bind() choice always wins.
        if not self._binding_explicit and config.resolved_domains() > 1:
            self.binding = bind_vns_locality(self.distilled, self.assignment)
        config.num_hosts = self.binding.num_hosts
        config.seed = self.seed
        config.validate()
        return Emulation(
            self.sim,
            self.distilled,
            config,
            assignment=self.assignment,
            binding=self.binding,
            registry=registry,
        )
