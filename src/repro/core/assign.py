"""Assignment: partitioning the distilled topology across core nodes.

The paper uses a greedy k-clusters assignment: for k cores, randomly
select k nodes of the distilled topology as seeds, then greedily
select links from each cluster's current connected component in a
round-robin fashion (Sec. 2.1). The ideal assignment — minimizing
cross-core descriptor traffic under the offered load — is
NP-complete; this heuristic keeps clusters connected so most
consecutive pipes on a route share a core.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set

from repro.topology.graph import Link, Topology, TopologyError


class Assignment:
    """A mapping of topology links (and hence pipes) to core indices.

    Construction validates its inputs: a silently mis-partitioned
    assignment surfaces later as unroutable packets or a core domain
    with no work, which is far harder to diagnose than a
    :class:`TopologyError` at the call site.

    * every core index must lie in ``range(num_cores)``;
    * every core must own at least one link (pass
      ``allow_empty_cores=True`` for deliberately lopsided
      experiments);
    * when ``topology`` is supplied, every assigned link id must
      exist in it.
    """

    def __init__(
        self,
        num_cores: int,
        link_to_core: Dict[int, int],
        topology: Optional[Topology] = None,
        allow_empty_cores: bool = False,
    ):
        if num_cores < 1:
            raise TopologyError("need at least one core")
        populated = set()
        for link_id, core in link_to_core.items():
            if not isinstance(core, int) or not 0 <= core < num_cores:
                raise TopologyError(
                    f"link {link_id} assigned to invalid core {core!r} "
                    f"(valid cores: 0..{num_cores - 1})"
                )
            populated.add(core)
        if topology is not None:
            unknown = sorted(
                link_id
                for link_id in link_to_core
                if link_id not in topology.links
            )
            if unknown:
                raise TopologyError(
                    f"assignment references link id(s) {unknown} absent "
                    f"from topology {topology.name!r}"
                )
        if link_to_core and not allow_empty_cores:
            empty = sorted(set(range(num_cores)) - populated)
            if empty:
                raise TopologyError(
                    f"core(s) {empty} own no links; a partitioned engine "
                    f"would idle those domains — pass "
                    f"allow_empty_cores=True if this is intentional"
                )
        self.num_cores = num_cores
        self.link_to_core = dict(link_to_core)

    def core_of(self, link_id: int) -> int:
        return self.link_to_core[link_id]

    def links_of_core(self, core: int) -> List[int]:
        return sorted(
            link_id
            for link_id, owner in self.link_to_core.items()
            if owner == core
        )

    def load_balance(self) -> List[int]:
        """Links per core (a crude emulation-load proxy)."""
        counts = [0] * self.num_cores
        for core in self.link_to_core.values():
            counts[core] += 1
        return counts

    def __repr__(self) -> str:
        return f"<Assignment cores={self.num_cores} balance={self.load_balance()}>"


def single_core(topology: Topology) -> Assignment:
    """Everything on core 0."""
    return Assignment(
        1, {link_id: 0 for link_id in topology.links}, topology=topology
    )


def greedy_k_clusters(
    topology: Topology,
    num_cores: int,
    rng: random.Random,
) -> Assignment:
    """The paper's greedy k-clusters heuristic."""
    if num_cores < 1:
        raise TopologyError("need at least one core")
    if num_cores == 1:
        return single_core(topology)
    node_ids = sorted(topology.nodes)
    if len(node_ids) < num_cores:
        raise TopologyError(
            f"{num_cores} cores but only {len(node_ids)} topology nodes"
        )
    seeds = rng.sample(node_ids, num_cores)
    cluster_nodes: List[Set[int]] = [{seed} for seed in seeds]
    link_to_core: Dict[int, int] = {}
    unassigned: Set[int] = set(topology.links)

    def adjacent_unassigned(cluster: Set[int]) -> Optional[Link]:
        # Deterministic scan order for reproducibility.
        for node_id in sorted(cluster):
            for link in topology.links_of(node_id):
                if link.id in unassigned:
                    return link
        return None

    while unassigned:
        for core_index in range(num_cores):
            if not unassigned:
                break
            link = adjacent_unassigned(cluster_nodes[core_index])
            if link is None:
                # This cluster's component is exhausted: re-seed it on
                # a fresh link so every cluster still takes one link
                # per round (keeps emulation load balanced).
                link = topology.links[min(unassigned)]
            link_to_core[link.id] = core_index
            unassigned.discard(link.id)
            cluster_nodes[core_index].add(link.a)
            cluster_nodes[core_index].add(link.b)
    return Assignment(num_cores, link_to_core, topology=topology)


def assign_by_vn_groups(
    topology: Topology,
    groups: Sequence[Sequence[int]],
) -> Assignment:
    """Explicit assignment used by controlled experiments (Table 1):
    each group of client nodes claims its access links; remaining
    links go to the core with the fewest links."""
    num_cores = len(groups)
    node_to_core: Dict[int, int] = {}
    for core_index, group in enumerate(groups):
        for node_id in group:
            node_to_core[node_id] = core_index
    link_to_core: Dict[int, int] = {}
    leftovers: List[int] = []
    for link in topology.links.values():
        core = node_to_core.get(link.a, node_to_core.get(link.b))
        if core is None:
            leftovers.append(link.id)
        else:
            link_to_core[link.id] = core
    counts = [0] * num_cores
    for core in link_to_core.values():
        counts[core] += 1
    for link_id in sorted(leftovers):
        target = counts.index(min(counts))
        link_to_core[link_id] = target
        counts[target] += 1
    return Assignment(num_cores, link_to_core, topology=topology)


def cross_core_hops(topology: Topology, assignment: Assignment, routes) -> float:
    """Fraction of consecutive-pipe pairs (across ``routes``) whose
    pipes live on different cores — the metric the assignment tries
    to minimize."""
    crossings = 0
    pairs = 0
    for route in routes:
        for earlier, later in zip(route, route[1:]):
            pairs += 1
            if assignment.core_of(earlier.link.id) != assignment.core_of(
                later.link.id
            ):
                crossings += 1
    return crossings / pairs if pairs else 0.0
