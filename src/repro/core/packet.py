"""Packet descriptors: the by-reference handles the core moves.

"Packets move through the pipes and queues by reference; a core node
never copies packet data" (paper Sec. 2). A descriptor references the
buffered packet, records the route (ordered list of pipes), and
tracks two clocks:

* the *scheduled* clock — actual times at the tick-quantized
  scheduler granularity;
* the *ideal* clock — the exact (unquantized) times the emulation
  should produce, used for accuracy accounting and for the paper's
  proposed packet-debt correction.

Descriptors are recycled through a slot table rather than a free
*list of objects*: each pooled descriptor owns a dense integer
``slot`` into a flat array, and the free list holds slot indices.
Besides sparing the allocator on the hot path (one admission per
packet), the dense-id shape is the groundwork for shared-memory
descriptor pools (ROADMAP item 1) and for kernels that column-store
descriptor ids instead of object references
(:mod:`repro.core.kernel`).
"""

from __future__ import annotations

from typing import Tuple

from repro.net.packet import Packet


class PacketDescriptor:
    """A packet traversing the emulated pipe network.

    Descriptors are pooled: a saturated core churns through one per
    admitted packet, and recycling them through the slot table
    (:meth:`acquire` / :meth:`release`) spares the allocator on the
    hot path. A released descriptor must never be touched again by
    its previous owner — release happens only where a descriptor
    provably leaves the emulated network (final delivery, or
    destruction by ``Pipe.flush``).
    """

    __slots__ = (
        "packet",
        "pipes",
        "hop_index",
        "entry_core",
        "entered_at",
        "ideal_time",
        "tunnel_hops",
        "handoff",
        "slot",
    )

    def __init__(
        self,
        packet: Packet,
        pipes: Tuple,
        entry_core: int,
        entered_at: float,
    ):
        self.packet = packet
        self.pipes = pipes
        self.hop_index = 0
        self.entry_core = entry_core
        self.entered_at = entered_at
        #: Exact exit time of the most recent pipe (or the entry time
        #: before any pipe has been traversed).
        self.ideal_time = entered_at
        #: Number of core-to-core crossings this descriptor has made.
        self.tunnel_hops = 0
        #: Cross-domain continuation already announced at admission:
        #: 0 none, 1 tunneled onward, 2 exiting to a foreign host.
        #: A nonzero value means the local pipe exit only accounts
        #: CPU cost — the successor descriptor is already in flight.
        self.handoff = 0
        #: Index into the pool's slot table, or -1 for an unpooled
        #: overflow descriptor (created beyond the table capacity and
        #: left to the garbage collector).
        self.slot = -1

    @classmethod
    def acquire(
        cls,
        packet: Packet,
        pipes: Tuple,
        entry_core: int,
        entered_at: float,
    ) -> "PacketDescriptor":
        """A fresh descriptor, recycled from the pool when possible."""
        return POOL.acquire(packet, pipes, entry_core, entered_at)

    def release(self) -> None:
        """Return this descriptor to the pool (drops its references
        so recycled descriptors don't pin packets or pipe routes).

        The identity check keeps a descriptor that outlived a pool
        reset (``POOL.clear``) from pushing a dangling slot index."""
        slot = self.slot
        if slot >= 0:
            slots = POOL.slots
            if slot < len(slots) and slots[slot] is self:
                self.packet = None
                self.pipes = ()
                POOL.free.append(slot)

    @property
    def current_pipe(self):
        """The pipe this descriptor occupies (or will enter next)."""
        return self.pipes[self.hop_index]

    @property
    def remaining_hops(self) -> int:
        return len(self.pipes) - self.hop_index

    def advance(self) -> bool:
        """Step to the next pipe; returns True if one exists."""
        self.hop_index += 1
        return self.hop_index < len(self.pipes)

    @property
    def done(self) -> bool:
        return self.hop_index >= len(self.pipes)

    def __repr__(self) -> str:
        return (
            f"<Descriptor pkt#{self.packet.id} hop {self.hop_index}/"
            f"{len(self.pipes)}>"
        )


class DescriptorPool:
    """Array-slot descriptor recycling.

    ``slots`` is a flat, append-only table of every pooled descriptor;
    ``free`` is a LIFO of recycled slot *indices* (LIFO keeps the
    cache-warm descriptor first, like the old free list). The table is
    bounded: descriptors created beyond ``limit`` stay unpooled
    (``slot == -1``) and die with the garbage collector, so a burst
    can never pin memory forever.

    Pool state is invisible to the event stream — which object backs
    a descriptor never enters a digest — so emulations share one
    module-level pool (descriptors hold no per-emulation state once
    released).
    """

    __slots__ = ("slots", "free", "limit")

    def __init__(self, limit: int = 4096):
        self.slots: list = []
        self.free: list = []
        self.limit = limit

    def acquire(
        self,
        packet: Packet,
        pipes: Tuple,
        entry_core: int,
        entered_at: float,
    ) -> PacketDescriptor:
        free = self.free
        if free:
            descriptor = self.slots[free.pop()]
            descriptor.packet = packet
            descriptor.pipes = pipes
            descriptor.hop_index = 0
            descriptor.entry_core = entry_core
            descriptor.entered_at = entered_at
            descriptor.ideal_time = entered_at
            descriptor.tunnel_hops = 0
            descriptor.handoff = 0
            return descriptor
        descriptor = PacketDescriptor(packet, pipes, entry_core, entered_at)
        slots = self.slots
        if len(slots) < self.limit:
            descriptor.slot = len(slots)
            slots.append(descriptor)
        return descriptor

    def clear(self) -> None:
        """Forget every pooled descriptor (test isolation helper)."""
        self.slots.clear()
        self.free.clear()


#: The shared slot pool (see :class:`DescriptorPool`).
POOL = DescriptorPool()
