"""Packet descriptors: the by-reference handles the core moves.

"Packets move through the pipes and queues by reference; a core node
never copies packet data" (paper Sec. 2). A descriptor references the
buffered packet, records the route (ordered list of pipes), and
tracks two clocks:

* the *scheduled* clock — actual times at the tick-quantized
  scheduler granularity;
* the *ideal* clock — the exact (unquantized) times the emulation
  should produce, used for accuracy accounting and for the paper's
  proposed packet-debt correction.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.net.packet import Packet


class PacketDescriptor:
    """A packet traversing the emulated pipe network.

    Descriptors are pooled: a saturated core churns through one per
    admitted packet, and recycling them through a bounded free list
    (:meth:`acquire` / :meth:`release`) spares the allocator on the
    hot path. A released descriptor must never be touched again by
    its previous owner — release happens only where a descriptor
    provably leaves the emulated network (final delivery, or
    destruction by ``Pipe.flush``).
    """

    __slots__ = (
        "packet",
        "pipes",
        "hop_index",
        "entry_core",
        "entered_at",
        "ideal_time",
        "tunnel_hops",
        "handoff",
    )

    #: Free list shared by all emulations (descriptors hold no
    #: per-emulation state once released).
    _pool: list = []
    _pool_limit: int = 4096

    def __init__(
        self,
        packet: Packet,
        pipes: Tuple,
        entry_core: int,
        entered_at: float,
    ):
        self.packet = packet
        self.pipes = pipes
        self.hop_index = 0
        self.entry_core = entry_core
        self.entered_at = entered_at
        #: Exact exit time of the most recent pipe (or the entry time
        #: before any pipe has been traversed).
        self.ideal_time = entered_at
        #: Number of core-to-core crossings this descriptor has made.
        self.tunnel_hops = 0
        #: Cross-domain continuation already announced at admission:
        #: 0 none, 1 tunneled onward, 2 exiting to a foreign host.
        #: A nonzero value means the local pipe exit only accounts
        #: CPU cost — the successor descriptor is already in flight.
        self.handoff = 0

    @classmethod
    def acquire(
        cls,
        packet: Packet,
        pipes: Tuple,
        entry_core: int,
        entered_at: float,
    ) -> "PacketDescriptor":
        """A fresh descriptor, recycled from the pool when possible."""
        pool = cls._pool
        if pool:
            descriptor = pool.pop()
            descriptor.packet = packet
            descriptor.pipes = pipes
            descriptor.hop_index = 0
            descriptor.entry_core = entry_core
            descriptor.entered_at = entered_at
            descriptor.ideal_time = entered_at
            descriptor.tunnel_hops = 0
            descriptor.handoff = 0
            return descriptor
        return cls(packet, pipes, entry_core, entered_at)

    def release(self) -> None:
        """Return this descriptor to the pool (drops its references
        so recycled descriptors don't pin packets or pipe routes)."""
        pool = PacketDescriptor._pool
        if len(pool) < PacketDescriptor._pool_limit:
            self.packet = None
            self.pipes = ()
            pool.append(self)

    @property
    def current_pipe(self):
        """The pipe this descriptor occupies (or will enter next)."""
        return self.pipes[self.hop_index]

    @property
    def remaining_hops(self) -> int:
        return len(self.pipes) - self.hop_index

    def advance(self) -> bool:
        """Step to the next pipe; returns True if one exists."""
        self.hop_index += 1
        return self.hop_index < len(self.pipes)

    @property
    def done(self) -> bool:
        return self.hop_index >= len(self.pipes)

    def __repr__(self) -> str:
        return (
            f"<Descriptor pkt#{self.packet.id} hop {self.hop_index}/"
            f"{len(self.pipes)}>"
        )
