"""The heap-of-pipes scheduler (paper Sec. 2.2).

Pipes are kept in a heap sorted by earliest deadline — the exit time
of the first packet in each pipe. The prototype's scheduler executes
once every clock tick (10 kHz) at the kernel's highest priority; in
virtual time we reproduce exactly that observable behavior by
*quantizing* all pipe service to the tick grid: a deadline at time t
is serviced at the first tick boundary >= t. An idle tick does no
work, so (unlike the real kernel) we never pay for empty wakeups —
the emulated timing is identical.

Setting ``tick_s = 0`` gives exact event-driven service, used as the
"reference" (ns2-stand-in) mode.
"""

from __future__ import annotations

import heapq
import math
from time import perf_counter
from typing import List, Tuple

from repro.core.packet import PacketDescriptor
from repro.core.pipe import INFINITY, Pipe


class PipeScheduler:
    """Earliest-deadline pipe heap with tick quantization.

    This object is passive: the owning core node asks for
    :meth:`next_wake` and calls :meth:`collect` when the wake time
    arrives. Stale heap entries (pipes whose deadline moved) are
    discarded lazily.
    """

    def __init__(self, tick_s: float = 1e-4):
        if tick_s < 0:
            raise ValueError("tick must be >= 0")
        self.tick_s = tick_s
        # Float-error slack applied when maturing deadlines against a
        # wake boundary (see collect); precomputed once.
        self._slack = tick_s * 1e-3 if tick_s > 0 else 0.0
        self._heap: List[Tuple[float, int, Pipe]] = []
        self._seq = 0
        self.hops_serviced = 0
        self.wakeups = 0
        # Observability timing hook: a Histogram measuring wall-clock
        # time per collect() when the owning emulation runs with a
        # live registry, else None (zero overhead).
        self.collect_timer = None
        # Observability batching hook: a Histogram of departures per
        # serviced pipe per collect (the ``sched.batch_size`` metric),
        # armed alongside collect_timer, else None.
        self.batch_hist = None

    def quantize(self, time: float) -> float:
        """The first tick boundary at or after ``time``."""
        if self.tick_s <= 0 or time == INFINITY:
            return time
        ticks = math.ceil(time / self.tick_s - 1e-9)
        return ticks * self.tick_s

    def notify(self, pipe: Pipe) -> None:
        """(Re)insert ``pipe`` after its deadline may have changed.

        Re-pushing is skipped when the deadline is unchanged (or
        covered by an earlier entry): ``_sched_hint`` is the deadline
        of the pipe's live heap entry, so only a strictly earlier
        deadline needs a new entry. The superseded entry goes stale
        and is discarded lazily.
        """
        # The delay-line kernel keeps its earliest pending time
        # current (see repro.core.kernel); one attribute read replaces
        # the old double queue peek. An empty pipe reads INFINITY,
        # which never beats the hint.
        deadline = pipe._line.head_deadline
        if deadline >= pipe._sched_hint:
            return
        pipe._sched_hint = deadline
        self._seq += 1
        heapq.heappush(self._heap, (deadline, self._seq, pipe))

    def earliest_deadline(self) -> float:
        # An entry is live iff its deadline equals the pipe's hint:
        # pushes strictly decrease the hint (older entries read
        # higher), collect resets it to INFINITY, and flush orphans
        # its entry the same way. This avoids recomputing
        # pipe.next_deadline() on every peek — the scheduler is asked
        # for its earliest deadline after every wake and every offer.
        heap = self._heap
        while heap:
            deadline, _seq, pipe = heap[0]
            if deadline != pipe._sched_hint:
                # Stale: superseded, already serviced, or flushed.
                heapq.heappop(heap)
                continue
            return deadline
        return INFINITY

    def next_wake(self) -> float:
        """Tick-quantized time of the next required service."""
        return self.quantize(self.earliest_deadline())

    def collect(self, now: float) -> List[Tuple[Pipe, List[PacketDescriptor]]]:
        """Service every pipe whose deadline has matured by ``now``.

        Returns (pipe, exited descriptors) in deadline order; pipes
        with remaining queued packets are re-inserted with their new
        deadline. The core node forwards exited descriptors to their
        next pipe or destination and charges CPU per hop.
        """
        self.wakeups += 1
        timer = self.collect_timer
        t0 = perf_counter() if timer is not None else 0.0  # repro: allow-wallclock
        # Quantization rounds deadlines *down* to the wake boundary
        # modulo float error (e.g. a deadline of 693.0000000000001
        # ticks waking at tick 693); accept anything within a
        # thousandth of a tick of the boundary so such deadlines
        # mature instead of re-arming a same-instant wake forever.
        cutoff = now + self._slack
        serviced: List[Tuple[Pipe, List[PacketDescriptor]]] = []
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        seq = self._seq
        batch_hist = self.batch_hist
        while heap and heap[0][0] <= cutoff:
            deadline, _seq, pipe = heappop(heap)
            if deadline != pipe._sched_hint:
                continue  # stale entry; a fresher one covers this pipe
            # One call drains the whole due run from this pipe's
            # delay-line kernel (batched departures).
            exits = pipe.service(cutoff)
            if exits:
                self.hops_serviced += len(exits)
                serviced.append((pipe, exits))
                if batch_hist is not None:
                    batch_hist.observe(len(exits))
            # Re-insert with the pipe's new deadline (notify() with the
            # hint freshly cleared, inlined: any finite deadline wins).
            # service() refreshed the kernel's cached head deadline.
            deadline = pipe._line.head_deadline
            if deadline == INFINITY:
                pipe._sched_hint = INFINITY
                continue
            pipe._sched_hint = deadline
            seq += 1
            heappush(heap, (deadline, seq, pipe))
        self._seq = seq
        # Eagerly drain stale entries off the top so the next_wake()
        # that immediately follows every collect peeks a live entry
        # instead of re-discarding the same churn.
        while heap and heap[0][0] != heap[0][2]._sched_hint:
            heappop(heap)
        if timer is not None:
            timer.observe(perf_counter() - t0)  # repro: allow-wallclock
        return serviced

    @property
    def pending_pipes(self) -> int:
        """Heap size (including stale entries)."""
        return len(self._heap)
