"""The heap-of-pipes scheduler (paper Sec. 2.2).

Pipes are kept in a heap sorted by earliest deadline — the exit time
of the first packet in each pipe. The prototype's scheduler executes
once every clock tick (10 kHz) at the kernel's highest priority; in
virtual time we reproduce exactly that observable behavior by
*quantizing* all pipe service to the tick grid: a deadline at time t
is serviced at the first tick boundary >= t. An idle tick does no
work, so (unlike the real kernel) we never pay for empty wakeups —
the emulated timing is identical.

Setting ``tick_s = 0`` gives exact event-driven service, used as the
"reference" (ns2-stand-in) mode.
"""

from __future__ import annotations

import heapq
import math
from time import perf_counter
from typing import List, Tuple

from repro.core.packet import PacketDescriptor
from repro.core.pipe import INFINITY, Pipe


class PipeScheduler:
    """Earliest-deadline pipe heap with tick quantization.

    This object is passive: the owning core node asks for
    :meth:`next_wake` and calls :meth:`collect` when the wake time
    arrives. Stale heap entries (pipes whose deadline moved) are
    discarded lazily.
    """

    def __init__(self, tick_s: float = 1e-4):
        if tick_s < 0:
            raise ValueError("tick must be >= 0")
        self.tick_s = tick_s
        self._heap: List[Tuple[float, int, Pipe]] = []
        self._seq = 0
        self.hops_serviced = 0
        self.wakeups = 0
        # Observability timing hook: a Histogram measuring wall-clock
        # time per collect() when the owning emulation runs with a
        # live registry, else None (zero overhead).
        self.collect_timer = None

    def quantize(self, time: float) -> float:
        """The first tick boundary at or after ``time``."""
        if self.tick_s <= 0 or time == INFINITY:
            return time
        ticks = math.ceil(time / self.tick_s - 1e-9)
        return ticks * self.tick_s

    def notify(self, pipe: Pipe) -> None:
        """(Re)insert ``pipe`` after its deadline may have changed."""
        deadline = pipe.next_deadline()
        if deadline == INFINITY:
            return
        if deadline >= pipe._sched_hint:
            return  # existing heap entry already covers it
        pipe._sched_hint = deadline
        self._seq += 1
        heapq.heappush(self._heap, (deadline, self._seq, pipe))

    def earliest_deadline(self) -> float:
        while self._heap:
            deadline, _seq, pipe = self._heap[0]
            if deadline > pipe.next_deadline() or deadline < pipe._sched_hint:
                # Stale: the pipe was re-queued or already serviced.
                heapq.heappop(self._heap)
                continue
            return deadline
        return INFINITY

    def next_wake(self) -> float:
        """Tick-quantized time of the next required service."""
        return self.quantize(self.earliest_deadline())

    def collect(self, now: float) -> List[Tuple[Pipe, List[PacketDescriptor]]]:
        """Service every pipe whose deadline has matured by ``now``.

        Returns (pipe, exited descriptors) in deadline order; pipes
        with remaining queued packets are re-inserted with their new
        deadline. The core node forwards exited descriptors to their
        next pipe or destination and charges CPU per hop.
        """
        self.wakeups += 1
        timer = self.collect_timer
        t0 = perf_counter() if timer is not None else 0.0  # repro: allow-wallclock
        # Quantization rounds deadlines *down* to the wake boundary
        # modulo float error (e.g. a deadline of 693.0000000000001
        # ticks waking at tick 693); accept anything within a
        # thousandth of a tick of the boundary so such deadlines
        # mature instead of re-arming a same-instant wake forever.
        cutoff = now + (self.tick_s * 1e-3 if self.tick_s > 0 else 0.0)
        serviced: List[Tuple[Pipe, List[PacketDescriptor]]] = []
        while self._heap and self._heap[0][0] <= cutoff:
            deadline, _seq, pipe = heapq.heappop(self._heap)
            if deadline != pipe._sched_hint:
                continue  # stale entry; a fresher one covers this pipe
            pipe._sched_hint = INFINITY
            exits = pipe.service(cutoff)
            if exits:
                self.hops_serviced += len(exits)
                serviced.append((pipe, exits))
            self.notify(pipe)
        if timer is not None:
            timer.observe(perf_counter() - t0)  # repro: allow-wallclock
        return serviced

    @property
    def pending_pipes(self) -> int:
        """Heap size (including stale entries)."""
        return len(self._heap)
