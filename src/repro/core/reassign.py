"""Dynamic pipe-to-core reassignment (paper Sec. 2.1).

The greedy k-clusters assignment is computed before traffic exists;
the paper notes the ideal assignment depends on the offered load and
that the authors were "investigating approximations for dynamically
reassigning pipes to cores to minimize bandwidth demands across the
core based on evolving communication patterns."

:class:`DynamicReassigner` implements that approximation online:

1. core nodes record how many packets move between each consecutive
   pipe pair (and from each ingress core to each first pipe);
2. every period, a greedy local search considers moving pipes to the
   core where most of their observed traffic neighbors live;
3. moves are applied only to quiescent pipes (no packets in flight),
   so scheduler state never straddles cores, and a load-balance bound
   keeps any core from accreting everything.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.emulator import Emulation


class DynamicReassigner:
    """Online greedy pipe migration driven by observed traffic."""

    def __init__(
        self,
        emulation: Emulation,
        period_s: float = 2.0,
        max_moves_per_round: int = 16,
        load_imbalance_limit: float = 2.0,
    ):
        if len(emulation.cores) < 2:
            raise ValueError("reassignment needs multiple cores")
        if getattr(emulation, "num_domains", 1) > 1:
            # Migration pokes the destination core's scheduler heap
            # directly; under partitioned execution that core may live
            # on another event domain (or another worker process), so
            # the poke would bypass the DomainRouter and desync digests.
            raise ValueError(
                "dynamic reassignment requires single-domain execution "
                f"(got {emulation.num_domains} event domains); it "
                "migrates scheduler state that must not cross domains"
            )
        self.emulation = emulation
        self.period_s = period_s
        self.max_moves_per_round = max_moves_per_round
        self.load_imbalance_limit = load_imbalance_limit
        self._tracker: Dict[Tuple[int, int], int] = {}
        for core in emulation.cores:
            core.pair_tracker = self._tracker
        self._running = False
        self.rounds = 0
        self.moves = 0

    # ------------------------------------------------------------------

    def start(self) -> None:
        self._running = True
        self.emulation.sim.schedule(self.period_s, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.rebalance()
        self.emulation.sim.schedule(self.period_s, self._tick)

    # ------------------------------------------------------------------

    def observed_crossings(self) -> int:
        """Packets observed moving between pipes on different cores
        (including ingress-to-first-pipe crossings) this window."""
        pipes = {pipe.id: pipe for pipe in self.emulation.pipes.values()}
        crossings = 0
        for (prev_id, next_id), count in self._tracker.items():
            next_owner = pipes[next_id].owner
            if prev_id < 0:
                prev_owner = -1 - prev_id
            else:
                prev_owner = pipes[prev_id].owner
            if prev_owner != next_owner:
                crossings += count
        return crossings

    def rebalance(self) -> int:
        """One greedy round; returns the number of pipes migrated."""
        self.rounds += 1
        emulation = self.emulation
        pipes = {pipe.id: pipe for pipe in emulation.pipes.values()}
        num_cores = len(emulation.cores)

        # Per-pipe traffic affinity to each core.
        affinity: Dict[int, List[float]] = {}
        for (prev_id, next_id), count in self._tracker.items():
            if prev_id < 0:
                prev_owner: Optional[int] = -1 - prev_id
            else:
                prev_owner = None  # resolved per evaluation below
            for pipe_id, other_id, fixed_owner in (
                (next_id, prev_id, prev_owner),
                (prev_id, next_id, None),
            ):
                if pipe_id < 0:
                    continue
                owner_of_other = (
                    fixed_owner
                    if fixed_owner is not None
                    else pipes[other_id].owner
                    if other_id >= 0
                    else -1 - other_id
                )
                weights = affinity.setdefault(pipe_id, [0.0] * num_cores)
                weights[owner_of_other] += count

        loads = [0] * num_cores
        for pipe in pipes.values():
            loads[pipe.owner] += 1
        max_load = self.load_imbalance_limit * len(pipes) / num_cores

        # Consider the hottest pipes first.
        candidates = sorted(
            affinity.items(), key=lambda kv: -sum(kv[1])
        )
        moves = 0
        for pipe_id, weights in candidates:
            if moves >= self.max_moves_per_round:
                break
            pipe = pipes[pipe_id]
            current = pipe.owner
            best = max(range(num_cores), key=lambda core: weights[core])
            if best == current or weights[best] <= weights[current]:
                continue
            if loads[best] + 1 > max_load:
                continue
            self._migrate(pipe, best)
            loads[current] -= 1
            loads[best] += 1
            moves += 1
        self.moves += moves
        self._tracker.clear()
        return moves

    def _migrate(self, pipe, new_core: int) -> None:
        """Move ownership; future descriptors route to the new core.

        Each direction of a link migrates independently (the two
        pipes are independent emulation objects); the bookkeeping
        directories track the forward direction. A busy pipe's
        scheduler residency moves too: the old core's heap entry goes
        stale (lazy deletion) and the new core takes over service.
        """
        from repro.core.pipe import INFINITY

        pipe.owner = new_core
        pipe._sched_hint = INFINITY
        core = self.emulation.cores[new_core]
        # Single-domain by construction: __init__ rejects partitioned
        # emulations, so this core shares our clock and heap.
        core.scheduler.notify(pipe)  # repro: allow-unrouted-peer-call
        core._reschedule_wake()  # repro: allow-unrouted-peer-call
        forward, _reverse = self.emulation.pipes_of_link(pipe.link_id)
        self.emulation.pod._link_to_core[pipe.link_id] = forward.owner
        self.emulation.assignment.link_to_core[pipe.link_id] = forward.owner
