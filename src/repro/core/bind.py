"""Binding: VNs onto edge hosts, hosts onto cores (paper Sec. 2.1).

The Binding phase multiplexes multiple VNs onto each physical edge
node, binds each physical node to a single core, and generates the
per-node configuration the Run phase executes. Here the
"configuration scripts" are structured dicts (the analog of the shell
scripts the prototype emits), exercised by tests and usable for
inspection or serialization.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.net.addr import vn_ip
from repro.topology.graph import Topology, TopologyError


class Binding:
    """The result of the Bind phase.

    ``vn_to_host[vn]`` is the edge host index of each VN (VN i is the
    i-th client node in node-id order); ``host_to_core[h]`` is the
    core each host routes through.
    """

    def __init__(
        self,
        vn_nodes: Sequence[int],
        vn_to_host: Sequence[int],
        host_to_core: Sequence[int],
    ):
        if len(vn_nodes) != len(vn_to_host):
            raise TopologyError("vn_to_host must cover every VN")
        for host in vn_to_host:
            if not 0 <= host < len(host_to_core):
                raise TopologyError(f"VN bound to unknown host {host}")
        self.vn_nodes = list(vn_nodes)
        self.vn_to_host = list(vn_to_host)
        self.host_to_core = list(host_to_core)

    @property
    def num_vns(self) -> int:
        return len(self.vn_nodes)

    @property
    def num_hosts(self) -> int:
        return len(self.host_to_core)

    def vns_of_host(self, host: int) -> List[int]:
        return [vn for vn, owner in enumerate(self.vn_to_host) if owner == host]

    def core_of_vn(self, vn: int) -> int:
        return self.host_to_core[self.vn_to_host[vn]]

    def multiplexing_degree(self) -> float:
        """Mean VNs per edge host."""
        return self.num_vns / self.num_hosts if self.num_hosts else 0.0

    def host_configs(self) -> List[Dict]:
        """The per-edge-node configuration "scripts": which VNs to
        instantiate, their IP addresses, and the core to route via."""
        configs = []
        for host in range(self.num_hosts):
            vns = self.vns_of_host(host)
            configs.append(
                {
                    "host": host,
                    "core": self.host_to_core[host],
                    "vns": [
                        {
                            "vn": vn,
                            "ip": vn_ip(vn),
                            "topology_node": self.vn_nodes[vn],
                        }
                        for vn in vns
                    ],
                }
            )
        return configs


def bind_vns(
    topology: Topology,
    num_hosts: int,
    num_cores: int,
    strategy: str = "contiguous",
    vn_nodes: Optional[Sequence[int]] = None,
) -> Binding:
    """Bind the topology's VNs to ``num_hosts`` edge hosts and those
    hosts to ``num_cores`` cores.

    Strategies: "contiguous" packs VN index ranges per host (keeps
    topologically clustered VNs together, as the replicated-web
    experiment does); "round_robin" deals VNs across hosts.
    Hosts bind to cores round-robin either way.
    """
    if num_hosts < 1:
        raise TopologyError("need at least one edge host")
    if vn_nodes is None:
        vn_nodes = sorted(node.id for node in topology.clients())
    count = len(vn_nodes)
    if count == 0:
        raise TopologyError("topology has no client nodes to bind")

    if strategy == "contiguous":
        base, extra = divmod(count, num_hosts)
        vn_to_host = []
        for host in range(num_hosts):
            size = base + (1 if host < extra else 0)
            vn_to_host.extend([host] * size)
    elif strategy == "round_robin":
        vn_to_host = [vn % num_hosts for vn in range(count)]
    else:
        raise TopologyError(f"unknown binding strategy {strategy!r}")

    host_to_core = [host % num_cores for host in range(num_hosts)]
    return Binding(vn_nodes, vn_to_host, host_to_core)


def bind_vns_locality(
    topology: Topology,
    assignment,
    vn_nodes: Optional[Sequence[int]] = None,
) -> Binding:
    """Locality binding: one edge host per client node, bound to the
    core that owns that node's access link.

    This is the partitioned-execution default (see
    ``Emulation.__init__``), fixing two problems the host-count
    bindings have there. First, load: with ``num_hosts=1`` every VN
    stack, edge link, and ingress interrupt lands on host 0's core —
    one domain dispatches ~4x the events of the others on ring-style
    topologies. Here edge work lands in the domain that owns the
    node's access link, so per-domain load follows the (balanced)
    link assignment. Second, lookahead: a packet's first pipe is
    owned by the very core that admits it, so no cross-domain hop
    happens at the channel floor on entry — every crossing rides a
    pipe latency, which is what keeps the derived lookahead matrix
    in the milliseconds.

    A node with several links is localized on its lowest-id link.
    VNs multiplexed on one topology node share that node's host.
    """
    if vn_nodes is None:
        vn_nodes = sorted(node.id for node in topology.clients())
    if not vn_nodes:
        raise TopologyError("topology has no client nodes to bind")
    nodes = sorted(set(vn_nodes))
    host_of_node = {node_id: index for index, node_id in enumerate(nodes)}
    host_to_core = []
    for node_id in nodes:
        links = sorted(topology.links_of(node_id), key=lambda link: link.id)
        if not links:
            raise TopologyError(
                f"client node {node_id} has no link to localize on"
            )
        host_to_core.append(assignment.core_of(links[0].id))
    vn_to_host = [host_of_node[node_id] for node_id in vn_nodes]
    return Binding(vn_nodes, vn_to_host, host_to_core)
