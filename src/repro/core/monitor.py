"""Emulation monitoring: the kernel logging package analog.

The paper tracks per-packet expected vs. actual delay with an
in-kernel logging package, and argues that "the relative accuracy of
a ModelNet run is proportional to the number of physical packets
dropped". :class:`EmulationMonitor` aggregates both: per-packet
emulation error samples (actual minus ideal exit time) and the
physical/virtual drop taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class AccuracyReport:
    """Summary of one run's emulation fidelity."""

    packets_delivered: int
    packets_entered: int
    virtual_drops: int
    physical_drops: int
    max_error_s: float
    mean_error_s: float
    p99_error_s: float

    def __str__(self) -> str:
        return (
            f"delivered={self.packets_delivered} entered={self.packets_entered} "
            f"virtual_drops={self.virtual_drops} physical_drops={self.physical_drops} "
            f"err(mean/p99/max)={self.mean_error_s*1e6:.1f}/"
            f"{self.p99_error_s*1e6:.1f}/{self.max_error_s*1e6:.1f} us"
        )


class EmulationMonitor:
    """Counters and per-packet accuracy sampling for one emulation."""

    def __init__(self, sample_errors: bool = True, max_samples: int = 200_000):
        self.sample_errors = sample_errors
        self.max_samples = max_samples
        self.packets_entered = 0
        self.packets_delivered = 0
        self.packets_unroutable = 0
        self.physical_drops_ring = 0
        self.physical_drops_egress = 0
        self.physical_drops_uplink = 0
        self.tunnels = 0
        self.error_samples: List[float] = []
        self._window_start = 0.0
        self._window_delivered_base = 0

    # -- per-packet events ---------------------------------------------

    def packet_entered(self) -> None:
        self.packets_entered += 1

    def packet_unroutable(self) -> None:
        self.packets_unroutable += 1

    def packet_tunneled(self) -> None:
        self.tunnels += 1

    def ring_drop(self) -> None:
        self.physical_drops_ring += 1

    def egress_drop(self) -> None:
        self.physical_drops_egress += 1

    def uplink_drop(self) -> None:
        self.physical_drops_uplink += 1

    def packet_exited(self, ideal_time: float, actual_time: float) -> None:
        self.packets_delivered += 1
        if self.sample_errors and len(self.error_samples) < self.max_samples:
            self.error_samples.append(actual_time - ideal_time)

    # -- windows (throughput measurement) --------------------------------

    def begin_window(self, now: float) -> None:
        """Start a measurement window (e.g. after warm-up)."""
        self._window_start = now
        self._window_delivered_base = self.packets_delivered

    def window_packets(self) -> int:
        return self.packets_delivered - self._window_delivered_base

    def window_pps(self, now: float) -> float:
        elapsed = now - self._window_start
        if elapsed <= 0:
            return 0.0
        return self.window_packets() / elapsed

    # -- reporting --------------------------------------------------------

    @property
    def physical_drops(self) -> int:
        return (
            self.physical_drops_ring
            + self.physical_drops_egress
            + self.physical_drops_uplink
        )

    def export(self, registry, virtual_drops: int = 0) -> None:
        """Publish this monitor's counters and error summary into an
        observability registry under ``accuracy.*`` names."""
        accuracy = self.report(virtual_drops=virtual_drops)
        registry.gauge("accuracy.packets_entered").set(self.packets_entered)
        registry.gauge("accuracy.packets_delivered").set(self.packets_delivered)
        registry.gauge("accuracy.packets_unroutable").set(self.packets_unroutable)
        registry.gauge("accuracy.tunnels").set(self.tunnels)
        registry.gauge("accuracy.virtual_drops").set(virtual_drops)
        registry.gauge("accuracy.physical_drops").set(self.physical_drops)
        registry.gauge("accuracy.physical_drops_ring").set(self.physical_drops_ring)
        registry.gauge("accuracy.physical_drops_egress").set(
            self.physical_drops_egress
        )
        registry.gauge("accuracy.physical_drops_uplink").set(
            self.physical_drops_uplink
        )
        registry.gauge("accuracy.error_samples").set(len(self.error_samples))
        registry.gauge("accuracy.mean_error_s").set(accuracy.mean_error_s)
        registry.gauge("accuracy.p99_error_s").set(accuracy.p99_error_s)
        registry.gauge("accuracy.max_error_s").set(accuracy.max_error_s)

    def report(self, virtual_drops: int = 0) -> AccuracyReport:
        """Summarize the run's fidelity (errors + drop taxonomy)."""
        samples = sorted(self.error_samples)
        if samples:
            mean = sum(samples) / len(samples)
            p99 = samples[min(len(samples) - 1, int(0.99 * len(samples)))]
            worst = samples[-1]
        else:
            mean = p99 = worst = 0.0
        return AccuracyReport(
            packets_delivered=self.packets_delivered,
            packets_entered=self.packets_entered,
            virtual_drops=virtual_drops,
            physical_drops=self.physical_drops,
            max_error_s=worst,
            mean_error_s=mean,
            p99_error_s=p99,
        )
