"""Emulated routing protocols inside the core (paper Sec. 2.3).

The prototype assumed a "perfect" routing protocol: instantaneous
all-pairs shortest paths after any failure. The paper describes the
planned alternative — "emulate the propagation and processing of
routing protocol packets within a ModelNet routing module without
involving edge nodes ... capture the latency and communication
overhead associated with routing protocol code while leaving the edge
hosts unmodified."

:class:`DistanceVectorRouting` implements that module as a RIP-style
distance-vector protocol: every topology node keeps a
distance/next-hop vector; when a node's vector changes it advertises
to its neighbors after a processing delay, and the advertisement
crosses the link at the link's latency. Failures are detected by the
link's endpoints and ripple outward; split horizon with poison
reverse damps count-to-infinity, bounded by an infinity metric of 16
hops as in RIP.

While the protocol converges, the emulation forwards along the
*current* tables: transient blackholes and loops make packets
unroutable, exactly the effect the perfect-routing assumption hides.
The module plugs in as the emulation's routing service.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.simulator import Simulator
from repro.routing.shortest_path import Hop, Route
from repro.routing.service import RoutingService
from repro.topology.graph import Link, Topology

#: RIP's infinity: destinations at this metric are unreachable.
INFINITY_METRIC = 16


class DistanceVectorRouting(RoutingService):
    """A RIP-like distance-vector protocol emulated over the topology.

    ``processing_delay_s`` models the router's protocol code; each
    advertisement also pays the link's propagation latency.
    Advertisement size is tracked so experiments can account for the
    control-plane traffic the paper wants to capture.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        processing_delay_s: float = 0.010,
        converged_start: bool = True,
    ):
        self.sim = sim
        self.topology = topology
        self.processing_delay_s = processing_delay_s
        self._nodes = sorted(topology.nodes)
        # distance[node][dest] and next_hop[node][dest] -> neighbor id
        self.distance: Dict[int, Dict[int, int]] = {}
        self.next_hop: Dict[int, Dict[int, Optional[int]]] = {}
        self._listeners: List[Callable[[], None]] = []
        self._pending_advert: Dict[int, bool] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self.triggered_updates = 0
        for node in self._nodes:
            self.distance[node] = {dest: INFINITY_METRIC for dest in self._nodes}
            self.distance[node][node] = 0
            self.next_hop[node] = {dest: None for dest in self._nodes}
            self._pending_advert[node] = False
        if converged_start:
            self._converge_offline()
        else:
            for node in self._nodes:
                self._schedule_advertisement(node)

    # ------------------------------------------------------------------
    # Offline initialization (a converged steady state)
    # ------------------------------------------------------------------

    def _converge_offline(self) -> None:
        """Initialize tables to the converged state (the emulation
        usually starts from a long-running network)."""
        from collections import deque

        for dest in self._nodes:
            queue = deque([dest])
            seen = {dest}
            while queue:
                current = queue.popleft()
                for neighbor, _link in self.topology.neighbors(current):
                    if neighbor in seen:
                        continue
                    seen.add(neighbor)
                    self.distance[neighbor][dest] = (
                        self.distance[current][dest] + 1
                    )
                    self.next_hop[neighbor][dest] = current
                    queue.append(neighbor)

    # ------------------------------------------------------------------
    # Protocol machinery
    # ------------------------------------------------------------------

    def on_change(self, fn: Callable[[], None]) -> None:
        """Register a callback fired whenever any table changes."""
        self._listeners.append(fn)

    def _tables_changed(self) -> None:
        for listener in self._listeners:
            listener()

    def _schedule_advertisement(self, node: int) -> None:
        """Triggered update: after the processing delay, advertise the
        node's vector to each live neighbor (coalescing bursts)."""
        if self._pending_advert[node]:
            return
        self._pending_advert[node] = True
        self.sim.schedule(self.processing_delay_s, self._advertise, node)

    def _advertise(self, node: int) -> None:
        self._pending_advert[node] = False
        self.triggered_updates += 1
        vector = self.distance[node]
        for neighbor, link in self.topology.neighbors(node):
            # Split horizon with poison reverse: routes learned via
            # the neighbor are advertised back as unreachable.
            poisoned = {
                dest: (
                    INFINITY_METRIC
                    if self.next_hop[node][dest] == neighbor
                    else metric
                )
                for dest, metric in vector.items()
            }
            self.messages_sent += 1
            # ~4 bytes per route entry, RIPv2-style.
            self.bytes_sent += 24 + 4 * len(poisoned)
            self.sim.schedule(
                link.latency_s, self._receive, neighbor, node, poisoned
            )

    def _receive(self, node: int, from_neighbor: int, vector: Dict[int, int]) -> None:
        link = self.topology.link_between(node, from_neighbor)
        if link is None or not link.up:
            return  # advertisement raced a failure
        changed = False
        table = self.distance[node]
        hops = self.next_hop[node]
        for dest, metric in vector.items():
            candidate = min(metric + 1, INFINITY_METRIC)
            if hops[dest] == from_neighbor:
                # Current route is via this neighbor: always track it,
                # including worsening news.
                if table[dest] != candidate:
                    table[dest] = candidate
                    if candidate >= INFINITY_METRIC:
                        hops[dest] = None
                    changed = True
            elif candidate < table[dest]:
                table[dest] = candidate
                hops[dest] = from_neighbor
                changed = True
        if changed:
            self._tables_changed()
            self._schedule_advertisement(node)

    # ------------------------------------------------------------------
    # Failure handling (detected by link endpoints)
    # ------------------------------------------------------------------

    def link_failed(self, link: Link) -> None:
        """Endpoint detection: poison routes via the dead link and
        start triggered updates rippling outward."""
        # Downstream half of the sanctioned seam: the applier (via
        # Emulation.set_link_up) delegates the up-flag flip here.
        link.up = False  # repro: allow-fault-mutation
        for node, neighbor in ((link.a, link.b), (link.b, link.a)):
            if self.topology.link_between(node, neighbor) is not None and any(
                live.up
                for live in self.topology.links_of(node)
                if live.other(node) == neighbor
            ):
                continue  # a parallel link survives
            table = self.distance[node]
            hops = self.next_hop[node]
            changed = False
            for dest in self._nodes:
                if hops[dest] == neighbor:
                    table[dest] = INFINITY_METRIC
                    hops[dest] = None
                    changed = True
            if changed:
                self._tables_changed()
                self._schedule_advertisement(node)

    def link_recovered(self, link: Link) -> None:
        """Endpoints re-learn the direct route and re-advertise."""
        link.up = True  # repro: allow-fault-mutation
        for node, neighbor in ((link.a, link.b), (link.b, link.a)):
            if self.distance[node][neighbor] > 1:
                self.distance[node][neighbor] = 1
                self.next_hop[node][neighbor] = neighbor
            self._tables_changed()
            self._schedule_advertisement(node)

    # ------------------------------------------------------------------
    # RoutingService interface (forwarding plane)
    # ------------------------------------------------------------------

    def route(self, src: int, dst: int) -> Optional[Route]:
        """Follow current next-hop tables from src to dst. Returns
        None on blackholes or transient loops (the packet would be
        dropped in flight)."""
        if src == dst:
            return ()
        hops: List[Hop] = []
        current = src
        visited = {src}
        while current != dst:
            neighbor = self.next_hop[current].get(dst)
            if neighbor is None or neighbor in visited:
                return None  # blackhole or forwarding loop
            link = self.topology.link_between(current, neighbor)
            if link is None or not link.up:
                return None
            hops.append(Hop(link, current, neighbor))
            visited.add(neighbor)
            current = neighbor
            if len(hops) >= INFINITY_METRIC:
                return None
        return tuple(hops)

    def invalidate(self) -> None:
        """No-op: the protocol's own dynamics govern table state."""

    # ------------------------------------------------------------------
    # Convergence inspection (for experiments)
    # ------------------------------------------------------------------

    def is_converged(self) -> bool:
        """Do the tables match offline BFS hop counts over up links?"""
        from collections import deque

        for dest in self._nodes:
            truth = {dest: 0}
            queue = deque([dest])
            while queue:
                current = queue.popleft()
                for neighbor, _link in self.topology.neighbors(current):
                    if neighbor not in truth:
                        truth[neighbor] = truth[current] + 1
                        queue.append(neighbor)
            for node in self._nodes:
                expected = truth.get(node, INFINITY_METRIC)
                actual = self.distance[node][dest]
                if expected >= INFINITY_METRIC and actual >= INFINITY_METRIC:
                    continue
                if expected != actual:
                    return False
        return True
