"""Pipe ownership directory (POD).

For multi-core configurations, the next pipe in a route may be owned
by a different core node; the owning node is determined by a lookup
in a pipe ownership directory created during the Binding phase
(paper Sec. 2.2). The directory also records, per route, how many
core crossings it implies — the quantity Table 1 shows dominating
multi-core scalability.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.core.assign import Assignment
from repro.core.pipe import Pipe


class PipeOwnershipDirectory:
    """Maps pipes to owning cores."""

    def __init__(self, assignment: Assignment):
        self.num_cores = assignment.num_cores
        self._link_to_core = dict(assignment.link_to_core)

    def install(self, pipes: Iterable[Pipe]) -> None:
        """Stamp ``owner`` on every pipe from the assignment."""
        for pipe in pipes:
            pipe.owner = self._link_to_core[pipe.link_id]

    def owner_of(self, pipe: Pipe) -> int:
        return self._link_to_core[pipe.link_id]

    def crossings(self, pipes: Sequence[Pipe]) -> int:
        """Core-to-core crossings a descriptor makes along ``pipes``."""
        count = 0
        for earlier, later in zip(pipes, pipes[1:]):
            if self._link_to_core[earlier.link_id] != self._link_to_core[later.link_id]:
                count += 1
        return count

    def load_by_core(self, pipes: Iterable[Pipe]) -> List[int]:
        counts = [0] * self.num_cores
        for pipe in pipes:
            counts[self._link_to_core[pipe.link_id]] += 1
        return counts
