"""Synthetic cross traffic via dynamic pipe-parameter adjustment.

Paper Sec. 4.3: rather than generating real background packets (which
consumes edge and core resources), ModelNet lets users specify a
matrix of background bandwidth demand between VN pairs. An offline
tool propagates the matrix through the routing tables to a per-pipe
background load, and derives new pipe settings from a simple
analytical queueing model:

* bandwidth shrinks by the background load on the pipe;
* latency grows by the M/M/1 queueing delay at the implied
  utilization;
* the queue bound shrinks to model the occupied steady-state queue.

This scales independently of the cross-traffic rate, at the cost of
unresponsive (non-congestion-reactive) background flows — an error
that grows with utilization, as the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.emulator import Emulation


class CrossTrafficMatrix:
    """Background demand (bits/sec) between VN pairs."""

    def __init__(self):
        self._demand: Dict[Tuple[int, int], float] = {}

    def set_demand(self, src_vn: int, dst_vn: int, bps: float) -> None:
        if bps < 0:
            raise ValueError("demand must be >= 0")
        if bps == 0:
            self._demand.pop((src_vn, dst_vn), None)
        else:
            self._demand[(src_vn, dst_vn)] = float(bps)

    def demand(self, src_vn: int, dst_vn: int) -> float:
        return self._demand.get((src_vn, dst_vn), 0.0)

    def pairs(self) -> Iterable[Tuple[int, int, float]]:
        for (src, dst), bps in sorted(self._demand.items()):
            yield src, dst, bps

    @classmethod
    def uniform(cls, vn_ids, bps: float) -> "CrossTrafficMatrix":
        """All-pairs uniform background demand among ``vn_ids``."""
        matrix = cls()
        ids = list(vn_ids)
        for src in ids:
            for dst in ids:
                if src != dst:
                    matrix.set_demand(src, dst, bps)
        return matrix


@dataclass
class PipeAdjustment:
    """Derived settings for one pipe under background load."""

    pipe_id: int
    background_bps: float
    bandwidth_bps: float
    extra_latency_s: float
    queue_limit: int


class CrossTrafficModel:
    """Propagates a demand matrix to pipe parameter adjustments.

    ``apply`` installs the derived settings; ``clear`` restores the
    original pipe parameters. ``schedule_profile`` installs a series
    of matrices over time (the "snapshot profiles" of the paper).
    """

    #: Background load is capped at this fraction of pipe capacity so
    #: foreground traffic always retains some bandwidth.
    MAX_UTILIZATION = 0.95
    #: Mean background packet size used by the queueing model.
    MEAN_PACKET_BYTES = 1000

    def __init__(self, emulation: Emulation):
        self.emulation = emulation
        self._baseline: Dict[int, Tuple[float, float, int]] = {}
        for pipe in emulation.pipes.values():
            self._baseline[pipe.id] = (
                pipe.bandwidth_bps,
                pipe.latency_s,
                pipe.queue_limit,
            )

    # ------------------------------------------------------------------

    def propagate(self, matrix: CrossTrafficMatrix) -> List[PipeAdjustment]:
        """Offline propagation of matrix demand through the routing
        tables to per-pipe background load and derived settings."""
        load: Dict[int, float] = {}
        pipe_by_id = {pipe.id: pipe for pipe in self.emulation.pipes.values()}
        for src, dst, bps in matrix.pairs():
            pipes = self.emulation.lookup_pipes(src, dst)
            if not pipes:
                continue
            for pipe in pipes:
                load[pipe.id] = load.get(pipe.id, 0.0) + bps

        adjustments: List[PipeAdjustment] = []
        for pipe_id, background in sorted(load.items()):
            base_bw, base_lat, base_queue = self._baseline[pipe_id]
            background = min(background, self.MAX_UTILIZATION * base_bw)
            utilization = background / base_bw
            effective_bw = base_bw - background
            # M/M/1 mean waiting time with service time of one mean
            # packet at the original line rate.
            service_s = self.MEAN_PACKET_BYTES * 8.0 / base_bw
            extra_latency = service_s * utilization / (1.0 - utilization)
            queue_limit = max(1, int(round(base_queue * (1.0 - utilization))))
            adjustments.append(
                PipeAdjustment(
                    pipe_id=pipe_id,
                    background_bps=background,
                    bandwidth_bps=effective_bw,
                    extra_latency_s=extra_latency,
                    queue_limit=queue_limit,
                )
            )
        return adjustments

    def apply(self, matrix: CrossTrafficMatrix) -> List[PipeAdjustment]:
        """Derive and install pipe settings for ``matrix``. Pipes not
        loaded by the matrix revert to their baseline."""
        adjustments = self.propagate(matrix)
        adjusted_ids = {adj.pipe_id for adj in adjustments}
        pipe_by_id = {pipe.id: pipe for pipe in self.emulation.pipes.values()}
        for pipe_id, (bw, lat, queue) in self._baseline.items():
            if pipe_id not in adjusted_ids:
                # Cross-traffic distillation is its own sanctioned
                # pipe-parameter seam: profiles are scheduled on the
                # owning kernel, so every backend applies them at the
                # same virtual time.
                pipe_by_id[pipe_id].set_params(  # repro: allow-fault-mutation
                    bandwidth_bps=bw, latency_s=lat, queue_limit=queue
                )
        for adj in adjustments:
            pipe = pipe_by_id[adj.pipe_id]
            base_bw, base_lat, _queue = self._baseline[adj.pipe_id]
            pipe.set_params(  # repro: allow-fault-mutation
                bandwidth_bps=adj.bandwidth_bps,
                latency_s=base_lat + adj.extra_latency_s,
                queue_limit=adj.queue_limit,
            )
        return adjustments

    def clear(self) -> None:
        """Restore every pipe to its baseline parameters."""
        pipe_by_id = {pipe.id: pipe for pipe in self.emulation.pipes.values()}
        for pipe_id, (bw, lat, queue) in self._baseline.items():
            pipe_by_id[pipe_id].set_params(  # repro: allow-fault-mutation
                bandwidth_bps=bw, latency_s=lat, queue_limit=queue
            )

    def schedule_profile(
        self,
        profile: Iterable[Tuple[float, Optional[CrossTrafficMatrix]]],
    ) -> None:
        """Install (time, matrix) snapshots; a None matrix clears."""
        sim = self.emulation.sim
        for when, matrix in profile:
            if matrix is None:
                sim.at(when, self.clear)
            else:
                sim.at(when, self.apply, matrix)
