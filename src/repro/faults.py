"""Declarative fault timelines (paper Sec. 4.3, spec-portable form).

The imperative :class:`repro.core.faults.FaultInjector` schedules
closures directly on a kernel, so its scenarios cannot cross the
``ScenarioSpec`` pickle boundary: they silently vanish on the
multiprocess backend and cannot be checkpointed or swept. This module
is the declarative replacement — a :class:`FaultPlan` is a frozen,
picklable timeline of typed events that travels *inside* the spec,
is applied by the single sanctioned :class:`repro.core.faults.FaultApplier`,
and produces digest-identical event streams across backends, worker
counts, and kernels.

Timeline semantics
------------------
* Times are absolute virtual seconds from the start of the run.
* On a single-domain kernel, events fire at their exact times.
* On a partitioned kernel (serial or multiprocess), events are
  *epoch-barrier aligned*: every participant applies all events whose
  time falls at or before the next epoch horizon, in timeline order,
  before dispatching the epoch. Both backends compute identical
  window sequences, so application points — and therefore the event
  stream — are byte-identical.
* ``LinkDown`` flushes in-flight packets on the pipe into the
  ``drops_down`` counter and invalidates routes (dummynet semantics:
  a dead wire loses what was on it).
* ``Perturbation`` scales are relative to the link's parameters *at
  first perturbation* (lazy snapshot), so a deliberate
  ``SetLinkParams`` earlier in the timeline is not clobbered when the
  perturbation window restores "originals".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Mapping, Optional, Tuple, Union


class FaultPlanError(ValueError):
    """A fault plan is structurally invalid or unsafe for the
    topology/partitioning it was installed on (e.g. it lowers a
    cross-domain latency below the lookahead floor)."""


@dataclass(frozen=True)
class LinkDown:
    """Fail one link at an absolute time."""

    time_s: float
    link_id: int


@dataclass(frozen=True)
class LinkUp:
    """Recover one link at an absolute time."""

    time_s: float
    link_id: int


@dataclass(frozen=True)
class SetLinkParams:
    """Set pipe parameters on one link at an absolute time.

    ``None`` fields are left unchanged, so a sequence of these events
    forms a piecewise parameter timeline. In-flight packets keep
    their scheduled times (dummynet semantics)."""

    time_s: float
    link_id: int
    bandwidth_bps: Optional[float] = None
    latency_s: Optional[float] = None
    loss_rate: Optional[float] = None
    queue_limit: Optional[int] = None

    def params(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name in ("bandwidth_bps", "latency_s", "loss_rate", "queue_limit"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out


@dataclass(frozen=True)
class NodeChurn:
    """Fail (``up=False``) or recover (``up=True``) every link
    incident to a topology node at an absolute time."""

    time_s: float
    node_id: int
    up: bool = False


@dataclass(frozen=True)
class Partition:
    """Fail a cut set of links at once; optionally heal the whole set
    at ``heal_s``. Traffic crossing the cut surfaces as typed drops
    (``drops_down`` / ``accuracy.packets_unroutable``), never a
    routing error."""

    time_s: float
    link_ids: Tuple[int, ...]
    heal_s: Optional[float] = None

    def __post_init__(self):
        object.__setattr__(self, "link_ids", tuple(self.link_ids))


@dataclass(frozen=True)
class Perturbation:
    """A recurring random perturbation window, subsuming the
    imperative ``LinkPerturbation``.

    Every ``period_s`` within ``[start_s, stop_s)`` a fraction
    ``link_fraction`` of the candidate links is drawn from the plan's
    named RNG stream and each has its latency scaled by a factor
    uniform in ``latency_scale`` (and bandwidth/loss likewise when
    given). At the first firing at or past ``stop_s`` every candidate
    link reverts to its snapshot. ``link_ids=()`` means all links."""

    start_s: float
    stop_s: float
    period_s: float
    link_fraction: float = 0.25
    latency_scale: Tuple[float, float] = (1.0, 1.25)
    bandwidth_scale: Optional[Tuple[float, float]] = None
    loss_add: Optional[Tuple[float, float]] = None
    link_ids: Tuple[int, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "link_ids", tuple(self.link_ids))
        object.__setattr__(self, "latency_scale", tuple(self.latency_scale))
        if self.bandwidth_scale is not None:
            object.__setattr__(
                self, "bandwidth_scale", tuple(self.bandwidth_scale)
            )
        if self.loss_add is not None:
            object.__setattr__(self, "loss_add", tuple(self.loss_add))


FaultEvent = Union[LinkDown, LinkUp, SetLinkParams, NodeChurn, Partition, Perturbation]

_EVENT_KINDS = {
    "link_down": LinkDown,
    "link_up": LinkUp,
    "set_link_params": SetLinkParams,
    "node_churn": NodeChurn,
    "partition": Partition,
    "perturbation": Perturbation,
}
_KIND_OF = {cls: kind for kind, cls in _EVENT_KINDS.items()}

#: ``FaultPlan.with_overrides`` axis names → how they rewrite
#: ``Perturbation`` entries. These mirror the ``acdc`` traffic knobs
#: so one experiment axis sweeps both the sampling window and the
#: plan itself.
PLAN_OVERRIDE_KEYS = (
    "perturb_start",
    "perturb_stop",
    "period_s",
    "link_fraction",
    "latency_scale_max",
)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable timeline of fault events.

    Events need not be pre-sorted; application order is by
    ``(time, position-in-plan)``. ``stream`` names the RNG stream all
    stochastic draws come from (one per plan, derived from the run
    seed), so adding a plan never perturbs other components' draws.
    """

    events: Tuple[FaultEvent, ...] = ()
    stream: str = "faults"

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))

    @classmethod
    def of(cls, *events: FaultEvent, stream: str = "faults") -> "FaultPlan":
        return cls(events=tuple(events), stream=stream)

    def __bool__(self) -> bool:
        return bool(self.events)

    # -- spec round trip -------------------------------------------------

    def to_jsonable(self) -> dict:
        encoded = []
        for event in self.events:
            entry = {"kind": _KIND_OF[type(event)]}
            for f in fields(event):
                value = getattr(event, f.name)
                if isinstance(value, tuple):
                    value = list(value)
                entry[f.name] = value
            encoded.append(entry)
        return {"stream": self.stream, "events": encoded}

    @classmethod
    def from_jsonable(cls, obj: Mapping) -> "FaultPlan":
        if not isinstance(obj, Mapping):
            raise FaultPlanError(f"fault plan must be a mapping, got {type(obj).__name__}")
        events = []
        for entry in obj.get("events", ()):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            event_cls = _EVENT_KINDS.get(kind)
            if event_cls is None:
                raise FaultPlanError(
                    f"unknown fault event kind {kind!r} "
                    f"(valid: {', '.join(sorted(_EVENT_KINDS))})"
                )
            for name, value in list(entry.items()):
                if isinstance(value, list):
                    entry[name] = tuple(value)
            try:
                events.append(event_cls(**entry))
            except TypeError as error:
                raise FaultPlanError(f"bad {kind} event: {error}") from None
        return cls(events=tuple(events), stream=obj.get("stream", "faults"))

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_jsonable(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_jsonable(json.loads(text))

    @classmethod
    def from_json_file(cls, path: str) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_jsonable(json.load(handle))

    # -- sweepable axes --------------------------------------------------

    def with_overrides(self, **overrides) -> "FaultPlan":
        """Rewrite every ``Perturbation`` entry with the given axis
        values (``perturb_start``/``perturb_stop``/``period_s``/
        ``link_fraction``/``latency_scale_max``) so fault intensity
        can be swept by ``repro.exp``. Unknown keys raise."""
        unknown = set(overrides) - set(PLAN_OVERRIDE_KEYS)
        if unknown:
            raise FaultPlanError(
                f"unknown fault plan override(s) {sorted(unknown)}; "
                f"valid: {list(PLAN_OVERRIDE_KEYS)}"
            )
        events = []
        for event in self.events:
            if isinstance(event, Perturbation):
                changes = {}
                if "perturb_start" in overrides:
                    changes["start_s"] = float(overrides["perturb_start"])
                if "perturb_stop" in overrides:
                    changes["stop_s"] = float(overrides["perturb_stop"])
                if "period_s" in overrides:
                    changes["period_s"] = float(overrides["period_s"])
                if "link_fraction" in overrides:
                    changes["link_fraction"] = float(overrides["link_fraction"])
                if "latency_scale_max" in overrides:
                    low = event.latency_scale[0]
                    changes["latency_scale"] = (
                        low, float(overrides["latency_scale_max"])
                    )
                event = replace(event, **changes)
            events.append(event)
        return replace(self, events=tuple(events))

    # -- validation & lookahead support ---------------------------------

    def validate(self, topology) -> None:
        """Check every referenced link/node exists and every time and
        range is sane. Raises :class:`FaultPlanError` (never a
        ``KeyError`` later, mid-run)."""
        links = topology.links
        for position, event in enumerate(self.events):
            where = f"events[{position}] ({_KIND_OF[type(event)]})"
            if isinstance(event, (LinkDown, LinkUp)):
                if event.time_s < 0:
                    raise FaultPlanError(f"{where}: negative time {event.time_s}")
                if event.link_id not in links:
                    raise FaultPlanError(f"{where}: unknown link {event.link_id}")
            elif isinstance(event, SetLinkParams):
                if event.time_s < 0:
                    raise FaultPlanError(f"{where}: negative time {event.time_s}")
                if event.link_id not in links:
                    raise FaultPlanError(f"{where}: unknown link {event.link_id}")
                if not event.params():
                    raise FaultPlanError(f"{where}: no parameters to set")
                if event.latency_s is not None and event.latency_s < 0:
                    raise FaultPlanError(
                        f"{where}: negative latency {event.latency_s}"
                    )
            elif isinstance(event, NodeChurn):
                if event.time_s < 0:
                    raise FaultPlanError(f"{where}: negative time {event.time_s}")
                if not topology.links_of(event.node_id):
                    raise FaultPlanError(
                        f"{where}: node {event.node_id} has no links"
                    )
            elif isinstance(event, Partition):
                if event.time_s < 0:
                    raise FaultPlanError(f"{where}: negative time {event.time_s}")
                if not event.link_ids:
                    raise FaultPlanError(f"{where}: empty cut set")
                for link_id in event.link_ids:
                    if link_id not in links:
                        raise FaultPlanError(f"{where}: unknown link {link_id}")
                if event.heal_s is not None and event.heal_s < event.time_s:
                    raise FaultPlanError(
                        f"{where}: heal_s {event.heal_s} precedes cut"
                    )
            elif isinstance(event, Perturbation):
                if event.period_s <= 0:
                    raise FaultPlanError(f"{where}: period must be positive")
                if event.stop_s < event.start_s:
                    raise FaultPlanError(f"{where}: stop precedes start")
                if not 0.0 < event.link_fraction <= 1.0:
                    raise FaultPlanError(
                        f"{where}: link_fraction {event.link_fraction} "
                        f"outside (0, 1]"
                    )
                for link_id in event.link_ids:
                    if link_id not in links:
                        raise FaultPlanError(f"{where}: unknown link {link_id}")
            else:
                raise FaultPlanError(f"{where}: unsupported event {event!r}")

    def min_latency(self, topology) -> Dict[int, float]:
        """Per plan-touched link, the minimum latency the timeline can
        reach. This is what the lookahead matrix must be derived from
        — a bound derived from bind-time latencies alone would break
        causality the moment the timeline lowers one."""
        minimums: Dict[int, float] = {}

        def fold(link_id: int, value: float) -> None:
            current = minimums.get(link_id)
            minimums[link_id] = value if current is None else min(current, value)

        for event in self.events:
            if isinstance(event, SetLinkParams) and event.latency_s is not None:
                fold(event.link_id, event.latency_s)
            elif isinstance(event, Perturbation):
                low = min(1.0, min(event.latency_scale))
                if low >= 1.0:
                    continue
                targets = event.link_ids or tuple(sorted(topology.links))
                for link_id in targets:
                    base = topology.links[link_id].latency_s
                    # Scales apply to the (possibly SetLinkParams-set)
                    # snapshot; fold both the base and any explicit
                    # value already seen for this link.
                    explicit = minimums.get(link_id, base)
                    fold(link_id, min(base, explicit) * low)
        return minimums
