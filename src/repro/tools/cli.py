"""repro-net: the topology toolbox.

The paper's Create phase "includes filters to convert all of these
formats to GML" and lets users annotate graphs with attributes their
source lacks. This CLI provides those offline steps:

.. code-block:: sh

    repro-net generate ring --routers 20 --vns 20 -o ring.gml
    repro-net generate transit-stub --seed 3 -o ts.gml
    repro-net info ts.gml
    repro-net annotate ts.gml --seed 1 -o annotated.gml
    repro-net distill ring.gml --mode last-mile -o distilled.gml
    repro-net route ts.gml --src 40 --dst 90
    repro-net run ts.gml --cores 2 --flows 8 --report out.json
    repro-net run ts.gml --cores 4 --backend multiprocess --workers 2
    repro-net run ts.gml --checkpoint-every 0.25 --checkpoint run.ckpt --max-events 100000
    repro-net run --resume run.ckpt --expect-digests examples/dumbbell.digests.json
    repro-net check src/
    repro-net sanitize examples/dumbbell.gml --seeds 1,2,3
    repro-net sanitize ring8.gml --cores 4 --backend multiprocess
    repro-net bench --profile short
    repro-net bench --compare old/BENCH_dumbbell_netperf.json BENCH_dumbbell_netperf.json
    repro-net exp ls
    repro-net exp run fig4 --quick
    repro-net exp report fig4
    repro-net exp resume fig8
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import DISTILL_MODES
from repro.core.distill import DistillationMode, distill
from repro.core.kernel import KERNELS
from repro.engine.randomness import RngRegistry
from repro.faults import FaultPlanError
from repro.routing import CachedRouting, route_latency
from repro.topology import (
    LinkKind,
    annotate_links,
    classify_link,
    dumbbell_topology,
    load_gml,
    ring_topology,
    save_gml,
    star_topology,
    transit_stub_topology,
    TransitStubSpec,
    waxman_topology,
)
from repro.topology.annotate import LinkClassParams

_MODES = DISTILL_MODES


def _cmd_generate(args) -> int:
    rng = RngRegistry(args.seed).stream("generate")
    if args.shape == "ring":
        topology = ring_topology(num_routers=args.routers, vns_per_router=args.vns)
    elif args.shape == "star":
        topology = star_topology(args.vns)
    elif args.shape == "dumbbell":
        topology = dumbbell_topology(clients_per_side=args.vns)
    elif args.shape == "waxman":
        topology = waxman_topology(args.routers, rng, clients_per_router=args.vns)
    elif args.shape == "transit-stub":
        topology = transit_stub_topology(
            TransitStubSpec(
                transit_nodes_per_domain=args.routers,
                clients_per_stub_node=max(1, args.vns),
            ),
            rng,
        )
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.shape)
    save_gml(topology, args.output)
    print(f"wrote {topology.num_nodes} nodes / {topology.num_links} links to {args.output}")
    return 0


def _cmd_info(args) -> int:
    topology = load_gml(args.input)
    print(f"name:    {topology.name}")
    print(f"nodes:   {topology.num_nodes} ({len(topology.clients())} clients)")
    print(f"links:   {topology.num_links}")
    print(f"connected: {topology.is_connected()}")
    by_class = {}
    for link in topology.links.values():
        by_class.setdefault(classify_link(topology, link), []).append(link)
    for link_class, links in sorted(by_class.items(), key=lambda kv: kv[0].value):
        bandwidths = sorted(l.bandwidth_bps for l in links)
        print(
            f"  {link_class.value:>16}: {len(links):>5} links, "
            f"bw {bandwidths[0]/1e6:g}-{bandwidths[-1]/1e6:g} Mb/s"
        )
    return 0


def _cmd_annotate(args) -> int:
    topology = load_gml(args.input)
    params = {
        LinkKind.TRANSIT_TRANSIT: LinkClassParams(
            bandwidth_bps=(args.transit_bw * 1e6,) * 2,
            latency_s=(0.050, 0.050),
            cost=(20, 40),
        ),
        LinkKind.STUB_TRANSIT: LinkClassParams(
            bandwidth_bps=(args.stub_bw * 1e6,) * 2,
            latency_s=(0.010, 0.010),
            cost=(10, 20),
        ),
        LinkKind.STUB_STUB: LinkClassParams(
            bandwidth_bps=(args.stub_bw * 1e6,) * 2,
            latency_s=(0.005, 0.005),
            cost=(1, 5),
        ),
        LinkKind.CLIENT_STUB: LinkClassParams(
            bandwidth_bps=(args.client_bw * 1e6,) * 2,
            latency_s=(0.001, 0.001),
        ),
    }
    count = annotate_links(topology, params, RngRegistry(args.seed).stream("annotate"))
    save_gml(topology, args.output)
    print(f"annotated {count} links -> {args.output}")
    return 0


def _cmd_distill(args) -> int:
    topology = load_gml(args.input)
    mode = _MODES[args.mode]
    result = distill(topology, mode, walk_in=args.walk_in, walk_out=args.walk_out)
    save_gml(result.topology, args.output)
    print(
        f"{args.mode}: {result.total_pipes} pipes "
        f"(preserved {result.preserved_links}, mesh {result.mesh_links}, "
        f"collapsed {result.collapsed_links}) -> {args.output}"
    )
    return 0


def _cmd_route(args) -> int:
    topology = load_gml(args.input)
    routing = CachedRouting(topology)
    route = routing.route(args.src, args.dst)
    if route is None:
        print(f"no route from {args.src} to {args.dst}")
        return 1
    path = [str(args.src)] + [str(hop.dst) for hop in route]
    print(" -> ".join(path))
    print(f"{len(route)} hops, {route_latency(route) * 1e3:.2f} ms")
    return 0


def _cmd_emulate(args) -> int:
    """Deprecated alias: the Run phase lives in ``repro-net run``."""
    print(
        "warning: 'repro-net emulate' is deprecated and will be removed; "
        "use 'repro-net run' (same topology/flows/seconds flags, plus "
        "--report/--csv/--out-dir for the RunReport)",
        file=sys.stderr,
    )
    return main([
        "run", args.input,
        "--mode", args.mode,
        "--walk-in", str(args.walk_in),
        "--cores", str(args.cores),
        "--hosts", str(max(1, args.cores)),
        "--flows", str(args.flows),
        "--seconds", str(args.seconds),
        "--seed", str(args.seed),
    ])


def _resolve_report_paths(out_dir, report=None, csv=None, basename="report"):
    """One rule for where run artifacts land, shared by run/bench/exp:
    explicit paths win; otherwise ``--out-dir`` (created on demand)
    supplies ``<out-dir>/<basename>.json`` and ``.csv``."""
    import os

    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        if report is None:
            report = os.path.join(out_dir, f"{basename}.json")
        if csv is None:
            csv = os.path.join(out_dir, f"{basename}.csv")
    return report, csv


def _emit_report(args, report) -> None:
    args.report, args.csv = _resolve_report_paths(
        getattr(args, "out_dir", None), args.report, args.csv
    )
    if args.report:
        report.save(args.report)
        print(f"wrote {args.report}")
    if args.csv:
        report.save_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.report or args.csv:
        print(report.summary())
    else:
        print(report.to_json())


def _cmd_run(args) -> int:
    """The Run phase: drive a Scenario over a GML topology and emit
    its RunReport. With --resume/--checkpoint-every/--max-* the
    supervised (resilient) run path applies; budget aborts save the
    partial report and exit 3."""
    import json

    from repro.api import Scenario
    from repro.resilience import (
        CheckpointDivergence,
        CheckpointError,
        RunAborted,
    )

    if args.resume:
        try:
            scenario = Scenario.from_checkpoint(args.resume)
        except CheckpointError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        if args.seconds is None:
            args.seconds = 3.0
        if not args.input:
            print(
                "error: a GML topology is required unless --resume is given",
                file=sys.stderr,
            )
            return 2
        scenario = (
            Scenario.from_gml(args.input)
            .distill(args.mode, walk_in=args.walk_in, walk_out=args.walk_out)
            .assign(args.cores)
            .bind(args.hosts)
            .seed(args.seed)
            .netperf(flows=args.flows)
            .backend(
                args.backend,
                domains=args.domains,
                workers=args.workers,
                kernel=args.kernel,
            )
        )
    if getattr(args, "fault_plan", None):
        from repro.faults import FaultPlan, FaultPlanError

        try:
            scenario.faults(FaultPlan.from_json_file(args.fault_plan))
        except (OSError, ValueError, FaultPlanError) as error:
            print(f"error: bad fault plan: {error}", file=sys.stderr)
            return 2
    if args.reference:
        scenario.config(reference=True)
    if args.no_obs:
        scenario.observe(False)
    resilient = args.resume or args.expect_digests or any(
        value is not None
        for value in (
            args.checkpoint_every, args.checkpoint, args.max_wall,
            args.max_rss, args.max_events, args.epoch_timeout, args.retries,
        )
    ) or args.no_degrade
    if resilient:
        scenario.resilience(
            checkpoint_every=args.checkpoint_every,
            checkpoint=args.checkpoint,
            max_wall=args.max_wall,
            max_rss_mb=args.max_rss,
            max_events=args.max_events,
            epoch_timeout=args.epoch_timeout,
            retries=args.retries,
            degrade=False if args.no_degrade else None,
        )
    try:
        report = scenario.run(until=args.seconds)
    except FaultPlanError as error:
        # Unknown links / lookahead-floor violations are detected when
        # the plan is installed against the built topology.
        print(f"error: bad fault plan: {error}", file=sys.stderr)
        return 2
    except RunAborted as abort:
        # A budget abort is an *orderly* exit: the partial report (with
        # run.outcome and the resilience counters) is still emitted.
        if abort.report is not None:
            _emit_report(args, abort.report)
        print(f"run aborted: {abort.reason}", file=sys.stderr)
        return 3
    except CheckpointDivergence as error:
        print(f"resume diverged from checkpoint: {error}", file=sys.stderr)
        return 4
    _emit_report(args, report)
    if args.expect_digests:
        with open(args.expect_digests) as handle:
            expected = {
                int(key): value
                for key, value in json.load(handle).items()
                if not key.startswith("_")
            }
        digest = report.metrics.get("run.digest")
        want = expected.get(scenario._seed)
        if want is None:
            print(
                f"error: no baseline digest for seed {scenario._seed} "
                f"in {args.expect_digests}",
                file=sys.stderr,
            )
            return 2
        if digest != want:
            print(
                f"seed {scenario._seed}: DIGEST DRIFT — got "
                f"{str(digest)[:16]}, baseline {want[:16]} "
                f"({args.expect_digests})"
            )
            return 1
        print(f"digest matches baseline for seed {scenario._seed}")
    return 0


def _cmd_import(args) -> int:
    from repro.topology.importers import (
        attach_clients,
        from_adjacency_list,
        from_bgp_paths,
    )

    with open(args.input) as handle:
        text = handle.read()
    if args.format == "caida":
        topology = from_adjacency_list(text)
    else:
        topology = from_bgp_paths(text)
    if args.clients > 0:
        attach_clients(
            topology, args.clients, RngRegistry(args.seed).stream("import"),
            edge_degree_at_most=3,
        )
    save_gml(topology, args.output)
    print(
        f"imported {topology.num_nodes} nodes / {topology.num_links} links "
        f"({len(topology.clients())} clients) -> {args.output}"
    )
    return 0


def _cmd_check(args) -> int:
    """Static analysis: determinism (DET/NED/ROB), cross-domain safety
    (DOM/EPO), and spec portability (PORT) families.

    Exit codes: 0 clean, 1 violations found, 2 usage error (no paths,
    unknown --select token, unreadable input). Warnings (unused
    suppressions, stale baseline entries) never affect the exit code.
    """
    import json
    import os

    from repro.check.model import (
        check_paths,
        format_violation,
        load_baseline,
        registered_rules,
        resolve_select,
    )

    if args.list_rules:
        for rule, (tag, description) in sorted(registered_rules().items()):
            print(f"{rule}  (# repro: allow-{tag})")
            print(f"    {description}")
        return 0
    if not args.paths:
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return 2
    select = None
    if args.select:
        select = [
            token for part in args.select for token in part.split(",")
        ]
        try:
            resolve_select(select)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    baseline = []
    baseline_path = args.baseline
    if baseline_path is None and os.path.exists("check-baseline.toml"):
        baseline_path = "check-baseline.toml"
    if baseline_path and not args.no_baseline:
        baseline = load_baseline(baseline_path)
    try:
        report = check_paths(args.paths, select=select, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        payload = {
            "format": "repro-check/1",
            "files": report.files,
            "clean": report.clean,
            "baselined": report.baselined,
            "violations": [
                {
                    "rule": v.rule, "path": v.path, "line": v.line,
                    "col": v.col, "message": v.message,
                }
                for v in report.violations
            ],
            "warnings": [
                {
                    "rule": w.rule, "path": w.path, "line": w.line,
                    "col": w.col, "message": w.message,
                }
                for w in report.warnings
            ],
            "errors": [
                {"path": path, "message": message}
                for path, message in report.errors
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if report.clean else 1

    for path, message in report.errors:
        print(f"{path}: parse error: {message}", file=sys.stderr)
    for violation in report.violations:
        print(format_violation(violation))
    for warning in report.warnings:
        print(f"warning: {format_violation(warning)}")
    suffix = (
        f" ({report.baselined} baselined suppression(s))"
        if report.baselined
        else ""
    )
    if not report.clean:
        count = len(report.violations) + len(report.errors)
        print(f"{count} violation(s){suffix}")
        return 1
    print(f"clean: no determinism violations{suffix}")
    return 0


def _cmd_sanitize(args) -> int:
    """Run a scenario twice per seed and diff the event digests."""
    import json

    from repro.api import Scenario
    from repro.check import sanitize_scenario, sanitize_scenario_multiprocess

    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    expected = {}
    if args.expect_digests:
        with open(args.expect_digests) as handle:
            expected = {
                int(key): value
                for key, value in json.load(handle).items()
                if not key.startswith("_")
            }

    def make_scenario() -> Scenario:
        scenario = (
            Scenario.from_gml(args.input)
            .distill(args.mode, walk_in=args.walk_in)
            .assign(args.cores)
            .netperf(flows=args.flows)
            .observe(False)
            .backend(
                args.backend,
                domains=args.domains,
                workers=args.workers,
                kernel=args.kernel,
            )
        )
        if args.inject_fault:
            # Declarative fault: survives the spec round trip, so it
            # runs *inside* multiprocess workers too — divergence is
            # detected there, not masked by the parent.
            scenario.inject_fault(args.seconds)
        if getattr(args, "fault_plan", None):
            from repro.faults import FaultPlan

            scenario.faults(FaultPlan.from_json_file(args.fault_plan))
        return scenario

    failures = 0
    for seed in seeds:
        if args.backend == "multiprocess":
            # Vary the worker count across runs: identical digests then
            # prove invariance to how domains are dealt to workers, not
            # just run-to-run repeatability.
            counts = (args.workers, 1) if args.workers else (0, 2)
            result = sanitize_scenario_multiprocess(
                make_scenario,
                until=args.seconds,
                seed=seed,
                runs=args.runs,
                worker_counts=counts,
            )
        else:
            result = sanitize_scenario(
                make_scenario,
                until=args.seconds,
                seed=seed,
                runs=args.runs,
                freeze_packets=args.freeze_packets,
            )
        print(result.summary())
        if not result.identical:
            failures += 1
        elif seed in expected and result.digests[0] != expected[seed]:
            print(
                f"seed {seed}: DIGEST DRIFT — got {result.digests[0][:16]}, "
                f"baseline {expected[seed][:16]} ({args.expect_digests})"
            )
            failures += 1
    if failures:
        print(f"sanitize: {failures}/{len(seeds)} seed(s) failed")
        return 1
    suffix = f" (baseline: {args.expect_digests})" if expected else ""
    print(
        f"sanitize: all {len(seeds)} seed(s) digest-identical "
        f"over {args.runs} runs{suffix}"
    )
    return 0


def _cmd_bench(args) -> int:
    """Run the perf suite, write BENCH_<name>.json manifests, and
    (optionally) embed a baseline or diff two manifests."""
    import os

    from repro.bench import (
        SCENARIOS,
        bench_filename,
        compare_results,
        load_result,
        run_scenario,
        write_result,
    )

    if args.compare:
        old = load_result(args.compare[0])
        new = load_result(args.compare[1])
        findings = compare_results(old, new, threshold=args.threshold)
        regressed = False
        for finding in findings:
            print(f"{finding.scenario}: [{finding.kind}] {finding.message}")
            regressed = regressed or finding.is_regression
        if regressed:
            print("bench: REGRESSION beyond noise threshold")
            return 1
        print("bench: no regression")
        return 0

    names = args.scenario or sorted(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(
            f"error: unknown scenario(s) {unknown}; "
            f"valid: {', '.join(sorted(SCENARIOS))}",
            file=sys.stderr,
        )
        return 2
    _resolve_report_paths(args.out_dir)  # shared out-dir handling
    exit_code = 0
    for name in names:
        try:
            result = run_scenario(
                name,
                profile=args.profile,
                seed=args.seed,
                repeats=args.repeats,
                backend=args.backend,
                domains=args.domains,
                workers=args.workers,
                kernel=args.kernel,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if args.baseline:
            baseline_path = args.baseline
            if os.path.isdir(baseline_path):
                baseline_path = os.path.join(baseline_path, bench_filename(name))
            if os.path.exists(baseline_path):
                result.set_baseline(load_result(baseline_path), baseline_path)
            else:
                print(f"warning: no baseline manifest at {baseline_path}")
        path = write_result(result, args.out_dir)
        print(result.summary())
        print(f"wrote {path}")
    return exit_code


def _cmd_exp_run(args) -> int:
    """Execute a suite's run matrix (``exp resume`` = skip completed)."""
    import os

    from repro.exp import aggregate_suite, get_suite, run_sweep

    try:
        experiment = get_suite(args.suite)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = run_sweep(
        experiment,
        out_dir=args.out_dir,
        quick=args.quick,
        workers=args.workers,
        limit=args.limit,
        resume=args.resume,
        retries=args.retries,
        max_wall=args.max_wall,
        run_max_wall=args.run_max_wall,
        run_max_events=args.run_max_events,
        log=print,
    )
    print(result.summary())
    if result.complete:
        dataset = aggregate_suite(experiment, out_dir=args.out_dir)
        paths = dataset.save(os.path.join(args.out_dir, experiment.name))
        print(f"wrote {paths['csv']}")
        print(f"wrote {paths['json']}")
    if result.aborted:
        return 3
    return 1 if result.failed else 0


def _cmd_exp_report(args) -> int:
    """Aggregate a suite's completed reports into its dataset."""
    import os

    from repro.exp import aggregate_suite, get_suite

    try:
        experiment = get_suite(args.suite)
        dataset = aggregate_suite(experiment, out_dir=args.out_dir)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    paths = dataset.save(os.path.join(args.out_dir, experiment.name))
    print(dataset.summary())
    print(f"wrote {paths['csv']}")
    print(f"wrote {paths['json']}")
    if not dataset.complete:
        print(
            "warning: dataset has missing runs; "
            f"`repro-net exp resume {args.suite}` completes them",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_exp_ls(args) -> int:
    """List registered suites, or one suite's per-run progress."""
    import json
    import os

    from repro.exp import SUITES, load_manifest, report_path

    if not args.suite:
        for name in sorted(SUITES):
            experiment = SUITES[name]
            runs = len(experiment.matrix())
            print(f"{name:>8}: {runs:>3} runs  {experiment.description}")
        return 0
    try:
        manifest = load_manifest(args.out_dir, args.suite)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    done = 0
    for run_id in manifest["run_ids"]:
        path = report_path(args.out_dir, args.suite, run_id)
        status = "missing"
        try:
            with open(path) as handle:
                if json.load(handle).get("labels", {}).get("run_id") == run_id:
                    status = "ok"
                    done += 1
        except (OSError, ValueError):
            pass
        print(f"  {run_id}: {status}")
    total = len(manifest["run_ids"])
    variant = " (quick)" if manifest.get("quick") else ""
    print(f"{args.suite}{variant}: {done}/{total} complete")
    return 0 if done == total else 1


def _add_backend_flags(parser, default_backend="serial") -> None:
    """``--backend/--domains/--workers``: select the execution engine
    (shared by the run/sanitize/bench subcommands)."""
    parser.add_argument(
        "--backend", choices=["serial", "multiprocess"],
        default=default_backend,
        help="execution backend (default: %(default)s)",
    )
    parser.add_argument(
        "--domains", type=int, default=None,
        help="event domains (default: 1 serial, one per core multiprocess)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="multiprocess worker processes (default: one per domain)",
    )
    parser.add_argument(
        "--kernel", choices=sorted(KERNELS), default=None,
        help="pipe hot-core kernel (default: batched); all kernels "
        "dispatch digest-identical event streams",
    )


def build_parser() -> argparse.ArgumentParser:
    """The repro-net argument parser (one subcommand per phase tool)."""
    parser = argparse.ArgumentParser(
        prog="repro-net", description="ModelNet topology toolbox"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a topology as GML")
    generate.add_argument(
        "shape",
        choices=["ring", "star", "dumbbell", "waxman", "transit-stub"],
    )
    generate.add_argument("--routers", type=int, default=10)
    generate.add_argument("--vns", type=int, default=4)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("-o", "--output", required=True)
    generate.set_defaults(func=_cmd_generate)

    info = sub.add_parser("info", help="summarize a GML topology")
    info.add_argument("input")
    info.set_defaults(func=_cmd_info)

    annotate = sub.add_parser("annotate", help="assign link attributes by class")
    annotate.add_argument("input")
    annotate.add_argument("--seed", type=int, default=0)
    annotate.add_argument("--transit-bw", type=float, default=155.0, help="Mb/s")
    annotate.add_argument("--stub-bw", type=float, default=45.0, help="Mb/s")
    annotate.add_argument("--client-bw", type=float, default=2.0, help="Mb/s")
    annotate.add_argument("-o", "--output", required=True)
    annotate.set_defaults(func=_cmd_annotate)

    distill_cmd = sub.add_parser("distill", help="distill a topology")
    distill_cmd.add_argument("input")
    distill_cmd.add_argument("--mode", choices=sorted(_MODES), default="last-mile")
    distill_cmd.add_argument("--walk-in", type=int, default=1)
    distill_cmd.add_argument("--walk-out", type=int, default=0)
    distill_cmd.add_argument("-o", "--output", required=True)
    distill_cmd.set_defaults(func=_cmd_distill)

    route = sub.add_parser("route", help="shortest path between two nodes")
    route.add_argument("input")
    route.add_argument("--src", type=int, required=True)
    route.add_argument("--dst", type=int, required=True)
    route.set_defaults(func=_cmd_route)

    import_cmd = sub.add_parser(
        "import", help="convert CAIDA/BGP text formats to GML"
    )
    import_cmd.add_argument("input")
    import_cmd.add_argument(
        "--format", choices=["caida", "bgp"], default="caida"
    )
    import_cmd.add_argument(
        "--clients", type=int, default=0,
        help="clients to attach per edge AS (0 = none)",
    )
    import_cmd.add_argument("--seed", type=int, default=0)
    import_cmd.add_argument("-o", "--output", required=True)
    import_cmd.set_defaults(func=_cmd_import)

    emulate = sub.add_parser(
        "emulate",
        help="(deprecated) alias for `run` — use `repro-net run`",
    )
    emulate.add_argument("input")
    emulate.add_argument("--mode", choices=sorted(_MODES), default="hop-by-hop")
    emulate.add_argument("--walk-in", type=int, default=1)
    emulate.add_argument("--cores", type=int, default=1)
    emulate.add_argument("--flows", type=int, default=4)
    emulate.add_argument("--seconds", type=float, default=3.0)
    emulate.add_argument("--seed", type=int, default=0)
    emulate.set_defaults(func=_cmd_emulate)

    run = sub.add_parser(
        "run",
        help="run a Scenario over a GML topology and emit its RunReport",
    )
    run.add_argument(
        "input", nargs="?", default=None,
        help="GML topology (optional with --resume)",
    )
    run.add_argument("--mode", choices=sorted(_MODES), default="hop-by-hop")
    run.add_argument("--walk-in", type=int, default=1)
    run.add_argument("--walk-out", type=int, default=0)
    run.add_argument("--cores", type=int, default=1)
    run.add_argument("--hosts", type=int, default=1)
    run.add_argument(
        "--seconds", type=float, default=None,
        help="virtual seconds to run (default 3.0; --resume defaults "
        "to the checkpointed run's target)",
    )
    run.add_argument("--flows", type=int, default=4)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--fault-plan", default=None, metavar="JSON",
        help="declarative fault timeline (FaultPlan JSON): link "
        "down/up, parameter timelines, node churn, partitions, "
        "recurring perturbations — applied identically on every "
        "backend and kernel",
    )
    _add_backend_flags(run)
    run.add_argument(
        "--reference", action="store_true",
        help="exact-time, infinite-hardware configuration",
    )
    run.add_argument(
        "--no-obs", action="store_true",
        help="disable hot-path observability (null registry)",
    )
    run.add_argument("--report", help="write the RunReport JSON here")
    run.add_argument("--csv", help="write the metrics as CSV here")
    run.add_argument(
        "--out-dir", default=None,
        help="directory for report.json/report.csv (explicit "
        "--report/--csv paths win)",
    )
    resilience = run.add_argument_group(
        "resilience",
        "supervised execution: checkpoints, budget guards, recovery "
        "(any of these flags enables the resilient run path)",
    )
    resilience.add_argument(
        "--checkpoint-every", type=float, default=None, metavar="VSEC",
        help="write a checkpoint every VSEC virtual seconds",
    )
    resilience.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="checkpoint file path (default: <scenario>.ckpt)",
    )
    resilience.add_argument(
        "--resume", default=None, metavar="CKPT",
        help="resume from a checkpoint: replay to its barrier, verify "
        "digests, then continue",
    )
    resilience.add_argument(
        "--max-wall", type=float, default=None, metavar="SEC",
        help="abort after SEC wall-clock seconds (exit 3)",
    )
    resilience.add_argument(
        "--max-rss", type=float, default=None, metavar="MB",
        help="abort when resident memory exceeds MB megabytes (exit 3)",
    )
    resilience.add_argument(
        "--max-events", type=int, default=None,
        help="abort after this many dispatched events (exit 3)",
    )
    resilience.add_argument(
        "--epoch-timeout", type=float, default=None, metavar="SEC",
        help="declare a multiprocess worker hung after SEC seconds "
        "without an epoch reply (default 30)",
    )
    resilience.add_argument(
        "--retries", type=int, default=None,
        help="recovery attempts per worker before escalation (default 2)",
    )
    resilience.add_argument(
        "--no-degrade", action="store_true",
        help="on escalation, fail instead of degrading multiprocess "
        "to serial partitioned execution",
    )
    resilience.add_argument(
        "--expect-digests", metavar="JSON",
        help="JSON file mapping seed -> expected digest; compare "
        "run.digest and fail on drift",
    )
    run.set_defaults(func=_cmd_run)

    check = sub.add_parser(
        "check",
        help="static analysis: determinism (DET/NED/ROB), domain "
        "safety (DOM/EPO), spec portability (PORT)",
        description="Exit codes: 0 clean, 1 violations, 2 usage error.",
    )
    check.add_argument("paths", nargs="*", help="files or directories to lint")
    check.add_argument(
        "--select", action="append", metavar="RULES",
        help="comma-separated rule ids or family prefixes to run "
        "(e.g. DOM,PORT,EPO or DET001); default: all families",
    )
    check.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json prints a repro-check/1 report)",
    )
    check.add_argument(
        "--baseline",
        help="baseline TOML (default: ./check-baseline.toml when present)",
    )
    check.add_argument(
        "--no-baseline", action="store_true",
        help="report baselined violations too",
    )
    check.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    check.set_defaults(func=_cmd_check)

    sanitize = sub.add_parser(
        "sanitize",
        help="run a scenario twice per seed and diff the event digests",
    )
    sanitize.add_argument("input", help="GML topology to drive")
    sanitize.add_argument("--seeds", default="1,2,3", help="comma-separated")
    sanitize.add_argument("--runs", type=int, default=2, help="runs per seed")
    sanitize.add_argument("--mode", choices=sorted(_MODES), default="hop-by-hop")
    sanitize.add_argument("--walk-in", type=int, default=1)
    sanitize.add_argument("--cores", type=int, default=1)
    sanitize.add_argument("--flows", type=int, default=4)
    sanitize.add_argument("--seconds", type=float, default=1.0)
    _add_backend_flags(sanitize)
    sanitize.add_argument(
        "--expect-digests",
        help="JSON file mapping seed -> expected digest; fail on drift",
    )
    sanitize.add_argument(
        "--freeze-packets", action="store_true",
        help="raise on packet mutation after pipe enqueue",
    )
    sanitize.add_argument(
        "--inject-fault", action="store_true",
        help="add an unseeded-RNG traffic source (sanitizer self-test)",
    )
    sanitize.add_argument(
        "--fault-plan", default=None, metavar="JSON",
        help="declarative fault timeline (FaultPlan JSON) to apply "
        "during every sanitized run",
    )
    sanitize.set_defaults(func=_cmd_sanitize)

    bench = sub.add_parser(
        "bench",
        help="run the perf suite and write BENCH_<name>.json manifests",
    )
    bench.add_argument(
        "--scenario", action="append",
        help="scenario name (repeatable; default: all)",
    )
    bench.add_argument(
        "--profile", choices=["short", "full"], default="short",
        help="workload size (short for CI smoke, full for real numbers)",
    )
    bench.add_argument("--seed", type=int, default=None, help="override the fixed seed")
    bench.add_argument(
        "--repeats", type=int, default=1,
        help="run each scenario N times and keep the fastest "
        "(best-of-N; repeats must be digest-identical)",
    )
    _add_backend_flags(bench, default_backend=None)
    bench.add_argument(
        "--out-dir", default=".",
        help="where to write BENCH_<name>.json (default: repo root / cwd)",
    )
    bench.add_argument(
        "--baseline",
        help="prior BENCH json (or a directory of them) to embed as "
        "before/after evidence",
    )
    bench.add_argument(
        "--compare", nargs=2, metavar=("OLD", "NEW"),
        help="diff two BENCH manifests and exit 1 on regression",
    )
    bench.add_argument(
        "--threshold", type=float, default=0.10,
        help="fractional events/sec noise band for --compare (default 0.10)",
    )
    bench.set_defaults(func=_cmd_bench)

    exp = sub.add_parser(
        "exp",
        help="declarative experiment suites: run sweeps, aggregate "
        "paper-figure datasets",
    )
    exp_sub = exp.add_subparsers(dest="exp_command", required=True)

    def _exp_sweep_flags(parser) -> None:
        parser.add_argument("suite", help="suite name (see `exp ls`)")
        parser.add_argument(
            "--quick", action="store_true",
            help="CI-sized matrix and horizon",
        )
        parser.add_argument(
            "--out-dir", default="results",
            help="results root (default: %(default)s)",
        )
        parser.add_argument(
            "--workers", type=int, default=1,
            help="concurrent runs (<=1 = inline, deterministic order)",
        )
        parser.add_argument(
            "--limit", type=int, default=None,
            help="stop after N executed runs (deterministic interruption)",
        )
        parser.add_argument(
            "--retries", type=int, default=2,
            help="attempts per run before it is recorded as failed",
        )
        parser.add_argument(
            "--max-wall", type=float, default=None, metavar="SEC",
            help="sweep-level wall budget; exceeding it exits 3",
        )
        parser.add_argument(
            "--run-max-wall", type=float, default=None, metavar="SEC",
            help="per-run wall budget (supervised run path)",
        )
        parser.add_argument(
            "--run-max-events", type=int, default=None,
            help="per-run event budget (supervised run path)",
        )

    exp_run = exp_sub.add_parser(
        "run", help="execute a suite's run matrix"
    )
    _exp_sweep_flags(exp_run)
    exp_run.add_argument(
        "--resume", action="store_true",
        help="skip run ids whose reports already exist",
    )
    exp_run.set_defaults(func=_cmd_exp_run)

    exp_resume = exp_sub.add_parser(
        "resume", help="complete an interrupted sweep (skip finished runs)"
    )
    _exp_sweep_flags(exp_resume)
    exp_resume.set_defaults(func=_cmd_exp_run, resume=True)

    exp_report = exp_sub.add_parser(
        "report", help="fold a suite's reports into dataset.csv/json"
    )
    exp_report.add_argument("suite")
    exp_report.add_argument("--out-dir", default="results")
    exp_report.set_defaults(func=_cmd_exp_report)

    exp_ls = exp_sub.add_parser(
        "ls", help="list suites, or one suite's run statuses"
    )
    exp_ls.add_argument("suite", nargs="?", default=None)
    exp_ls.add_argument("--out-dir", default="results")
    exp_ls.set_defaults(func=_cmd_exp_ls)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
