"""Command-line tools for the Create and Distill phases."""

from repro.tools.cli import main

__all__ = ["main"]
