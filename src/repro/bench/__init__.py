"""Performance harness: reproducible hot-path throughput numbers.

The paper's central scalability claim is core capacity in packets per
second (Fig. 4, Table 1); this package is the repo's own version of
that discipline. Each benchmark scenario runs a *fixed-seed* workload,
measures the event loop (events/sec), the virtual forwarding plane
(virtual packets/sec), wall time, peak RSS, and a per-phase breakdown,
and writes a machine-readable ``BENCH_<name>.json`` manifest so any
two commits can be compared without screen-scraping.

Entry points:

* ``repro-net bench`` — run the suite, write manifests, optionally
  embed a baseline for before/after evidence;
* ``repro-net bench --compare OLD NEW`` — diff two manifests and flag
  regressions beyond a noise threshold;
* :func:`repro.bench.run_scenario` / :data:`repro.bench.SCENARIOS` —
  the programmatic interface used by ``benchmarks/perf/``.
"""

from repro.bench.harness import (
    BENCH_SCHEMA,
    BenchResult,
    bench_filename,
    compare_results,
    load_result,
    write_result,
)
from repro.bench.scenarios import SCENARIOS, run_scenario

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "SCENARIOS",
    "bench_filename",
    "compare_results",
    "load_result",
    "run_scenario",
    "write_result",
]
