"""The fixed-seed benchmark scenarios.

These workloads cover the hot paths the ROADMAP cares about:

``dumbbell_netperf``
    The canonical shared-bottleneck TCP workload (the same dumbbell
    the determinism CI sanitizes): four netperf streams through one
    core. Exercises the event loop, the pipe scheduler, and the TCP
    stacks together — the primary events/sec figure of merit.

``kernel_dispatch``
    The kernel seam in isolation: self-reposting timers drive the
    dispatch loop (digest armed, no emulation payload). Reports the
    measured kernel's events/sec and, for the optimized kernels, the
    ratio over a scalar reference run of the identical event stream.

``capacity_sweep``
    A scaled-down Fig. 4: netperf flows through private emulated
    chains at several (hops, flows) points, reporting the core's
    forwarded pkts/sec per point. Exercises CPU/NIC modeling and the
    per-hop scheduling cost the paper measures.

``sanitize_smoke``
    The determinism sanitizer's double-run digest over the dumbbell
    (~28k events per run at 1 virtual second): proves the optimized
    hot path still produces byte-identical event streams, and times
    the instrumented (slow-path) event loop.

``multicore_scaling``
    An 8-router ring assigned to 4 cores, run once on the
    serial-partitioned engine and once on the multiprocess backend.
    Reports both backends' events/sec and the wall-clock speedup (or
    slowdown), and cross-checks their composed per-domain digests.

``chaos_recovery``
    The resilience acceptance gate: SIGKILL one multiprocess worker
    mid-run (at the baseline's midpoint epoch) for each of two worker
    counts and require the supervised recovery to reproduce the
    fault-free composed digest and event count exactly.

Every scenario builds its topology in code (no file dependencies), is
seeded, and dispatches an identical event stream for identical
(profile, seed, params) — which is what lets ``--compare`` treat
event-count changes as behavior changes rather than noise.
"""

from __future__ import annotations

import gc
from time import perf_counter
from typing import Callable, Dict, Optional

from repro.bench.harness import BenchResult
from repro.topology.generators import chain_topology, dumbbell_topology

DEFAULT_SEED = 1


def _dumbbell_scenario(seed: int, flows: int, kernel: Optional[str] = None):
    from repro.api import Scenario

    scenario = (
        Scenario.from_topology(dumbbell_topology(3), name="bench-dumbbell")
        .distill("hop-by-hop")
        .assign(1)
        .netperf(flows=flows)
        .observe(False)
        .seed(seed)
    )
    if kernel is not None:
        scenario.config(kernel=kernel)
    return scenario


def dumbbell_netperf(
    profile: str = "short",
    seed: Optional[int] = None,
    kernel: Optional[str] = None,
) -> BenchResult:
    """Bulk TCP through the shared bottleneck: events/sec of the
    uninstrumented event loop (with the native streaming digest
    folded in, so the manifest records what stream was timed)."""
    seed = DEFAULT_SEED if seed is None else seed
    seconds = 30.0 if profile == "short" else 120.0
    flows = 4
    result = BenchResult(
        name="dumbbell_netperf",
        profile=profile,
        seed=seed,
        params={"seconds": seconds, "flows": flows, "clients_per_side": 3},
    )
    scenario = _dumbbell_scenario(seed, flows, kernel)
    t0 = perf_counter()
    emulation = scenario.build()
    build_s = perf_counter() - t0
    sim = emulation.sim
    sim.enable_digest()
    events_before = sim.events_dispatched
    pkts_before = emulation.monitor.packets_entered
    t1 = perf_counter()
    sim.run(until=seconds)
    run_s = perf_counter() - t1
    result.wall_s = run_s
    result.events = sim.events_dispatched - events_before
    result.virtual_pkts = emulation.monitor.packets_entered - pkts_before
    result.virtual_time_s = seconds
    result.phases = {"build_s": round(build_s, 6), "run_s": round(run_s, 6)}
    result.digest = sim.digest_hexdigest()
    result.extras = {
        "packets_delivered": emulation.monitor.packets_delivered,
        "pipe_departures": sum(p.departures for p in emulation.pipes.values()),
        "kernel": sim.kernel,
    }
    return result.finalize()


def kernel_dispatch(
    profile: str = "short",
    seed: Optional[int] = None,
    kernel: Optional[str] = None,
) -> BenchResult:
    """Event-loop throughput of the kernel seam in isolation.

    A ring of self-reposting timers drives the dispatch loop with the
    digest armed and no emulation payload attached — every microsecond
    is loop + heap + digest fold, none is TCP or pipe callbacks. This
    is the scenario where the batched kernel's dispatch-loop half of
    the seam is undiluted: ``dumbbell_netperf`` measures the same seam
    through ~80% shared per-event callback work (see DESIGN.md §7 for
    the decomposition), so its kernel ratio is Amdahl-compressed
    toward 1. When ``kernel`` is not scalar, a scalar reference run of
    the same workload is timed too and the ratio is recorded in
    ``extras["vs_scalar"]`` — the number the bench-smoke CI gates on.
    """
    from repro.engine.simulator import Simulator

    seed = DEFAULT_SEED if seed is None else seed
    events = 400_000 if profile == "short" else 2_000_000
    timers = 8
    kernel = kernel or "batched"

    def timed_run(which: str):
        sim = Simulator(kernel=which)

        def tick(dt: float = 1e-6) -> None:
            sim.post(sim.now + dt, tick)

        # Seed phase offsets so the heap always holds `timers` entries
        # interleaved at distinct (time, seq); the dispatch order (and
        # so the digest) is identical for every kernel.
        for i in range(timers):
            sim.post(i * 1e-7, tick)
        sim.enable_digest()
        t0 = perf_counter()
        sim.run(until=events * 1e-6 / timers)
        wall = perf_counter() - t0
        return sim, wall

    result = BenchResult(
        name="kernel_dispatch",
        profile=profile,
        seed=seed,
        params={"events": events, "timers": timers},
    )
    sim, run_s = timed_run(kernel)
    result.wall_s = run_s
    result.events = sim.events_dispatched
    result.virtual_time_s = sim.now
    result.phases = {"run_s": round(run_s, 6)}
    result.digest = sim.digest_hexdigest()
    result.extras = {"kernel": sim.kernel}
    if kernel != "scalar":
        ref, ref_s = timed_run("scalar")
        if ref.digest_hexdigest() != result.digest:
            raise RuntimeError(
                f"kernel_dispatch: scalar reference digest diverged "
                f"({ref.digest_hexdigest()[:16]} vs {result.digest[:16]})"
            )
        result.phases["scalar_ref_s"] = round(ref_s, 6)
        result.extras["scalar_events_per_s"] = round(ref.events_dispatched / ref_s, 1)
        result.extras["vs_scalar"] = round(
            (result.events / run_s) / (ref.events_dispatched / ref_s), 3
        )
    return result.finalize()


def capacity_sweep(
    profile: str = "short",
    seed: Optional[int] = None,
    kernel: Optional[str] = None,
) -> BenchResult:
    """Fig. 4-style single-core capacity points: pkts/sec forwarded
    at several (hops, flows) operating points."""
    import hashlib

    from repro.apps.netperf import TcpStream
    from repro.core import DistillationMode, EmulationConfig, ExperimentPipeline
    from repro.core.kernel import DEFAULT_KERNEL
    from repro.engine import Simulator
    from repro.hardware.calibration import GIGABIT_EDGE_SPEC

    kernel = DEFAULT_KERNEL if kernel is None else kernel
    seed = DEFAULT_SEED if seed is None else seed
    if profile == "short":
        points = [(1, 24), (1, 96), (8, 48)]
        warm_s, measure_s = 0.25, 0.5
    else:
        points = [(1, 24), (1, 96), (1, 120), (8, 96), (12, 96)]
        warm_s, measure_s = 0.5, 1.0
    result = BenchResult(
        name="capacity_sweep",
        profile=profile,
        seed=seed,
        params={"points": points, "warm_s": warm_s, "measure_s": measure_s},
    )
    build_s = run_s = 0.0
    events = pkts = 0
    virtual = 0.0
    extras: Dict[str, object] = {}
    point_digests = []
    for hops, flows in points:
        t0 = perf_counter()
        sim = Simulator(kernel=kernel)
        sim.enable_digest()
        emulation = (
            ExperimentPipeline(sim, seed=seed)
            .create(chain_topology(flows, hops=hops))
            .distill(DistillationMode.HOP_BY_HOP)
            .assign(1)
            .bind(10)
            .run(
                EmulationConfig(
                    edge_spec=GIGABIT_EDGE_SPEC, seed=seed, kernel=kernel
                )
            )
        )
        streams = [
            TcpStream(emulation, 2 * flow, 2 * flow + 1) for flow in range(flows)
        ]
        build_s += perf_counter() - t0
        t1 = perf_counter()
        sim.run(until=warm_s)
        emulation.monitor.begin_window(sim.now)
        events_before = sim.events_dispatched
        pkts_before = emulation.monitor.packets_entered
        sim.run(until=warm_s + measure_s)
        run_s += perf_counter() - t1
        events += sim.events_dispatched - events_before
        pkts += emulation.monitor.packets_entered - pkts_before
        virtual += measure_s
        extras[f"pps[{hops}h,{flows}f]"] = round(
            emulation.monitor.window_pps(sim.now), 1
        )
        point_digests.append(sim.digest_hexdigest())
        for stream in streams:
            stream.stop()
    result.wall_s = run_s
    result.events = events
    result.virtual_pkts = pkts
    result.virtual_time_s = virtual
    result.phases = {"build_s": round(build_s, 6), "run_s": round(run_s, 6)}
    # One digest over the sweep: fold the per-point stream digests in
    # point order, so any behavior change at any operating point shows.
    result.digest = hashlib.sha256(
        "".join(point_digests).encode()
    ).hexdigest()
    extras["kernel"] = kernel
    result.extras = extras
    return result.finalize()


def sanitize_smoke(
    profile: str = "short",
    seed: Optional[int] = None,
    kernel: Optional[str] = None,
) -> BenchResult:
    """Double-run the dumbbell under the determinism sanitizer: times
    the instrumented dispatch path and proves digests stay identical."""
    from repro.check.sanitize import SimSanitizer

    seed = DEFAULT_SEED if seed is None else seed
    seconds = 1.0 if profile == "short" else 5.0
    flows = 4
    result = BenchResult(
        name="sanitize_smoke",
        profile=profile,
        seed=seed,
        params={"seconds": seconds, "flows": flows, "runs": 2},
    )
    digests = []
    events = pkts = 0
    build_s = run_s = 0.0
    for _run in range(2):
        t0 = perf_counter()
        scenario = _dumbbell_scenario(seed, flows, kernel)
        emulation = scenario.build()
        build_s += perf_counter() - t0
        sanitizer = SimSanitizer().attach(emulation.sim)
        try:
            t1 = perf_counter()
            emulation.sim.run(until=seconds)
            run_s += perf_counter() - t1
        finally:
            sanitizer.detach()
        digests.append(sanitizer.digest)
        events += sanitizer.dispatched
        pkts += emulation.monitor.packets_entered
    if digests[0] != digests[1]:
        raise RuntimeError(
            f"sanitize_smoke: same-seed digests differ "
            f"({digests[0][:16]} vs {digests[1][:16]}) — the hot path "
            f"became nondeterministic"
        )
    result.wall_s = run_s
    result.events = events
    result.virtual_pkts = pkts
    result.virtual_time_s = 2 * seconds
    result.phases = {"build_s": round(build_s, 6), "run_s": round(run_s, 6)}
    result.digest = digests[0]
    result.extras = {"events_per_run": events // 2}
    return result.finalize()


def multicore_scaling(
    profile: str = "short",
    seed: Optional[int] = None,
    backend: Optional[str] = None,
    domains: Optional[int] = None,
    workers: Optional[int] = None,
    kernel: Optional[str] = None,
) -> BenchResult:
    """Serial-partitioned vs multiprocess execution of a 4-core ring:
    the honest speedup (or slowdown) figure for the epoch-synchronized
    engine.

    Each measured backend gets an uninstrumented timing pass and a
    sanitized digest pass; when both backends run (the default) their
    composed per-domain digests must match or the scenario raises.
    ``backend`` restricts the measurement to one backend, ``domains``
    overrides the domain count (capped at the core count), ``workers``
    sets the multiprocess worker-pool size (0 = one per domain).
    """
    from repro.api import Scenario
    from repro.check.sanitize import SimSanitizer
    from repro.engine.parallel import run_multiprocess
    from repro.topology.generators import ring_topology

    seed = DEFAULT_SEED if seed is None else seed
    seconds = 0.5 if profile == "short" else 2.0
    flows, cores = 8, 4
    domains = cores if domains is None else domains
    workers = 0 if workers is None else workers
    if backend in (None, "both"):
        backends = ("serial", "multiprocess")
    elif backend in ("serial", "multiprocess"):
        backends = (backend,)
    else:
        raise ValueError(
            f"unknown backend {backend!r}; valid: serial, multiprocess, both"
        )

    def make(name: str):
        return (
            Scenario.from_topology(
                ring_topology(num_routers=8, vns_per_router=2),
                name="bench-ring8",
            )
            .distill("hop-by-hop")
            .assign(cores)
            .netperf(flows=flows)
            .observe(False)
            .seed(seed)
            .backend(name, domains=domains, workers=workers, kernel=kernel)
        )

    result = BenchResult(
        name="multicore_scaling",
        profile=profile,
        seed=seed,
        params={
            "seconds": seconds, "flows": flows, "cores": cores,
            "domains": domains, "workers": workers,
            "backends": list(backends), "topology": "ring8x2",
        },
    )
    extras_kernel = kernel or "batched"

    build_s = 0.0
    walls: Dict[str, float] = {}
    digests: Dict[str, str] = {}
    events = pkts = 0
    extras: Dict[str, object] = {}
    for name in backends:
        if name == "serial":
            # Timing pass (uninstrumented).
            t0 = perf_counter()
            emulation = make("serial").build()
            build_s += perf_counter() - t0
            sim = emulation.sim
            t1 = perf_counter()
            sim.run(until=seconds)
            walls["serial"] = perf_counter() - t1
            events += sim.events_dispatched
            pkts += emulation.monitor.packets_entered
            # Digest pass (instrumented).
            emulation = make("serial").build()
            sanitizer = SimSanitizer().attach(emulation.sim)
            try:
                emulation.sim.run(until=seconds)
            finally:
                sanitizer.detach()
            digests["serial"] = sanitizer.digest
            extras["serial_events_per_s"] = round(
                sim.events_dispatched / walls["serial"], 1
            )
        else:
            t0 = perf_counter()
            scenario = make("multiprocess")
            emulation = scenario.build()
            build_s += perf_counter() - t0
            mp_timing = run_multiprocess(
                scenario, until=seconds, workers=workers
            )
            scenario = make("multiprocess")
            scenario.build()
            mp_digest = run_multiprocess(
                scenario, until=seconds, workers=workers, sanitize=True
            )
            walls["multiprocess"] = mp_timing.wall_time_s
            digests["multiprocess"] = mp_digest.composed_digest
            events += mp_timing.events_dispatched
            pkts += emulation.monitor.packets_entered
            extras.update(
                multiprocess_events_per_s=round(
                    mp_timing.events_dispatched / mp_timing.wall_time_s, 1
                ),
                epochs=mp_timing.epochs,
                messages_routed=mp_timing.messages_routed,
                workers=mp_timing.workers,
                events_by_domain={
                    str(d): n
                    for d, n in sorted(mp_timing.events_by_domain.items())
                },
            )
    if len(digests) == 2 and digests["serial"] != digests["multiprocess"]:
        raise RuntimeError(
            f"multicore_scaling: multiprocess digest diverged from the "
            f"serial-partitioned engine "
            f"({digests['multiprocess'][:16]} vs {digests['serial'][:16]})"
        )
    if len(walls) == 2:
        extras["speedup"] = round(
            walls["serial"] / walls["multiprocess"], 3
        )
    extras["kernel"] = extras_kernel

    result.wall_s = sum(walls.values())
    result.events = events
    result.virtual_pkts = pkts
    result.virtual_time_s = len(backends) * seconds
    result.phases = {"build_s": round(build_s, 6)}
    for name, wall in walls.items():
        result.phases[f"{name}_run_s"] = round(wall, 6)
    result.digest = digests.get("serial") or digests.get("multiprocess")
    result.extras = extras
    return result.finalize()


def chaos_recovery(
    profile: str = "short",
    seed: Optional[int] = None,
    workers: Optional[int] = None,
) -> BenchResult:
    """SIGKILL a multiprocess worker mid-run and prove the supervisor
    recovers it with the event stream intact.

    First a fault-free sanitized run fixes the baseline composed
    digest and epoch count; then, for each worker count, worker 0 is
    killed at the midpoint epoch and the recovered run's digest and
    event count must be byte-identical to the baseline (with at least
    one recorded restart) or the scenario raises.
    """
    import signal as _signal

    from repro.api import Scenario
    from repro.engine.parallel import run_multiprocess
    from repro.faults import FaultPlan, LinkDown, LinkUp, Perturbation

    seed = DEFAULT_SEED if seed is None else seed
    seconds = 0.25 if profile == "short" else 1.0
    flows, cores = 4, 4
    worker_counts = (workers,) if workers else (2, 4)

    def make():
        topology = dumbbell_topology(3)
        link_ids = sorted(topology.links)
        # A mixed declarative timeline rides the scenario spec into
        # every worker: recovery below must reproduce the baseline
        # digest *through* link churn and perturbation, proving that
        # restarted workers replay the fault timeline byte-identically.
        plan = FaultPlan.of(
            LinkDown(seconds * 0.2, link_ids[0]),
            LinkUp(seconds * 0.6, link_ids[0]),
            Perturbation(
                start_s=seconds * 0.1,
                stop_s=seconds * 0.9,
                period_s=seconds * 0.2,
                link_fraction=0.25,
            ),
        )
        return (
            Scenario.from_topology(topology, name="bench-dumbbell")
            .distill("hop-by-hop")
            .assign(cores)
            .netperf(flows=flows)
            .observe(False)
            .seed(seed)
            .backend("multiprocess", domains=cores)
            .faults(plan)
        )

    result = BenchResult(
        name="chaos_recovery",
        profile=profile,
        seed=seed,
        params={
            "seconds": seconds, "flows": flows, "cores": cores,
            "worker_counts": list(worker_counts), "signal": "SIGKILL",
        },
    )

    t0 = perf_counter()
    scenario = make()
    scenario.build()
    build_s = perf_counter() - t0
    t1 = perf_counter()
    baseline = run_multiprocess(
        scenario, until=seconds, workers=worker_counts[0], sanitize=True
    )
    baseline_s = perf_counter() - t1
    kill_epoch = max(1, baseline.epochs // 2)

    events = baseline.events_dispatched
    extras: Dict[str, object] = {
        "baseline_digest": baseline.composed_digest,
        "baseline_events": baseline.events_dispatched,
        "kill_epoch": kill_epoch,
        "epochs": baseline.epochs,
    }
    phases = {"build_s": round(build_s, 6), "baseline_s": round(baseline_s, 6)}
    chaos_wall = 0.0
    for count in worker_counts:
        t2 = perf_counter()
        scenario = make()
        scenario.build()
        chaos = run_multiprocess(
            scenario, until=seconds, workers=count, sanitize=True,
            chaos_kill=(kill_epoch, 0), chaos_signal=_signal.SIGKILL,
        )
        wall = perf_counter() - t2
        chaos_wall += wall
        events += chaos.events_dispatched
        if chaos.composed_digest != baseline.composed_digest:
            raise RuntimeError(
                f"chaos_recovery[w={count}]: recovered digest diverged "
                f"({chaos.composed_digest[:16]} vs "
                f"{baseline.composed_digest[:16]})"
            )
        if chaos.events_dispatched != baseline.events_dispatched:
            raise RuntimeError(
                f"chaos_recovery[w={count}]: recovered event count "
                f"{chaos.events_dispatched} != baseline "
                f"{baseline.events_dispatched}"
            )
        if chaos.workers_restarted < 1:
            raise RuntimeError(
                f"chaos_recovery[w={count}]: no worker restart recorded "
                f"— the kill never landed"
            )
        phases[f"chaos_w{count}_s"] = round(wall, 6)
        extras[f"restarts[w={count}]"] = chaos.workers_restarted
        extras[f"retries[w={count}]"] = chaos.retries

    result.wall_s = baseline_s + chaos_wall
    result.events = events
    result.virtual_pkts = 0
    result.virtual_time_s = (1 + len(worker_counts)) * seconds
    result.phases = phases
    result.digest = baseline.composed_digest
    result.extras = extras
    return result.finalize()


SCENARIOS: Dict[str, Callable[..., BenchResult]] = {
    "dumbbell_netperf": dumbbell_netperf,
    "kernel_dispatch": kernel_dispatch,
    "capacity_sweep": capacity_sweep,
    "sanitize_smoke": sanitize_smoke,
    "multicore_scaling": multicore_scaling,
    "chaos_recovery": chaos_recovery,
}


def run_scenario(
    name: str,
    profile: str = "short",
    seed: Optional[int] = None,
    repeats: int = 1,
    **overrides,
) -> BenchResult:
    """Run one registered scenario by name.

    ``overrides`` (e.g. ``backend=``, ``domains=``, ``workers=``) are
    forwarded to scenarios that parameterize on them; passing one to a
    scenario that does not raises :class:`ValueError`.

    ``repeats`` runs the scenario that many times and reports the
    best run by ``events_per_s`` — the standard shared-machine
    methodology: wall-clock noise (scheduler preemption, cache
    pollution from other tenants) only ever slows a run down, so the
    fastest repeat is the closest observation of the true cost.
    Every repeat must dispatch the identical event stream; a digest
    or event-count mismatch across repeats raises, turning the bench
    into a free determinism check.
    """
    try:
        fn = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown bench scenario {name!r}; "
            f"valid: {', '.join(sorted(SCENARIOS))}"
        ) from None
    overrides = {k: v for k, v in overrides.items() if v is not None}
    if overrides:
        import inspect

        accepted = inspect.signature(fn).parameters
        unsupported = sorted(k for k in overrides if k not in accepted)
        if unsupported:
            raise ValueError(
                f"scenario {name!r} does not parameterize on "
                f"{', '.join(unsupported)}"
            )
    # Benchmark hygiene: start each scenario from a collected heap and
    # keep the cycle collector out of the measured region. Without
    # this, garbage carried over from a previous scenario in the same
    # process makes gen-2 collections progressively more expensive and
    # skews later measurements by 20%+ (the simulation itself does not
    # rely on GC: the event heap drains and pipes hold no cycles).
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    gc.collect()
    reenable = gc.isenabled()
    gc.disable()
    try:
        best: Optional[BenchResult] = None
        for _ in range(repeats):
            result = fn(profile=profile, seed=seed, **overrides)
            if best is not None:
                if result.events != best.events:
                    raise RuntimeError(
                        f"{name}: event count varied across repeats "
                        f"({best.events} vs {result.events}) — the "
                        f"fixed-seed scenario is nondeterministic"
                    )
                if (
                    result.digest
                    and best.digest
                    and result.digest != best.digest
                ):
                    raise RuntimeError(
                        f"{name}: digest varied across repeats "
                        f"({best.digest[:16]} vs {result.digest[:16]})"
                    )
            if best is None or result.events_per_s > best.events_per_s:
                best = result
        if repeats > 1:
            best.extras["repeats"] = repeats
        return best
    finally:
        if reenable:
            gc.enable()
