"""The fixed-seed benchmark scenarios.

Three workloads cover the three hot paths the ROADMAP cares about:

``dumbbell_netperf``
    The canonical shared-bottleneck TCP workload (the same dumbbell
    the determinism CI sanitizes): four netperf streams through one
    core. Exercises the event loop, the pipe scheduler, and the TCP
    stacks together — the primary events/sec figure of merit.

``capacity_sweep``
    A scaled-down Fig. 4: netperf flows through private emulated
    chains at several (hops, flows) points, reporting the core's
    forwarded pkts/sec per point. Exercises CPU/NIC modeling and the
    per-hop scheduling cost the paper measures.

``sanitize_smoke``
    The determinism sanitizer's double-run digest over the dumbbell
    (~28k events per run at 1 virtual second): proves the optimized
    hot path still produces byte-identical event streams, and times
    the instrumented (slow-path) event loop.

Every scenario builds its topology in code (no file dependencies), is
seeded, and dispatches an identical event stream for identical
(profile, seed, params) — which is what lets ``--compare`` treat
event-count changes as behavior changes rather than noise.
"""

from __future__ import annotations

import gc
from time import perf_counter
from typing import Callable, Dict, Optional

from repro.bench.harness import BenchResult
from repro.topology.generators import chain_topology, dumbbell_topology

DEFAULT_SEED = 1


def _dumbbell_scenario(seed: int, flows: int):
    from repro.api import Scenario

    return (
        Scenario.from_topology(dumbbell_topology(3), name="bench-dumbbell")
        .distill("hop-by-hop")
        .assign(1)
        .netperf(flows=flows)
        .observe(False)
        .seed(seed)
    )


def dumbbell_netperf(profile: str = "short", seed: Optional[int] = None) -> BenchResult:
    """Bulk TCP through the shared bottleneck: events/sec of the
    uninstrumented event loop."""
    seed = DEFAULT_SEED if seed is None else seed
    seconds = 30.0 if profile == "short" else 120.0
    flows = 4
    result = BenchResult(
        name="dumbbell_netperf",
        profile=profile,
        seed=seed,
        params={"seconds": seconds, "flows": flows, "clients_per_side": 3},
    )
    scenario = _dumbbell_scenario(seed, flows)
    t0 = perf_counter()
    emulation = scenario.build()
    build_s = perf_counter() - t0
    sim = emulation.sim
    events_before = sim.events_dispatched
    pkts_before = emulation.monitor.packets_entered
    t1 = perf_counter()
    sim.run(until=seconds)
    run_s = perf_counter() - t1
    result.wall_s = run_s
    result.events = sim.events_dispatched - events_before
    result.virtual_pkts = emulation.monitor.packets_entered - pkts_before
    result.virtual_time_s = seconds
    result.phases = {"build_s": round(build_s, 6), "run_s": round(run_s, 6)}
    result.extras = {
        "packets_delivered": emulation.monitor.packets_delivered,
        "pipe_departures": sum(p.departures for p in emulation.pipes.values()),
    }
    return result.finalize()


def capacity_sweep(profile: str = "short", seed: Optional[int] = None) -> BenchResult:
    """Fig. 4-style single-core capacity points: pkts/sec forwarded
    at several (hops, flows) operating points."""
    from repro.apps.netperf import TcpStream
    from repro.core import DistillationMode, EmulationConfig, ExperimentPipeline
    from repro.engine import Simulator
    from repro.hardware.calibration import GIGABIT_EDGE_SPEC

    seed = DEFAULT_SEED if seed is None else seed
    if profile == "short":
        points = [(1, 24), (1, 96), (8, 48)]
        warm_s, measure_s = 0.25, 0.5
    else:
        points = [(1, 24), (1, 96), (1, 120), (8, 96), (12, 96)]
        warm_s, measure_s = 0.5, 1.0
    result = BenchResult(
        name="capacity_sweep",
        profile=profile,
        seed=seed,
        params={"points": points, "warm_s": warm_s, "measure_s": measure_s},
    )
    build_s = run_s = 0.0
    events = pkts = 0
    virtual = 0.0
    extras: Dict[str, float] = {}
    for hops, flows in points:
        t0 = perf_counter()
        sim = Simulator()
        emulation = (
            ExperimentPipeline(sim, seed=seed)
            .create(chain_topology(flows, hops=hops))
            .distill(DistillationMode.HOP_BY_HOP)
            .assign(1)
            .bind(10)
            .run(EmulationConfig(edge_spec=GIGABIT_EDGE_SPEC, seed=seed))
        )
        streams = [
            TcpStream(emulation, 2 * flow, 2 * flow + 1) for flow in range(flows)
        ]
        build_s += perf_counter() - t0
        t1 = perf_counter()
        sim.run(until=warm_s)
        emulation.monitor.begin_window(sim.now)
        events_before = sim.events_dispatched
        pkts_before = emulation.monitor.packets_entered
        sim.run(until=warm_s + measure_s)
        run_s += perf_counter() - t1
        events += sim.events_dispatched - events_before
        pkts += emulation.monitor.packets_entered - pkts_before
        virtual += measure_s
        extras[f"pps[{hops}h,{flows}f]"] = round(
            emulation.monitor.window_pps(sim.now), 1
        )
        for stream in streams:
            stream.stop()
    result.wall_s = run_s
    result.events = events
    result.virtual_pkts = pkts
    result.virtual_time_s = virtual
    result.phases = {"build_s": round(build_s, 6), "run_s": round(run_s, 6)}
    result.extras = extras
    return result.finalize()


def sanitize_smoke(profile: str = "short", seed: Optional[int] = None) -> BenchResult:
    """Double-run the dumbbell under the determinism sanitizer: times
    the instrumented dispatch path and proves digests stay identical."""
    from repro.check.sanitize import SimSanitizer

    seed = DEFAULT_SEED if seed is None else seed
    seconds = 1.0 if profile == "short" else 5.0
    flows = 4
    result = BenchResult(
        name="sanitize_smoke",
        profile=profile,
        seed=seed,
        params={"seconds": seconds, "flows": flows, "runs": 2},
    )
    digests = []
    events = pkts = 0
    build_s = run_s = 0.0
    for _run in range(2):
        t0 = perf_counter()
        scenario = _dumbbell_scenario(seed, flows)
        emulation = scenario.build()
        build_s += perf_counter() - t0
        sanitizer = SimSanitizer().attach(emulation.sim)
        try:
            t1 = perf_counter()
            emulation.sim.run(until=seconds)
            run_s += perf_counter() - t1
        finally:
            sanitizer.detach()
        digests.append(sanitizer.digest)
        events += sanitizer.dispatched
        pkts += emulation.monitor.packets_entered
    if digests[0] != digests[1]:
        raise RuntimeError(
            f"sanitize_smoke: same-seed digests differ "
            f"({digests[0][:16]} vs {digests[1][:16]}) — the hot path "
            f"became nondeterministic"
        )
    result.wall_s = run_s
    result.events = events
    result.virtual_pkts = pkts
    result.virtual_time_s = 2 * seconds
    result.phases = {"build_s": round(build_s, 6), "run_s": round(run_s, 6)}
    result.digest = digests[0]
    result.extras = {"events_per_run": events // 2}
    return result.finalize()


SCENARIOS: Dict[str, Callable[..., BenchResult]] = {
    "dumbbell_netperf": dumbbell_netperf,
    "capacity_sweep": capacity_sweep,
    "sanitize_smoke": sanitize_smoke,
}


def run_scenario(
    name: str, profile: str = "short", seed: Optional[int] = None
) -> BenchResult:
    """Run one registered scenario by name."""
    try:
        fn = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown bench scenario {name!r}; "
            f"valid: {', '.join(sorted(SCENARIOS))}"
        ) from None
    # Benchmark hygiene: start each scenario from a collected heap and
    # keep the cycle collector out of the measured region. Without
    # this, garbage carried over from a previous scenario in the same
    # process makes gen-2 collections progressively more expensive and
    # skews later measurements by 20%+ (the simulation itself does not
    # rely on GC: the event heap drains and pipes hold no cycles).
    gc.collect()
    reenable = gc.isenabled()
    gc.disable()
    try:
        return fn(profile=profile, seed=seed)
    finally:
        if reenable:
            gc.enable()
