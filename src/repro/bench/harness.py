"""Benchmark result model, JSON manifests, and regression comparison.

A :class:`BenchResult` is the unit of perf accountability: one
fixed-seed scenario run, reduced to the scalars that matter for the
hot path. Manifests are written as ``BENCH_<name>.json`` (by
convention at the repo root) under the ``repro-bench/1`` schema:

``schema``
    Manifest format tag (``repro-bench/1``).
``name`` / ``profile`` / ``seed`` / ``params``
    What ran: scenario name, ``short`` or ``full`` profile, the fixed
    seed, and the scenario's resolved parameters.
``wall_s``
    Wall-clock seconds of the measured (run) phase.
``events`` / ``events_per_s``
    Simulator events dispatched during the measured phase, and the
    event-loop throughput — the primary hot-path figure of merit.
``virtual_pkts`` / ``virtual_pkts_per_s``
    Packets admitted to the emulated network during the measured
    phase, and the forwarding-plane throughput (the repo's stand-in
    for the paper's pkts/sec capacity numbers).
``virtual_time_s``
    Virtual seconds simulated in the measured phase.
``peak_rss_bytes``
    Process peak resident set size after the run (``ru_maxrss``).
``phases``
    Per-phase wall-clock breakdown (e.g. ``build_s``, ``run_s``).
``digest``
    Optional determinism fingerprint (the sanitizer's event-stream
    SHA-256) — identical across same-seed runs by contract.
``extras``
    Scenario-specific scalars (e.g. per-point pkts/sec of the
    capacity sweep).
``baseline``
    Optional before/after evidence: the baseline run's
    ``events_per_s`` and ``wall_s``, its source path, and the
    resulting ``speedup`` (new events/sec over old).

Comparison (:func:`compare_results`) treats ``events_per_s`` as the
regression gate: a drop beyond the noise threshold fails; wall-clock
and RSS changes are reported but informational. Event *counts* of a
fixed-seed scenario are deterministic, so a count mismatch is flagged
as a behavior change, not noise.
"""

from __future__ import annotations

import json
import resource
import sys
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

BENCH_SCHEMA = "repro-bench/1"


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return rss if sys.platform == "darwin" else rss * 1024


@dataclass
class BenchResult:
    """One scenario run, reduced to its perf scalars."""

    name: str
    profile: str
    seed: int
    params: Dict[str, Any] = field(default_factory=dict)
    wall_s: float = 0.0
    events: int = 0
    events_per_s: float = 0.0
    virtual_pkts: int = 0
    virtual_pkts_per_s: float = 0.0
    virtual_time_s: float = 0.0
    peak_rss_bytes: int = 0
    phases: Dict[str, float] = field(default_factory=dict)
    digest: Optional[str] = None
    extras: Dict[str, Any] = field(default_factory=dict)
    baseline: Optional[Dict[str, Any]] = None
    schema: str = BENCH_SCHEMA

    def finalize(self) -> "BenchResult":
        """Derive the per-second rates from counts and wall time."""
        if self.wall_s > 0:
            self.events_per_s = self.events / self.wall_s
            self.virtual_pkts_per_s = self.virtual_pkts / self.wall_s
        self.peak_rss_bytes = peak_rss_bytes()
        return self

    def set_baseline(self, baseline: "BenchResult", source: str) -> None:
        """Embed before/after evidence from a prior manifest."""
        speedup = (
            self.events_per_s / baseline.events_per_s
            if baseline.events_per_s > 0
            else 0.0
        )
        self.baseline = {
            "events_per_s": baseline.events_per_s,
            "wall_s": baseline.wall_s,
            "source": source,
            "speedup": round(speedup, 4),
        }

    def to_json(self) -> str:
        payload = asdict(self)
        # Schema tag leads for human readers.
        ordered = {"schema": payload.pop("schema"), **payload}
        return json.dumps(ordered, indent=2, sort_keys=False) + "\n"

    def summary(self) -> str:
        line = (
            f"{self.name}: {self.events_per_s:,.0f} events/s, "
            f"{self.virtual_pkts_per_s:,.0f} vpkts/s, "
            f"wall {self.wall_s:.3f}s, rss {self.peak_rss_bytes / 1e6:.1f} MB"
        )
        if self.baseline:
            line += f"  ({self.baseline['speedup']:.2f}x vs baseline)"
        return line


def bench_filename(name: str) -> str:
    return f"BENCH_{name}.json"


def write_result(result: BenchResult, directory: str = ".") -> str:
    import os

    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, bench_filename(result.name))
    with open(path, "w") as handle:
        handle.write(result.to_json())
    return path


def load_result(path: str) -> BenchResult:
    with open(path) as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench schema {schema!r} "
            f"(expected {BENCH_SCHEMA!r})"
        )
    known = {f for f in BenchResult.__dataclass_fields__}
    return BenchResult(**{k: v for k, v in payload.items() if k in known})


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------

@dataclass
class Finding:
    """One observation from comparing two manifests."""

    scenario: str
    kind: str  # "regression" | "improvement" | "neutral" | "behavior-change"
    message: str

    @property
    def is_regression(self) -> bool:
        return self.kind in ("regression", "behavior-change")


def compare_results(
    old: BenchResult,
    new: BenchResult,
    threshold: float = 0.10,
) -> List[Finding]:
    """Diff two manifests of the same scenario.

    ``events_per_s`` dropping by more than ``threshold`` (fractional)
    is a regression; an equal-magnitude rise is an improvement;
    anything inside the band is noise. A changed event count or
    digest on the same (scenario, profile, seed, params) means the
    *behavior* changed, which no noise threshold excuses.
    """
    findings: List[Finding] = []
    if old.name != new.name:
        raise ValueError(f"cannot compare {old.name!r} with {new.name!r}")

    same_workload = (
        old.profile == new.profile
        and old.seed == new.seed
        and old.params == new.params
    )
    if same_workload and old.events != new.events:
        findings.append(Finding(
            new.name, "behavior-change",
            f"event count changed {old.events} -> {new.events} "
            f"(fixed-seed scenarios must dispatch identical event streams)",
        ))
    if same_workload and old.digest and new.digest and old.digest != new.digest:
        findings.append(Finding(
            new.name, "behavior-change",
            f"determinism digest changed {old.digest[:16]} -> {new.digest[:16]}",
        ))

    if old.events_per_s > 0:
        ratio = new.events_per_s / old.events_per_s
        delta = f"{old.events_per_s:,.0f} -> {new.events_per_s:,.0f} events/s ({ratio:.2f}x)"
        if ratio < 1.0 - threshold:
            findings.append(Finding(new.name, "regression", delta))
        elif ratio > 1.0 + threshold:
            findings.append(Finding(new.name, "improvement", delta))
        else:
            findings.append(Finding(new.name, "neutral", delta))

    rss_old, rss_new = old.peak_rss_bytes, new.peak_rss_bytes
    if rss_old > 0 and rss_new > rss_old * 1.5:
        findings.append(Finding(
            new.name, "regression",
            f"peak RSS grew {rss_old / 1e6:.1f} -> {rss_new / 1e6:.1f} MB",
        ))
    return findings
