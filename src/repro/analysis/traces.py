"""Synthetic web traces.

The paper's replicated-web experiment plays back 2.5 minutes of a
trace of IBM's main web site from February 2001 [5], with load
varying between 60 and 100 requests/second. That trace is not public;
this module synthesizes a trace with the same observable structure:
a rate process wandering through the given band and heavy-tailed
(lognormal body) response sizes typical of 2001-era web content.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple


@dataclass
class WebTrace:
    """A request trace: (arrival time, response size in bytes)."""

    requests: List[Tuple[float, int]]
    duration_s: float

    @property
    def count(self) -> int:
        return len(self.requests)

    def mean_rate(self) -> float:
        return self.count / self.duration_s if self.duration_s else 0.0

    def slice_for_client(self, client: int, num_clients: int) -> List[Tuple[float, int]]:
        """Deal requests round-robin across client players."""
        return [
            request
            for index, request in enumerate(self.requests)
            if index % num_clients == client
        ]


def synthesize_web_trace(
    rng: random.Random,
    duration_s: float = 150.0,
    rate_low: float = 60.0,
    rate_high: float = 100.0,
    size_median_bytes: int = 8_000,
    size_sigma: float = 1.0,
    size_cap_bytes: int = 1_000_000,
) -> WebTrace:
    """Generate a trace in the image of the paper's IBM workload.

    The request rate follows a slow random walk bounded to
    [rate_low, rate_high]; arrivals are Poisson at the prevailing
    rate; response sizes are lognormal with the given median, capped
    to keep the tail within 2001-era page weights.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if not 0 < rate_low <= rate_high:
        raise ValueError("need 0 < rate_low <= rate_high")
    requests: List[Tuple[float, int]] = []
    now = 0.0
    rate = rng.uniform(rate_low, rate_high)
    mu = math.log(size_median_bytes)
    next_rate_change = 0.0
    while now < duration_s:
        if now >= next_rate_change:
            rate = min(rate_high, max(rate_low, rate + rng.uniform(-10.0, 10.0)))
            next_rate_change = now + 5.0
        now += rng.expovariate(rate)
        if now >= duration_s:
            break
        size = int(rng.lognormvariate(mu, size_sigma))
        size = max(200, min(size_cap_bytes, size))
        requests.append((now, size))
    return WebTrace(requests=requests, duration_s=duration_s)
