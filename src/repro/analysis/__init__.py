"""Measurement and workload-analysis helpers used by experiments."""

from repro.analysis.stats import (
    Cdf,
    percentile,
    summarize,
    Summary,
)
from repro.analysis.traces import WebTrace, synthesize_web_trace

__all__ = [
    "Cdf",
    "percentile",
    "summarize",
    "Summary",
    "WebTrace",
    "synthesize_web_trace",
]
