"""Distribution summaries: CDFs and percentiles.

Most of the paper's figures are CDFs of per-flow bandwidth or
per-request latency; :class:`Cdf` renders the same row/series shape
the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile (nearest-rank) of ``values``."""
    if not values:
        raise ValueError("percentile of empty data")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


@dataclass
class Summary:
    """Standard sample statistics (see :func:`summarize`)."""

    count: int
    mean: float
    minimum: float
    median: float
    p90: float
    p99: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} min={self.minimum:.4g} "
            f"p50={self.median:.4g} p90={self.p90:.4g} p99={self.p99:.4g} "
            f"max={self.maximum:.4g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Standard summary statistics of a sample."""
    if not values:
        raise ValueError("summary of empty data")
    ordered = sorted(values)
    return Summary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        minimum=ordered[0],
        median=percentile(ordered, 0.5),
        p90=percentile(ordered, 0.9),
        p99=percentile(ordered, 0.99),
        maximum=ordered[-1],
    )


class Cdf:
    """An empirical CDF over a sample."""

    def __init__(self, values: Iterable[float]):
        self.values = sorted(values)
        if not self.values:
            raise ValueError("CDF of empty data")

    def fraction_below(self, x: float) -> float:
        """P(X <= x)."""
        import bisect

        return bisect.bisect_right(self.values, x) / len(self.values)

    def quantile(self, fraction: float) -> float:
        return percentile(self.values, fraction)

    def points(self, steps: int = 20) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs for plotting/printing."""
        n = len(self.values)
        result = []
        for index in range(steps + 1):
            rank = min(n - 1, int(index * n / steps))
            result.append((self.values[rank], (rank + 1) / n))
        return result

    def table(self, steps: int = 10, label: str = "value") -> str:
        """A printable table of the CDF (the benches' output format)."""
        lines = [f"{'pct':>6}  {label}"]
        for value, fraction in self.points(steps):
            lines.append(f"{fraction*100:>5.0f}%  {value:.4g}")
        return "\n".join(lines)
