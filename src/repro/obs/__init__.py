"""repro.obs — the unified observability layer.

The paper's evaluation is instrumentation end to end: per-packet
accuracy error (Figs. 8-10), core capacity in packets/sec (Fig. 4,
Table 1), and scheduler behaviour under load. This package gives that
measurement substrate one home:

* :class:`MetricsRegistry` — counters, gauges, and histograms with
  label support, consolidating the ad-hoc statistics scattered across
  the scheduler, pipes, cores, edge hosts, TCP stacks, and the
  :class:`~repro.core.monitor.EmulationMonitor`;
* :class:`NullRegistry` / :data:`NULL_REGISTRY` — the default for
  plain :class:`~repro.core.emulator.Emulation` runs: every operation
  is a no-op and the hot-path timing hooks stay uninstalled, so an
  unobserved run pays nothing;
* :func:`collect_metrics` — the pull pass that reads every subsystem's
  counters into canonical metric names at report time;
* :class:`RunReport` — a run manifest (config, seed, topology summary,
  wall/virtual time, all metrics) serializable to JSON and CSV, the
  unit of comparison between runs and the artifact benchmarks emit.

Hot paths are instrumented with *guarded* timers (``pipe.enqueue_s``,
``sched.collect_s``, ``route.lookup_s``): a single attribute check per
event when disabled, a ``perf_counter`` pair when enabled. Coarser
phases use :meth:`MetricsRegistry.timed`.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from repro.obs.report import RunReport, collect_metrics, build_report

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "RunReport",
    "collect_metrics",
    "build_report",
]
