"""Run manifests: collect every subsystem's statistics, emit one report.

:func:`collect_metrics` is the pull pass: it walks a live
:class:`~repro.core.emulator.Emulation` and copies every ad-hoc
statistic — scheduler wakeups/hops/heap depth, the three virtual-drop
classes and queue occupancy per pipe, core CPU/NIC utilization, edge
uplink drops, TCP retransmission counters, accuracy error — into a
:class:`~repro.obs.metrics.MetricsRegistry` under canonical names.

:class:`RunReport` is the manifest those metrics ship in: the run's
config, seed, topology summary, wall and virtual time, and the full
metric snapshot, serializable to JSON (lossless round-trip) and CSV
(one metric per row, histograms flattened).
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry


# ----------------------------------------------------------------------
# Collection
# ----------------------------------------------------------------------

def _mean_link_utilization(link, elapsed: float) -> float:
    """Mean duty cycle over the whole run: bits carried / bits possible.

    ``PhysicalLink.utilization(since, now)`` is an instantaneous proxy
    built on ``_free_at`` — over a full run it reads ~1.0 whenever the
    wire carried anything recently, so it cannot serve as a run average.
    """
    if elapsed <= 0.0:
        return 0.0
    return min(1.0, link.bytes_sent * 8.0 / (link.rate_bps * elapsed))


def collect_metrics(emulation, registry: MetricsRegistry) -> MetricsRegistry:
    """Read every statistic a run accumulates into ``registry``.

    Safe to call repeatedly (gauges are overwritten; counters are set
    to the current cumulative totals).
    """
    sim = emulation.sim
    registry.gauge("sim.virtual_time_s").set(sim.now)
    registry.gauge("sim.events_dispatched").set(sim.events_dispatched)
    kernel = getattr(sim, "kernel", None) or emulation.config.kernel
    registry.gauge("sim.events_dispatched", kernel=kernel).set(
        sim.events_dispatched
    )
    registry.gauge("sim.events_pending").set(sim.pending)

    # -- partitioned engine (backend, domains, epoch barrier) -----------
    partitioned = emulation.num_domains > 1
    registry.gauge("engine.num_domains").set(emulation.num_domains)
    if partitioned:
        registry.gauge("engine.epochs").set(getattr(sim, "epochs", 0))
        # ``lookahead`` is the effective (minimum finite) bound of the
        # per-pair matrix — the scalar consumers key dashboards on —
        # and the matrix itself is broken out per domain pair so a
        # slow pair (one near the channel floor) is attributable.
        registry.gauge("engine.lookahead_s").set(getattr(sim, "lookahead", 0.0))
        matrix = getattr(sim, "matrix", None)
        if matrix is not None:
            registry.gauge("engine.lookahead_widest_s").set(matrix.widest)
            for src, dst, bound in matrix.items():
                registry.gauge(
                    "engine.lookahead_pair_s", src=src, dst=dst
                ).set(bound)
        if emulation.router is not None:
            registry.gauge("engine.messages_routed").set(
                emulation.router.messages_routed
            )
        for domain in emulation.domains:
            registry.gauge(
                "sim.events_dispatched", domain=domain.domain_id
            ).set(domain.events_dispatched)

    # -- scheduler + cores (Fig. 4 / Table 1 substrate) -----------------
    elapsed = sim.now
    for core in emulation.cores:
        label = {"core": core.index}
        if partitioned:
            label["domain"] = core.domain_id
        sched = core.scheduler
        registry.gauge("sched.wakeups", **label).set(sched.wakeups)
        registry.gauge("sched.hops_serviced", **label).set(sched.hops_serviced)
        registry.gauge("sched.heap_depth", **label).set(sched.pending_pipes)
        registry.gauge("core.cpu_busy_s", **label).set(core.cpu_busy_s)
        registry.gauge("core.utilization", **label).set(core.utilization(elapsed))
        registry.gauge("core.packets_processed", **label).set(core.packets_processed)
        registry.gauge("core.hops_processed", **label).set(core.hops_processed)
        registry.gauge("core.tick_overruns", **label).set(core.tick_overruns)
        registry.gauge("core.tunnels_sent", **label).set(core.tunnels_sent)
        registry.gauge("core.tunnels_received", **label).set(core.tunnels_received)
        registry.gauge("core.ring_occupancy", **label).set(len(core._ring))
        if core.ingress_link is not None:
            registry.gauge("core.nic_in_bytes", **label).set(
                core.ingress_link.bytes_sent
            )
            registry.gauge("core.nic_in_utilization", **label).set(
                _mean_link_utilization(core.ingress_link, elapsed)
            )
        if core.egress_link is not None:
            registry.gauge("core.nic_out_bytes", **label).set(
                core.egress_link.bytes_sent
            )
            registry.gauge("core.nic_out_utilization", **label).set(
                _mean_link_utilization(core.egress_link, elapsed)
            )

    # -- pipes: drop taxonomy and occupancy (Figs. 8-10 inputs) ---------
    arrivals = departures = batch_departures = overflow = random_ = down = 0
    bytes_accepted = bytes_through = in_flight = backlog = peak = 0
    for pipe in emulation.pipes.values():
        arrivals += pipe.arrivals
        departures += pipe.departures
        batch_departures += pipe.batch_departures
        overflow += pipe.drops_overflow
        random_ += pipe.drops_random
        down += pipe.drops_down
        bytes_accepted += pipe.bytes_accepted
        bytes_through += pipe.bytes_through
        in_flight += pipe.in_flight
        backlog += pipe.backlog_pkts
        if pipe.peak_backlog > peak:
            peak = pipe.peak_backlog
    registry.gauge("pipe.count").set(len(emulation.pipes))
    registry.gauge("pipe.arrivals").set(arrivals)
    registry.gauge("pipe.departures").set(departures)
    registry.gauge("pipe.batch_departures").set(batch_departures)
    registry.gauge("pipe.drops_overflow").set(overflow)
    registry.gauge("pipe.drops_random").set(random_)
    registry.gauge("pipe.drops_down").set(down)
    registry.gauge("pipe.bytes_accepted").set(bytes_accepted)
    registry.gauge("pipe.bytes_through").set(bytes_through)
    registry.gauge("pipe.in_flight").set(in_flight)
    registry.gauge("pipe.backlog_pkts").set(backlog)
    registry.gauge("pipe.peak_backlog").set(peak)

    # -- monitor: accuracy + physical drops -----------------------------
    emulation.monitor.export(registry, virtual_drops=emulation.virtual_drops())

    # -- edge hosts ------------------------------------------------------
    uplink_bytes = downlink_bytes = 0
    cpu_busy = 0.0
    context_switches = 0
    for host in emulation.hosts:
        uplink_bytes += host.uplink.bytes_sent
        downlink_bytes += host.downlink.bytes_sent
        if host.cpu is not None:
            stats = host.cpu.stats()
            cpu_busy += stats["busy_s"]
            context_switches += stats["context_switches"]
    registry.gauge("edge.hosts").set(len(emulation.hosts))
    registry.gauge("edge.uplink_bytes").set(uplink_bytes)
    registry.gauge("edge.downlink_bytes").set(downlink_bytes)
    registry.gauge("edge.uplink_drops").set(
        emulation.monitor.physical_drops_uplink
    )
    if any(host.cpu is not None for host in emulation.hosts):
        registry.gauge("edge.cpu_busy_s").set(cpu_busy)
        registry.gauge("edge.context_switches").set(context_switches)

    # -- TCP (edge stacks) ----------------------------------------------
    tcp_totals: Dict[str, int] = {}
    for vn in emulation.vns:
        for key, value in vn.stack.tcp_stats().items():
            tcp_totals[key] = tcp_totals.get(key, 0) + value
    for key, value in tcp_totals.items():
        registry.gauge(f"tcp.{key}").set(value)

    # -- fault timeline (declarative plans only) ------------------------
    applier = getattr(emulation, "fault_applier", None)
    if applier is not None:
        registry.gauge("faults.injected").set(applier.injected)
        registry.gauge("faults.recovered").set(applier.recovered)
        registry.gauge("faults.perturbations").set(
            applier.perturbations_applied
        )
        registry.gauge("faults.applied").set(applier.applied)
        registry.gauge("faults.planned").set(len(applier.plan.events))
        for link_id in applier.touched_links():
            link = emulation.topology.links.get(link_id)
            if link is not None:
                registry.gauge(
                    "topology.link_up", link=link_id
                ).set(1 if link.up else 0)

    return registry


# ----------------------------------------------------------------------
# The manifest
# ----------------------------------------------------------------------

def _jsonable(value: Any) -> Any:
    """Best-effort conversion of config values to JSON-safe data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(value).items()}
    if hasattr(value, "__slots__") and not isinstance(
        value, (str, int, float, bool, type(None))
    ):
        return {
            slot: _jsonable(getattr(value, slot))
            for slot in value.__slots__
            if hasattr(value, slot)
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass
class RunReport:
    """Everything needed to compare one run against another."""

    name: str = ""
    seed: int = 0
    config: Dict[str, Any] = field(default_factory=dict)
    topology: Dict[str, Any] = field(default_factory=dict)
    virtual_time_s: float = 0.0
    wall_time_s: float = 0.0
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Sweep coordinates: which suite/run/axis point produced this
    #: report. Filled by the :mod:`repro.exp` runner; the aggregation
    #: layer keys tidy datasets on these instead of parsing names.
    labels: Dict[str, Any] = field(default_factory=dict)
    #: Applied fault-timeline occurrences (``{"time_s", "kind",
    #: "links"}`` dicts from the sanctioned applier), empty when the
    #: run carried no :class:`repro.faults.FaultPlan`. Deterministic:
    #: same plan + seed ⇒ same list on every backend.
    fault_events: List[Dict[str, Any]] = field(default_factory=list)
    #: Wall-clock stamp. Left None while the report lives in memory so
    #: same-seed runs produce identical manifests (the determinism
    #: sanitizer diffs them); :meth:`save` stamps it on first write.
    created_at: Optional[float] = None

    # -- access ---------------------------------------------------------

    def metric(self, name: str, default: Any = None) -> Any:
        """A metric by rendered name (``"pipe.arrivals"``,
        ``"sched.wakeups{core=0}"``)."""
        return self.metrics.get(name, default)

    def metric_sum(self, prefix: str) -> float:
        """Sum of all scalar metrics whose name starts with
        ``prefix`` up to a label block (aggregates per-core series)."""
        total = 0.0
        for key, value in self.metrics.items():
            base = key.split("{", 1)[0]
            if base == prefix and isinstance(value, (int, float)):
                total += value
        return total

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "config": self.config,
            "topology": self.topology,
            "virtual_time_s": self.virtual_time_s,
            "wall_time_s": self.wall_time_s,
            "metrics": self.metrics,
            "labels": self.labels,
            "fault_events": self.fault_events,
            "created_at": self.created_at,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "RunReport":
        return cls(
            name=raw.get("name", ""),
            seed=raw.get("seed", 0),
            config=raw.get("config", {}),
            topology=raw.get("topology", {}),
            virtual_time_s=raw.get("virtual_time_s", 0.0),
            wall_time_s=raw.get("wall_time_s", 0.0),
            metrics=raw.get("metrics", {}),
            labels=raw.get("labels", {}),
            fault_events=raw.get("fault_events", []),
            created_at=raw.get("created_at"),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        # The serialization boundary is the one place a manifest may
        # read the wall clock: a stamp taken any earlier would make
        # two same-seed runs produce different in-memory reports.
        if self.created_at is None:
            self.created_at = time.time()  # repro: allow-wallclock
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "RunReport":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def to_csv(self) -> str:
        """``metric,value`` rows; histogram summaries are flattened to
        ``name.count``, ``name.mean``, ... rows."""
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["metric", "value"])
        for key in sorted(self.metrics):
            value = self.metrics[key]
            if isinstance(value, dict):
                for sub in sorted(value):
                    writer.writerow([f"{key}.{sub}", value[sub]])
            else:
                writer.writerow([key, value])
        return out.getvalue()

    def save_csv(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_csv())

    def summary(self) -> str:
        """A short human-readable digest."""
        delivered = self.metric("accuracy.packets_delivered", 0)
        entered = self.metric("accuracy.packets_entered", 0)
        vdrops = self.metric("accuracy.virtual_drops", 0)
        pdrops = self.metric("accuracy.physical_drops", 0)
        mean_err = self.metric("accuracy.mean_error_s", 0.0)
        return (
            f"RunReport({self.name or 'unnamed'}): "
            f"vt={self.virtual_time_s:g}s wall={self.wall_time_s:.2f}s "
            f"delivered={delivered}/{entered} "
            f"drops(virtual/physical)={vdrops}/{pdrops} "
            f"mean_err={mean_err * 1e6:.1f}us"
        )

    def __str__(self) -> str:
        return self.summary()


def build_report(
    emulation,
    registry: Optional[MetricsRegistry] = None,
    name: str = "",
    wall_time_s: float = 0.0,
    created_at: Optional[float] = None,
) -> RunReport:
    """Collect ``emulation``'s statistics and wrap them in a
    :class:`RunReport`.

    ``registry`` defaults to the emulation's own registry when it is a
    live one, else a fresh :class:`MetricsRegistry` — so reports are
    complete even for runs that disabled hot-path observability.
    """
    if registry is None:
        registry = emulation.obs if emulation.obs.enabled else MetricsRegistry()
    collect_metrics(emulation, registry)
    topology = emulation.topology
    return RunReport(
        name=name,
        seed=emulation.config.seed,
        config=_jsonable(emulation.config),
        topology={
            "name": topology.name,
            "nodes": topology.num_nodes,
            "links": topology.num_links,
            "clients": len(topology.clients()),
            "vns": emulation.num_vns,
            "pipes": len(emulation.pipes),
            "cores": len(emulation.cores),
            "hosts": len(emulation.hosts),
        },
        virtual_time_s=emulation.sim.now,
        wall_time_s=wall_time_s,
        metrics=registry.snapshot(),
        fault_events=(
            list(emulation.fault_applier.events_log)
            if getattr(emulation, "fault_applier", None) is not None
            else []
        ),
        created_at=created_at,
    )
