"""Metric primitives: counters, gauges, histograms, and the registry.

Design notes:

* A metric is identified by ``(name, labels)`` where labels is a
  sorted tuple of ``(key, value)`` pairs; asking the registry twice
  for the same identity returns the same object.
* Counters/gauges hold a single number; histograms keep count, sum,
  min, max, and a bounded sample reservoir for percentiles (stride
  decimation once full, so long runs stay O(max_samples) memory).
* :class:`NullRegistry` hands out a shared no-op metric and a no-op
  timer. Code that wants literal zero overhead on hot paths instead
  keeps an optional timer attribute that stays ``None`` when
  observability is off (see ``Pipe._timer``,
  ``PipeScheduler.collect_timer``).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, Any]) -> LabelsKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _flat_name(name: str, key: LabelsKey) -> str:
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelsKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount

    def snapshot(self) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"<Counter {_flat_name(self.name, self.labels)}={self.value}>"


class Gauge:
    """A value that can move in both directions."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelsKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"<Gauge {_flat_name(self.name, self.labels)}={self.value}>"


class Histogram:
    """A distribution: running count/sum/min/max plus a bounded
    reservoir for percentile estimates."""

    __slots__ = ("name", "labels", "count", "total", "min", "max",
                 "max_samples", "_samples", "_stride", "_skip")

    kind = "histogram"

    def __init__(self, name: str, labels: LabelsKey = (), max_samples: int = 65536):
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._stride = 1
        self._skip = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # Stride decimation: when the reservoir fills, keep every 2nd
        # existing sample and halve the admission rate. Percentiles
        # stay representative of the whole run, not just its head.
        if self._skip:
            self._skip -= 1
            return
        self._skip = self._stride - 1
        if len(self._samples) >= self.max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2
            self._skip = self._stride - 1
        self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Sample-estimated percentile, ``p`` in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(p / 100.0 * len(ordered)))
        return ordered[index]

    def snapshot(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                    "max": 0.0, "p50": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:
        return (
            f"<Histogram {_flat_name(self.name, self.labels)} "
            f"n={self.count} mean={self.mean:g}>"
        )


class _Timer:
    """Context manager feeding wall-clock durations to a histogram."""

    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: Histogram):
        self._hist = hist
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()  # repro: allow-wallclock
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(time.perf_counter() - self._t0)  # repro: allow-wallclock


class _NullMetric:
    """Accepts every metric operation and does nothing."""

    __slots__ = ()

    kind = "null"
    name = "null"
    labels: LabelsKey = ()
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0

    def snapshot(self) -> Any:
        return 0


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_METRIC = _NullMetric()
_NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """The one place metrics live for a run.

    >>> obs = MetricsRegistry()
    >>> obs.counter("pipe.drops_overflow").inc()
    >>> obs.gauge("core.utilization", core=0).set(0.87)
    >>> with obs.timed("phase.distill_s"):
    ...     pass
    >>> flat = obs.snapshot()
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelsKey], Any] = {}

    # -- metric accessors (get-or-create) ------------------------------

    def _get(self, cls, name: str, labels: Dict[str, Any], **kwargs):
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, max_samples: int = 65536, **labels) -> Histogram:
        return self._get(Histogram, name, labels, max_samples=max_samples)

    def timed(self, name: str, **labels):
        """Time a ``with`` block into histogram ``name`` (seconds)."""
        return _Timer(self.histogram(name, **labels))

    # -- introspection ----------------------------------------------------

    def get(self, name: str, **labels):
        """The metric at (name, labels), or None."""
        return self._metrics.get((name, _labels_key(labels)))

    def __iter__(self) -> Iterator:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """Flat ``{rendered-name: value-or-summary}`` of every metric,
        deterministically ordered by name."""
        flat = {
            _flat_name(metric.name, metric.labels): metric.snapshot()
            for metric in self._metrics.values()
        }
        return dict(sorted(flat.items()))


class NullRegistry(MetricsRegistry):
    """The zero-overhead default: every accessor returns a shared
    no-op metric, ``timed`` returns a no-op context manager, and
    consumers that check :attr:`enabled` skip instrumentation
    entirely."""

    enabled = False

    def counter(self, name: str, **labels) -> Counter:  # type: ignore[override]
        return _NULL_METRIC  # type: ignore[return-value]

    def gauge(self, name: str, **labels) -> Gauge:  # type: ignore[override]
        return _NULL_METRIC  # type: ignore[return-value]

    def histogram(self, name: str, max_samples: int = 65536, **labels) -> Histogram:  # type: ignore[override]
        return _NULL_METRIC  # type: ignore[return-value]

    def timed(self, name: str, **labels):
        return _NULL_TIMER

    def get(self, name: str, **labels) -> Optional[Any]:
        return None

    def snapshot(self) -> Dict[str, Any]:
        return {}


#: Shared process-wide null registry (stateless, safe to share).
NULL_REGISTRY = NullRegistry()
