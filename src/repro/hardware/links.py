"""Physical wires: serialization, bounded queues, drops.

A :class:`PhysicalLink` models one direction of a real cable/switch
port in the hosting cluster (not an emulated pipe!): packets are
serialized at the wire rate, wait in a bounded FIFO when the wire is
busy, and are dropped when the queue is full. These are the places
where the paper's *physical* drops happen — distinct from the
emulated "virtual" drops inside pipes.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable

from repro.engine.simulator import Simulator


class PhysicalLink:
    """One direction of a physical link.

    ``send`` returns True if the packet was accepted (it will be
    delivered via the callback after serialization + latency) and
    False if the transmit queue overflowed.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        latency_s: float = 20e-6,
        queue_limit: int = 256,
        framing_bytes: int = 0,
        name: str = "",
    ):
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        self.sim = sim
        self.rate_bps = float(rate_bps)
        self.latency_s = float(latency_s)
        self.queue_limit = int(queue_limit)
        self.framing_bytes = int(framing_bytes)
        self.name = name
        # Seconds per wire byte, precomputed: send() is the hottest
        # call site outside the event loop itself.
        self._s_per_byte = 8.0 / self.rate_bps
        self._free_at = 0.0
        self._queued = 0
        self.accepted = 0
        self.dropped = 0
        self.bytes_sent = 0

    @property
    def queued(self) -> int:
        """Packets accepted but not yet fully serialized."""
        return self._queued

    def busy_until(self) -> float:
        """Time at which the wire becomes idle."""
        return self._free_at

    def send(self, size_bytes: int, deliver_fn: Callable, *args: Any) -> bool:
        """Transmit ``size_bytes``; invoke ``deliver_fn(*args)`` on
        arrival at the far end. False (and a drop) on queue overflow."""
        if self._queued >= self.queue_limit:
            self.dropped += 1
            return False
        sim = self.sim
        start = self._free_at
        now = sim._now
        if start < now:
            start = now
        wire_bytes = size_bytes + self.framing_bytes
        done = start + wire_bytes * self._s_per_byte
        self._free_at = done
        self._queued += 1
        self.accepted += 1
        self.bytes_sent += wire_bytes
        # Simulator.post() x2, inlined (neither callback is ever
        # cancelled, and done >= now by construction so the past-check
        # is vacuous): one wire transmit is two heap entries, and this
        # is the hottest scheduling site of a saturated run.
        seq = sim._seq + 1
        sim._seq = seq + 1
        heap = sim._heap
        heappush(heap, (done, seq, None, self._serialized, ()))
        heappush(heap, (done + self.latency_s, seq + 1, None, deliver_fn, args))
        return True

    def _serialized(self) -> None:
        self._queued -= 1

    def utilization(self, since: float, now: float) -> float:
        """Rough utilization proxy: fraction of wall time the wire has
        been committed, over [since, now]."""
        if now <= since:
            return 0.0
        busy = min(self._free_at, now) - since
        return max(0.0, min(1.0, busy / (now - since)))

    def __repr__(self) -> str:
        return f"<PhysicalLink {self.name or hex(id(self))} {self.rate_bps/1e6:g}Mb/s>"
