"""Simulated cluster hardware.

ModelNet's published capacity and accuracy numbers are properties of
its testbed: 1.4 GHz P-III core routers with gigabit NICs, 1 GHz edge
nodes on 100 Mb/s Ethernet, and a switched gigabit fabric. In this
virtual-time reproduction those components are explicit cost models:

* :class:`PhysicalLink` — serialization + queueing on real wires
  (edge uplinks, the core's gigabit NIC, core-to-core trunks);
* :class:`EdgeCpu` — the edge host CPU with per-packet stack cost and
  context-switch overhead that grows with multiplexing degree
  (drives the Fig. 6 experiment);
* :mod:`repro.hardware.calibration` — the constants, documented
  against the paper's measured numbers.

The *core* CPU accounting (tick budgets, scheduler-over-interrupt
priority) lives with the core node in :mod:`repro.core.node`, using
the specs defined here.
"""

from repro.hardware.calibration import (
    CoreSpec,
    EdgeHostSpec,
    DEFAULT_CORE_SPEC,
    DEFAULT_EDGE_SPEC,
    GIGABIT_EDGE_SPEC,
)
from repro.hardware.links import PhysicalLink
from repro.hardware.cpu import EdgeCpu

__all__ = [
    "CoreSpec",
    "EdgeHostSpec",
    "DEFAULT_CORE_SPEC",
    "DEFAULT_EDGE_SPEC",
    "GIGABIT_EDGE_SPEC",
    "PhysicalLink",
    "EdgeCpu",
]
