"""The edge-host CPU model.

Edge nodes multiplex many VN processes over one CPU (paper Sec. 4.2).
:class:`EdgeCpu` serializes submitted work FIFO: each item costs its
instruction count at the host's instruction rate, plus a context
switch whenever the serving process changes. The context-switch cost
grows logarithmically with the number of registered processes,
modeling cache/TLB pollution at higher multiplexing degrees — the
effect behind the falling knees of Fig. 6.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.engine.simulator import Simulator
from repro.hardware.calibration import DEFAULT_EDGE_SPEC, EdgeHostSpec


class EdgeCpu:
    """A single edge-host CPU shared by that host's VN processes."""

    def __init__(self, sim: Simulator, spec: EdgeHostSpec = DEFAULT_EDGE_SPEC):
        self.sim = sim
        self.spec = spec
        self._queue: Deque[Tuple[Any, float, Callable, tuple]] = deque()
        self._busy = False
        self._last_task: Any = None
        self._tasks: set = set()
        self.busy_s = 0.0
        self.context_switches = 0
        self.items_executed = 0

    # -- process registry ---------------------------------------------

    def register(self, task_id: Any) -> None:
        """Declare a process (VN) as resident on this host."""
        self._tasks.add(task_id)

    def unregister(self, task_id: Any) -> None:
        self._tasks.discard(task_id)

    @property
    def process_count(self) -> int:
        return max(1, len(self._tasks))

    def context_switch_cost(self) -> float:
        """Cost of one context switch at the current multiplexing
        degree: base + log-term (cache footprint eviction)."""
        n = self.process_count
        if n <= 1:
            return 0.0
        return (
            self.spec.context_switch_base_s
            + self.spec.context_switch_log_s * math.log(n)
        )

    # -- work submission -------------------------------------------------

    def run(
        self,
        task_id: Any,
        instructions: float,
        done_fn: Optional[Callable] = None,
        *args: Any,
    ) -> None:
        """Execute ``instructions`` on behalf of ``task_id``; invoke
        ``done_fn(*args)`` when the work retires. Work is served FIFO
        (one CPU, run-to-completion slices)."""
        if instructions < 0:
            raise ValueError("instruction count must be >= 0")
        seconds = instructions / self.spec.instructions_per_s
        self._queue.append((task_id, seconds, done_fn, args))
        if not self._busy:
            self._serve_next()

    def run_seconds(
        self,
        task_id: Any,
        seconds: float,
        done_fn: Optional[Callable] = None,
        *args: Any,
    ) -> None:
        """Like :meth:`run` but with the cost given directly in CPU
        seconds (used for fixed kernel costs)."""
        if seconds < 0:
            raise ValueError("cost must be >= 0")
        self._queue.append((task_id, seconds, done_fn, args))
        if not self._busy:
            self._serve_next()

    def _serve_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        task_id, seconds, done_fn, args = self._queue.popleft()
        if task_id != self._last_task and self._last_task is not None:
            switch = self.context_switch_cost()
            if switch > 0.0:
                seconds += switch
                self.context_switches += 1
        self._last_task = task_id
        self.busy_s += seconds
        self.items_executed += 1
        self.sim.schedule(seconds, self._retire, done_fn, args)

    def _retire(self, done_fn: Optional[Callable], args: tuple) -> None:
        if done_fn is not None:
            done_fn(*args)
        self._serve_next()

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` spent busy."""
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, self.busy_s / elapsed_s)

    def stats(self) -> dict:
        """Counter snapshot for observability collection."""
        return {
            "busy_s": self.busy_s,
            "context_switches": self.context_switches,
            "items_executed": self.items_executed,
            "processes": len(self._tasks),
            "queued": len(self._queue),
        }
