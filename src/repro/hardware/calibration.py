"""Calibrated hardware constants.

The paper reports system-level saturation points for its testbed
(Sec. 3.2): a single core forwards ~120 kpps at 1 hop with the gigabit
NIC as the bottleneck and the CPU ~50% utilized, and ~90 kpps at
8 hops with the CPU as the bottleneck. It separately quotes micro
costs of 8.3 us/packet + 0.5 us/hop, which are not mutually consistent
with those saturation points; we calibrate to the *system-level*
numbers, because they are what the figures exhibit:

    90 kpps * (c_pkt + 8 * c_hop) ~= 1 CPU-second/second
    120 kpps * (c_pkt + 1 * c_hop) ~= 0.5 CPU-seconds/second

which gives c_hop ~= 0.99 us and c_pkt ~= 3.2 us. The 250 kpps
plain-forwarding figure (no emulation) corresponds to c_pkt alone
plus interrupt cost, consistent to within ~25%.

Edge constants are calibrated to Fig. 6: with one process the
aggregate 100 Mb/s NIC sustains 95 Mb/s of payload up to 76
instructions/byte of application compute on a 1 GHz CPU (theoretical
80 i/b); the knee falls to ~73 i/b at 2 processes and ~65 i/b at 100,
giving a per-packet stack cost of ~12 us and a context-switch cost of
cs(n) = 2.4 us + 3.1 us * ln(n).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CoreSpec:
    """Cost model of one ModelNet core router."""

    #: Scheduler clock period: 10 kHz in the prototype (100 us).
    tick_s: float = 1e-4
    #: CPU cost to receive/classify/route one packet entering the core.
    per_packet_s: float = 3.2e-6
    #: CPU cost for the scheduler to move a descriptor across one pipe.
    per_hop_s: float = 1.0e-6
    #: CPU cost to emit a descriptor to another core (tunneling):
    #: encapsulation plus a trip through the IP stack. Calibrated so
    #: 100% cross-core traffic costs ~2-3x the local path, matching
    #: Table 1's degradation.
    tunnel_send_s: float = 6.0e-6
    #: CPU cost to accept a tunneled descriptor from another core.
    tunnel_recv_s: float = 6.0e-6
    #: Additional per-byte tunnel cost when the packet *body* crosses
    #: the core fabric (payload caching disabled): memcpy through the
    #: stack on a ~2002 memory system. This is the "relatively modest
    #: memcpy overhead" of Sec. 3.2, and what payload caching [22]
    #: avoids.
    tunnel_byte_s: float = 5.0e-9
    #: CPU cost to emit/process a payload-caching delivery order: a
    #: 64 B trigger that kicks ip_output on an already-buffered,
    #: already-routed packet — far cheaper than packet classification.
    deliver_order_s: float = 2.0e-6
    #: NIC line rate (switched gigabit fabric).
    nic_bps: float = 1e9
    #: NIC receive ring: packets that can wait for CPU service before
    #: physical drops begin (Broadcom 5700-class ring).
    nic_ring_slots: int = 512
    #: One-way latency across the cluster switch.
    switch_latency_s: float = 20e-6
    #: Size of a tunneled packet descriptor on the wire, when payload
    #: caching [22] leaves the body at the entry core.
    descriptor_bytes: int = 64
    #: Switch egress buffering toward the core (packets).
    switch_queue_slots: int = 1024


@dataclass(frozen=True)
class EdgeHostSpec:
    """Cost model of one edge node."""

    #: Access link wire rate (100 Mb/s switched Ethernet by default).
    nic_bps: float = 100e6
    #: Per-packet framing/overhead bytes on the wire (preamble, IFG,
    #: Ethernet header+CRC): 1500 B of IP payload -> ~95 Mb/s goodput.
    framing_bytes: int = 78
    #: Host CPU instruction rate (1 GHz P-III, CPI ~1).
    instructions_per_s: float = 1e9
    #: Kernel/stack cost per packet sent or received.
    per_packet_stack_s: float = 12e-6
    #: Context-switch cost: base + log term capturing cache pollution
    #: as the number of runnable processes grows.
    context_switch_base_s: float = 2.4e-6
    context_switch_log_s: float = 3.1e-6
    #: NIC transmit queue (packets).
    nic_queue_slots: int = 256
    #: One-way latency host -> switch.
    link_latency_s: float = 20e-6


def min_cross_core_latency(core_spec: "CoreSpec" = None) -> float:
    """The minimum latency of any core-to-core crossing: one way
    across the cluster switch.

    This is the partitioned engine's **lookahead**: a descriptor
    tunneled at virtual time ``t`` cannot influence another core
    before ``t + min_cross_core_latency``, so the epoch synchronizer
    (:mod:`repro.engine.sync`) may advance every domain through a
    window of this width without coordination. Serialization time only
    adds to the bound, so the switch latency alone is the safe floor.
    """
    spec = DEFAULT_CORE_SPEC if core_spec is None else core_spec
    if spec.switch_latency_s <= 0.0:
        raise ValueError(
            "cross-core lookahead requires a positive switch latency; "
            f"got {spec.switch_latency_s}"
        )
    return spec.switch_latency_s


#: The paper's core router: 1.4 GHz P-III, FreeBSD, gigabit NIC.
DEFAULT_CORE_SPEC = CoreSpec()

#: The paper's standard edge node: 1 GHz P-III on 100 Mb/s Ethernet.
DEFAULT_EDGE_SPEC = EdgeHostSpec()

#: Edge nodes used in the Table 1 experiment, attached at 1 Gb/s.
GIGABIT_EDGE_SPEC = EdgeHostSpec(nic_bps=1e9)
