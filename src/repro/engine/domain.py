"""The event-domain kernel: one clock, one heap, one seq counter.

An :class:`EventDomain` is the unit of partitioned execution. The
classic single-kernel :class:`~repro.engine.simulator.Simulator` is an
EventDomain with ``domain_id == 0`` and nothing else running; the
partitioned engine (:mod:`repro.engine.sync`) owns one domain per
emulated core node and advances them in lookahead-bounded epochs,
exchanging cross-domain work through mailboxes.

Everything that used to live on ``Simulator`` lives here unchanged —
the tuple heap, the allocation-free ``post`` path, the fast/slow
dispatch loops — so the single-domain engine dispatches a
byte-identical event stream to the pre-partitioning kernel.
"""

from __future__ import annotations

import functools
import hashlib
import heapq
import struct
from typing import Any, Callable, Optional, Tuple

INFINITY = float("inf")

_PACK_EVENT = struct.Struct("<dq").pack


def _callsite_reference(fn: Callable) -> bytes:
    """Reference callsite encoding: the exact per-event computation
    :func:`repro.check.sanitize._callsite` performs (partials
    unwrapped, ``__func__`` collapsed, nothing memoized). This is the
    specification of the digest byte stream; the memoized
    :meth:`EventDomain._callsite_bytes` fast path must produce the
    same bytes (a test pins the equivalence).
    """
    while isinstance(fn, functools.partial):
        fn = fn.func
    fn = getattr(fn, "__func__", fn)
    module = getattr(fn, "__module__", None) or "?"
    qualname = getattr(fn, "__qualname__", None) or repr(fn)
    return f"{module}.{qualname}".encode()


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. scheduling in
    the past or running a simulator that is already running)."""


class Event:
    """A scheduled callback.

    Returned by :meth:`EventDomain.schedule` and :meth:`EventDomain.at`
    so the caller can cancel the callback before it fires. Cancelled
    events stay in the heap but are skipped when popped; this makes
    cancellation O(1), which matters for TCP retransmission timers
    that are cancelled on nearly every ACK.

    The heap stores ``(time, seq, event)`` tuples rather than the
    events: tuple comparison runs in C, and heap sift compares are the
    single hottest operation of a large run. Events themselves define
    no ordering — the ``(time, seq)`` tuple prefix is the one and only
    ordering of the kernel (see ``tests/engine/test_simulator.py``).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent."""
        self.cancelled = True
        # Drop references so cancelled timers don't pin large objects
        # (packets, sockets) until the heap drains past them.
        self.fn = None
        self.args = ()

    def __repr__(self) -> str:
        if self.cancelled:
            state = "cancelled"
        elif self.fn is None:
            # Dispatch clears fn/args so fired events don't pin their
            # arguments; such an event is spent, not pending.
            state = "dispatched"
        else:
            state = "pending"
        return f"<Event t={self.time:.6f} {state}>"


class EventDomain:
    """A discrete-event kernel with a virtual clock.

    The clock starts at 0.0 and only moves forward, jumping to the
    timestamp of each event as it is dispatched. All times are float
    seconds.
    """

    def __init__(self, domain_id: int = 0, kernel: str = "batched") -> None:
        #: Index of this domain within a partitioned engine (0 for the
        #: classic single-kernel Simulator).
        self.domain_id = domain_id
        #: Hot-core kernel selection (see :mod:`repro.core.kernel`):
        #: ``"scalar"`` dispatches through the reference loop —
        #: per-event rare-path checks, nothing hoisted — while
        #: ``"batched"``/``"numpy"`` use the optimized split loops.
        #: The same name also selects each pipe's delay-line engine;
        #: all kernels dispatch byte-identical event streams.
        self.kernel = kernel
        self._now = 0.0
        self._heap: list[Tuple[float, int, Event]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._dispatched = 0
        #: Optional tracing hook: called as ``on_dispatch(event, fn)``
        #: immediately before each event fires (the sanitizer's probe
        #: point). ``fn`` is passed separately because dispatch clears
        #: ``event.fn``. The hook test is hoisted out of the dispatch
        #: loop: :meth:`run` selects the fast (no-hook) or slow
        #: (hooked) loop once per call, so the None default costs
        #: nothing per event. Consequently, installing a hook *during*
        #: a run takes effect at the next :meth:`run`/:meth:`step`.
        self.on_dispatch: Optional[Callable[[Event, Callable], None]] = None
        #: Streaming event digest, folded inline by the dispatch loops
        #: when armed (:meth:`enable_digest`) — the cheap path benches
        #: use to stamp a run's identity without paying for the
        #: on_dispatch probe machinery. None (the default) costs one
        #: branch per run() call, nothing per event.
        self._digest = None
        #: When the scalar (reference) kernel arms its digest, the fold
        #: runs as an :attr:`on_dispatch` observer — the sanitizer's
        #: probe machinery, per event — and this holds that observer so
        #: the dispatch loops know the hook already folds the digest.
        #: None whenever the digest is folded inline.
        self._digest_hook: Optional[Callable[[Event, Callable], None]] = None
        self._callsite_cache: dict = {}

    def enable_digest(self) -> None:
        """Arm the streaming event digest for subsequent runs.

        Folds ``(time, seq, callsite)`` of every dispatched event into
        a SHA-256 — the exact byte stream a
        :class:`repro.check.sanitize.DomainProbe` would hash, so the
        result is comparable with sanitize digests.

        The fold mechanism is part of the kernel seam. The scalar
        (reference) kernel digests the way the sanitizer does: an
        :attr:`on_dispatch` observer receives every event — anonymous
        ``post()`` entries get a synthesized :class:`Event` handle —
        and recomputes the callsite encoding per event, nothing
        memoized. The optimized kernels fold inline in the dispatch
        loop, with callsite bytes memoized per function and the hash
        fed in joined chunks; tests pin the byte equality of the two
        mechanisms. Like :attr:`on_dispatch`, arming mid-run takes
        effect at the next :meth:`run`/:meth:`run_until`/:meth:`step`.
        """
        self._digest = hashlib.sha256()
        self._callsite_cache = {}
        if self.kernel == "scalar" and self.on_dispatch is None:
            digest = self._digest

            def observe(event: Event, fn: Callable) -> None:
                digest.update(_PACK_EVENT(event.time, event.seq))
                digest.update(_callsite_reference(fn))

            self._digest_hook = observe
            self.on_dispatch = observe
        else:
            # A user hook is already installed (e.g. a sanitizer probe)
            # or an optimized kernel is running: fold inline.
            self._digest_hook = None

    def digest_hexdigest(self) -> Optional[str]:
        """Hex digest of the events dispatched since
        :meth:`enable_digest`, or None when never armed."""
        digest = self._digest
        return None if digest is None else digest.hexdigest()

    def _callsite_bytes(self, fn: Callable) -> bytes:
        """Encoded ``module.qualname`` for ``fn``, memoized.

        Must produce the same bytes as
        :func:`repro.check.sanitize._callsite` (partials unwrapped,
        ``__func__`` collapsed) — a test pins the equivalence. The
        memo is keyed on the unwrapped function object: bound methods
        are recreated per event but share one underlying function, so
        the per-event cost is one ``__func__`` fetch and a dict hit.
        """
        while isinstance(fn, functools.partial):
            fn = fn.func
        fn = getattr(fn, "__func__", fn)
        cached = self._callsite_cache.get(fn)
        if cached is None:
            module = getattr(fn, "__module__", None) or "?"
            qualname = getattr(fn, "__qualname__", None)
            if qualname is None:
                # Exotic callable: repr is per-object, so the bytes
                # are only valid for this exact object — which is
                # precisely what the object-keyed memo stores.
                qualname = repr(fn)
            cached = f"{module}.{qualname}".encode()
            try:
                self._callsite_cache[fn] = cached
            except TypeError:  # unhashable callable: recompute per event
                pass
        return cached

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_dispatched(self) -> int:
        """Total number of events fired so far (for instrumentation)."""
        return self._dispatched

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled)."""
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.at(self._now + delay, fn, *args)

    def at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        self._seq = seq = self._seq + 1
        event = Event(time, seq, fn, args)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def post(self, time: float, fn: Callable, *args: Any) -> None:
        """Like :meth:`at`, but fire-and-forget: no :class:`Event`
        handle is returned and the callback cannot be cancelled.

        The heap entry is a bare ``(time, seq, None, fn, args)`` tuple
        — no Event allocation. Physical-wire serialization and
        delivery callbacks (two per transmitted packet, never
        cancelled) are the intended users; they dominate the heap of a
        saturated run. Sequence numbers come from the same counter as
        :meth:`at`, so traces are identical either way.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (time, seq, None, fn, args))

    def call_soon(self, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` at the current time, after pending events
        already scheduled for this instant."""
        return self.at(self._now, fn, *args)

    def stop(self) -> None:
        """Ask a running :meth:`run` to return after the current event."""
        self._stopped = True

    def next_event_time(self) -> float:
        """Timestamp of the earliest live event, or ``inf`` when the
        heap holds nothing dispatchable.

        Cancelled/spent entries encountered at the top are discarded
        as a side effect, so repeated peeks stay O(1) amortized. This
        is the epoch synchronizer's lower-bound query.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[2]
            if event is not None and event.fn is None:
                heapq.heappop(heap)
                continue
            return entry[0]
        return INFINITY

    def snapshot(self) -> dict:
        """Cheap, picklable view of kernel progress at a barrier.

        Used by resilience checkpoints to record (and later verify)
        where a domain stood: clock, dispatch count, sequence counter,
        and heap occupancy. This is *progress* state, not full kernel
        state — resume works by deterministic replay, not by restoring
        heaps (live events hold unpicklable closures).
        """
        return {
            "domain": self.domain_id,
            "now": self._now,
            "dispatched": self._dispatched,
            "seq": self._seq,
            "pending": len(self._heap),
        }

    def restore_progress(self, dispatched: int, now: float) -> None:
        """Adopt externally-measured progress (barrier-side use only).

        The multiprocess merge path patches the parent's never-run
        kernels with the clock and dispatch count their worker-side
        twins actually reached. This is the sanctioned write API for
        that: callers outside the kernel must not poke ``_now`` /
        ``_dispatched`` directly (the DOM002 static rule enforces it).
        """
        self._dispatched = int(dispatched)
        if now > self._now:
            self._now = float(now)

    def fast_forward(self, until: float, strict: bool = True) -> None:
        """Advance an *idle* clock to ``until`` (barrier-side use only).

        When ``strict`` (the default), raises if events remain at or
        before ``until`` — fast-forward aligns drained domains with a
        run target, it never skips work. ``strict=False`` is for the
        parent-side stat merge, which aligns the clocks of *never-run*
        twin kernels whose heaps still hold the initial schedule.
        """
        if strict and self.next_event_time() <= until:
            raise SimulationError(
                f"domain {self.domain_id} still has events at or before "
                f"t={until}; cannot fast-forward over pending work"
            )
        if self._now < until:
            self._now = float(until)

    def step(self) -> bool:
        """Dispatch the single next non-cancelled event.

        Returns False when the heap is exhausted.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            time = entry[0]
            event = entry[2]
            if event is None:  # anonymous fire-and-forget (see post())
                fn = entry[3]
                args = entry[4]
            else:
                fn = event.fn
                if fn is None:  # cancelled, or spent by a previous dispatch
                    continue
                args = event.args
                event.fn = None
                event.args = ()
            if time < self._now:
                raise SimulationError(
                    f"clock would move backwards: event at t={time} "
                    f"but now={self._now}"
                )
            self._now = time
            self._dispatched += 1
            hook = self.on_dispatch
            if hook is not None:
                if event is None:
                    event = Event(time, entry[1], None, ())
                hook(event, fn)
            digest = self._digest
            if digest is not None and (
                hook is None or hook is not self._digest_hook
            ):
                # The scalar kernel's digest observer (if installed)
                # already folded this event via the hook above; every
                # other configuration folds inline here.
                digest.update(_PACK_EVENT(time, entry[1]))
                digest.update(self._callsite_bytes(fn))
            fn(*args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Dispatch events until the heap is empty, the clock would
        pass ``until``, or :meth:`stop` is called.

        If ``until`` is given and the run *drains naturally* (the heap
        empties or only later events remain), the clock is left
        exactly at ``until`` and a subsequent ``run`` continues from
        there. A run halted by :meth:`stop` keeps the clock at the
        last dispatched event — fast-forwarding past still-pending
        events would let the next ``run`` move the clock backwards.
        Returns the final clock value.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until t={until}, already at t={self._now}"
            )
        self._running = True
        self._stopped = False
        # The dispatch loop exists in kernel-selected variants. The
        # scalar kernel runs the reference loop: one pop-check-fire
        # cycle per event with every rare-path branch (hook, digest)
        # tested in place — the auditable yardstick. The batched and
        # numpy kernels run the optimized split loops with the
        # rare-path branches hoisted out: the fast loop assumes no
        # on_dispatch hook; the slow loop services it. Locals beat
        # attribute loads in the loop body. All variants dispatch in
        # identical (time, seq) order from the same heap — the event
        # streams are byte-identical.
        heap = self._heap
        pop = heapq.heappop
        limit = float("inf") if until is None else until
        now = self._now
        dispatched = 0
        hook = self.on_dispatch
        digest = self._digest
        try:
            if self.kernel == "scalar":
                # Reference dispatch: one :meth:`step` per event.
                # ``step()`` is the specification of dispatch — every
                # rare-path branch (hook, digest, clock check) tested
                # in place, per event, nothing hoisted. The optimized
                # loops below must stay observationally identical to
                # repeating it.
                step = self.step
                while heap and not self._stopped:
                    entry = heap[0]
                    event = entry[2]
                    if event is not None and event.fn is None:
                        pop(heap)  # cancelled or spent: discard
                        continue
                    if entry[0] > limit:
                        break
                    step()
            elif hook is None and digest is None:
                while heap and not self._stopped:
                    entry = heap[0]
                    event = entry[2]
                    if event is None:  # anonymous entry (see post())
                        time = entry[0]
                        if time > limit:
                            break
                        if time < now:
                            raise SimulationError(
                                f"clock would move backwards: event at "
                                f"t={time} but now={now}"
                            )
                        pop(heap)
                        self._now = now = time
                        dispatched += 1
                        entry[3](*entry[4])
                        continue
                    fn = event.fn
                    if fn is None:  # cancelled or spent: discard
                        pop(heap)
                        continue
                    time = entry[0]
                    if time > limit:
                        break
                    if time < now:
                        raise SimulationError(
                            f"clock would move backwards: event at "
                            f"t={time} but now={now}"
                        )
                    pop(heap)
                    self._now = now = time
                    dispatched += 1
                    args = event.args
                    event.fn = None
                    event.args = ()
                    fn(*args)
            elif hook is None:
                # Digest-armed fast loop: the no-hook loop with the
                # (time, seq, callsite) fold batched. Event bytes
                # accumulate in a chunk list and feed the hash in
                # joined blocks — SHA-256 is stream-equivalent under
                # concatenation, so the digest is byte-identical to
                # the reference loop's per-event fold while the
                # per-event cost shrinks to two list appends.
                pack = _PACK_EVENT
                callsite_bytes = self._callsite_bytes
                update = digest.update
                chunks: list = []
                append = chunks.append
                try:
                    while heap and not self._stopped:
                        entry = heap[0]
                        event = entry[2]
                        if event is None:  # anonymous entry (see post())
                            time = entry[0]
                            if time > limit:
                                break
                            if time < now:
                                raise SimulationError(
                                    f"clock would move backwards: event "
                                    f"at t={time} but now={now}"
                                )
                            pop(heap)
                            self._now = now = time
                            dispatched += 1
                            fn = entry[3]
                            append(pack(time, entry[1]))
                            append(callsite_bytes(fn))
                            if len(chunks) >= 2048:
                                update(b"".join(chunks))
                                chunks.clear()
                            fn(*entry[4])
                            continue
                        fn = event.fn
                        if fn is None:  # cancelled or spent: discard
                            pop(heap)
                            continue
                        time = entry[0]
                        if time > limit:
                            break
                        if time < now:
                            raise SimulationError(
                                f"clock would move backwards: event at "
                                f"t={time} but now={now}"
                            )
                        pop(heap)
                        self._now = now = time
                        dispatched += 1
                        args = event.args
                        event.fn = None
                        event.args = ()
                        append(pack(time, entry[1]))
                        append(callsite_bytes(fn))
                        if len(chunks) >= 2048:
                            update(b"".join(chunks))
                            chunks.clear()
                        fn(*args)
                finally:
                    # Every exit path (drain, stop, limit, a raising
                    # callback) flushes, so digest_hexdigest() always
                    # covers exactly the dispatched events.
                    if chunks:
                        update(b"".join(chunks))
            else:
                while heap and not self._stopped:
                    entry = heap[0]
                    event = entry[2]
                    if event is None:
                        fn = entry[3]
                        args = entry[4]
                    else:
                        fn = event.fn
                        if fn is None:
                            pop(heap)
                            continue
                        args = event.args
                    time = entry[0]
                    if time > limit:
                        break
                    if time < now:
                        raise SimulationError(
                            f"clock would move backwards: event at "
                            f"t={time} but now={now}"
                        )
                    pop(heap)
                    self._now = now = time
                    dispatched += 1
                    if event is None:
                        # Synthesize a handle for the hook; anonymous
                        # entries carry the same (time, seq) identity.
                        event = Event(time, entry[1], None, ())
                    else:
                        event.fn = None
                        event.args = ()
                    hook(event, fn)
                    if digest is not None and hook is not self._digest_hook:
                        digest.update(_PACK_EVENT(time, entry[1]))
                        digest.update(self._callsite_bytes(fn))
                    fn(*args)
        finally:
            self._running = False
            self._dispatched += dispatched
        if until is not None and not self._stopped and self._now < until:
            # Natural drain: fast-forward the idle clock to the target.
            self._now = until
        return self._now

    # ------------------------------------------------------------------
    # Epoch execution (the partitioned engine's entry point)
    # ------------------------------------------------------------------

    def run_until(self, horizon: float, inclusive: bool = False) -> int:
        """Dispatch every event with ``time < horizon`` (``<= horizon``
        when ``inclusive``), then advance the clock to ``horizon``.

        This is one epoch of partitioned execution: the synchronizer
        guarantees no cross-domain message can arrive before
        ``horizon``, so everything strictly inside the window is safe
        to dispatch without hearing from other domains. Unlike
        :meth:`run`, the clock always lands exactly on ``horizon`` —
        epochs tile time, and a later message timed at ``horizon`` or
        beyond must never read as "in the past".

        :meth:`stop` called from inside a dispatched event halts the
        window after that event, leaving the clock at the event's time
        (not the horizon) so the next window resumes without skipping
        still-pending work. Coalesced windows can span many events, so
        waiting for the window to drain would defer a stop
        arbitrarily far.

        Returns the number of events dispatched this epoch.
        """
        if horizon < self._now:
            raise SimulationError(
                f"epoch horizon t={horizon} is before now={self._now}"
            )
        if self._running:
            raise SimulationError("domain is already running")
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heapq.heappop
        now = self._now
        dispatched = 0
        hook = self.on_dispatch
        digest = self._digest
        try:
            while heap and not self._stopped:
                entry = heap[0]
                time = entry[0]
                if time > horizon or (time == horizon and not inclusive):
                    break
                event = entry[2]
                if event is None:
                    fn = entry[3]
                    args = entry[4]
                else:
                    fn = event.fn
                    if fn is None:  # cancelled or spent: discard
                        pop(heap)
                        continue
                    args = event.args
                if time < now:
                    raise SimulationError(
                        f"clock would move backwards: event at "
                        f"t={time} but now={now}"
                    )
                pop(heap)
                self._now = now = time
                dispatched += 1
                if hook is not None:
                    if event is None:
                        handle = Event(time, entry[1], None, ())
                    else:
                        handle = event
                        event.fn = None
                        event.args = ()
                    hook(handle, fn)
                elif event is not None:
                    event.fn = None
                    event.args = ()
                if digest is not None and (
                    hook is None or hook is not self._digest_hook
                ):
                    digest.update(_PACK_EVENT(time, entry[1]))
                    digest.update(self._callsite_bytes(fn))
                fn(*args)
        finally:
            self._running = False
            self._dispatched += dispatched
        if not self._stopped and self._now < horizon:
            self._now = horizon
        return dispatched

    def run_window(self, horizon: float, inclusive: bool = False) -> int:
        """Run one granted epoch window, tolerating re-grants.

        Per-pair coalescing can hand a domain the same (or an earlier)
        horizon twice — e.g. the final ``(until, True)`` barrier is
        re-issued when mail lands exactly at the target. Re-running an
        inclusive window at ``now == horizon`` dispatches only events
        injected since the previous grant (earlier ones were consumed
        and the clock never moves backwards), so the executors may
        call this without tracking which horizons a domain has already
        seen. A horizon strictly below ``now`` clamps to ``now``.
        """
        if horizon < self._now:
            horizon = self._now
        return self.run_until(horizon, inclusive)
