"""The event loop: a clock and a heap of timestamped callbacks."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. scheduling in
    the past or running a simulator that is already running)."""


class Event:
    """A scheduled callback.

    Returned by :meth:`Simulator.schedule` and :meth:`Simulator.at` so
    the caller can cancel the callback before it fires. Cancelled
    events stay in the heap but are skipped when popped; this makes
    cancellation O(1), which matters for TCP retransmission timers
    that are cancelled on nearly every ACK.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent."""
        self.cancelled = True
        # Drop references so cancelled timers don't pin large objects
        # (packets, sockets) until the heap drains past them.
        self.fn = None
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        if self.cancelled:
            state = "cancelled"
        elif self.fn is None:
            # Dispatch clears fn/args so fired events don't pin their
            # arguments; such an event is spent, not pending.
            state = "dispatched"
        else:
            state = "pending"
        return f"<Event t={self.time:.6f} {state}>"


class Simulator:
    """A discrete-event simulator with a virtual clock.

    The clock starts at 0.0 and only moves forward, jumping to the
    timestamp of each event as it is dispatched. All times are float
    seconds.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._dispatched = 0
        #: Optional tracing hook: called as ``on_dispatch(event, fn)``
        #: immediately before each event fires (the sanitizer's probe
        #: point). ``fn`` is passed separately because dispatch clears
        #: ``event.fn``. None (the default) costs one attribute test
        #: per event.
        self.on_dispatch: Optional[Callable[[Event, Callable], None]] = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_dispatched(self) -> int:
        """Total number of events fired so far (for instrumentation)."""
        return self._dispatched

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled)."""
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.at(self._now + delay, fn, *args)

    def at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, event)
        return event

    def call_soon(self, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` at the current time, after pending events
        already scheduled for this instant."""
        return self.at(self._now, fn, *args)

    def stop(self) -> None:
        """Ask a running :meth:`run` to return after the current event."""
        self._stopped = True

    def step(self) -> bool:
        """Dispatch the single next non-cancelled event.

        Returns False when the heap is exhausted.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled or event.fn is None:
                continue
            self._now = event.time
            self._dispatched += 1
            fn, args = event.fn, event.args
            event.fn = None
            event.args = ()
            if self.on_dispatch is not None:
                self.on_dispatch(event, fn)
            fn(*args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Dispatch events until the heap is empty or the clock would
        pass ``until``.

        If ``until`` is given and the simulation still has future
        events when it is reached, the clock is left exactly at
        ``until`` (events at later times remain pending and a
        subsequent ``run`` continues from there). Returns the final
        clock value.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until t={until}, already at t={self._now}"
            )
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                event = self._heap[0]
                if event.cancelled or event.fn is None:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                self._dispatched += 1
                fn, args = event.fn, event.args
                event.fn = None
                event.args = ()
                if self.on_dispatch is not None:
                    self.on_dispatch(event, fn)
                fn(*args)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now
