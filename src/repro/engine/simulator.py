"""The event loop: a clock and a heap of timestamped callbacks.

The kernel implementation lives in :mod:`repro.engine.domain` — one
:class:`~repro.engine.domain.EventDomain` is one clock + heap + seq
counter. This module keeps the historical front door: ``Simulator``
is the single-domain engine every non-partitioned component builds
on, and ``Event`` / ``SimulationError`` re-export from the domain
module so existing imports keep working.

For partitioned multi-core execution (one domain per emulated core
node, epoch-synchronized), see
:class:`repro.engine.sync.PartitionedSimulator`.
"""

from __future__ import annotations

from repro.engine.domain import Event, EventDomain, SimulationError

__all__ = ["Event", "Simulator", "SimulationError"]


class Simulator(EventDomain):
    """A discrete-event simulator with a virtual clock.

    The clock starts at 0.0 and only moves forward, jumping to the
    timestamp of each event as it is dispatched. All times are float
    seconds. This is exactly one :class:`EventDomain` — the classic
    global kernel — and dispatches a byte-identical event stream to
    the pre-partitioning engine.
    """

    def __init__(self, kernel: str = "batched") -> None:
        super().__init__(domain_id=0, kernel=kernel)
