"""Discrete-event simulation kernel.

Every component of the ModelNet reproduction — pipes, schedulers, CPU
models, TCP stacks, applications — runs on top of this kernel. Time is
virtual: the :class:`Simulator` maintains a clock and an event heap, and
advances the clock to the timestamp of each event as it fires.

Two programming styles are supported and may be mixed freely:

* callback style — ``sim.schedule(delay, fn, *args)`` runs ``fn`` after
  ``delay`` simulated seconds;
* process style — ``sim.spawn(generator)`` runs a generator coroutine
  that ``yield``s delays, :class:`Signal` objects, or other processes.

For multi-core scenarios the kernel partitions into per-core
:class:`EventDomain`\\ s advanced in lookahead-bounded epochs by a
:class:`PartitionedSimulator` (serial) or the multiprocess executor in
:mod:`repro.engine.parallel`.
"""

from repro.engine.domain import EventDomain
from repro.engine.simulator import Event, Simulator, SimulationError
from repro.engine.sync import (
    DomainChannel,
    DomainMessage,
    DomainRouter,
    PartitionedSimulator,
)
from repro.engine.process import Process, Signal, Interrupt
from repro.engine.randomness import RngRegistry

__all__ = [
    "Event",
    "EventDomain",
    "Simulator",
    "SimulationError",
    "DomainChannel",
    "DomainMessage",
    "DomainRouter",
    "PartitionedSimulator",
    "Process",
    "Signal",
    "Interrupt",
    "RngRegistry",
]
