"""Named, seeded random-number streams.

Every stochastic component (topology generation, loss processes, app
think times, ...) draws from its own named stream derived from a
single root seed. Runs with the same root seed are bit-reproducible,
and adding a new consumer of randomness does not perturb the draws
seen by existing components.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory for independent :class:`random.Random` streams.

    >>> rng = RngRegistry(seed=42)
    >>> a = rng.stream("loss")
    >>> b = rng.stream("loss")
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(self._derive(name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this
        registry's but deterministic given (seed, name)."""
        return RngRegistry(self._derive(name))

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")
