"""Generator-based processes on top of the event loop.

A process is a generator that yields one of:

* a number — sleep that many simulated seconds;
* a :class:`Signal` — suspend until the signal fires; the value passed
  to :meth:`Signal.fire` becomes the value of the ``yield`` expression;
* another :class:`Process` — suspend until that process finishes; its
  return value becomes the value of the ``yield`` expression;
* ``None`` — yield the CPU and resume at the same virtual time (after
  already-queued events).

Processes are started with ``Simulator.spawn`` (installed by this
module onto :class:`~repro.engine.simulator.Simulator`).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.engine.simulator import Simulator, SimulationError


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Signal:
    """A one-shot or repeating wakeup point for processes.

    Callback listeners (added with :meth:`listen`) are also supported,
    which lets callback-style and process-style code interoperate.
    """

    __slots__ = ("_sim", "_waiters", "_listeners", "fired", "value")

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._waiters: list[Process] = []
        self._listeners: list[Callable[[Any], None]] = []
        self.fired = False
        self.value: Any = None

    def listen(self, fn: Callable[[Any], None]) -> None:
        """Invoke ``fn(value)`` each time the signal fires."""
        self._listeners.append(fn)

    def fire(self, value: Any = None) -> None:
        """Wake all waiting processes and invoke listeners.

        Processes waiting at fire time are resumed via the event queue
        at the current instant, so firing is safe from any context.
        """
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._sim.call_soon(process._resume, value)
        for fn in self._listeners:
            self._sim.call_soon(fn, value)

    def _add_waiter(self, process: "Process") -> None:
        if self.fired:
            # A signal that has already fired resumes immediately with
            # its stored value (useful for Process.done joins).
            self._sim.call_soon(process._resume, self.value)
        else:
            self._waiters.append(process)


class Process:
    """A running generator coroutine. Create via ``sim.spawn(gen)``."""

    def __init__(self, sim: Simulator, gen: Generator, name: str = ""):
        self._sim = sim
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = Signal(sim)
        self.finished = False
        self.result: Any = None
        self._sleep_event = None
        sim.call_soon(self._resume, None)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current
        instant (cancelling any pending sleep)."""
        if self.finished:
            return
        if self._sleep_event is not None:
            self._sleep_event.cancel()
            self._sleep_event = None
        self._sim.call_soon(self._throw, Interrupt(cause))

    def _throw(self, exc: BaseException) -> None:
        if self.finished:
            return
        try:
            target = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: treat as exit.
            self._finish(None)
            return
        self._wait_on(target)

    def _resume(self, value: Any) -> None:
        if self.finished:
            return
        self._sleep_event = None
        try:
            target = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if target is None:
            self._sim.call_soon(self._resume, None)
        elif isinstance(target, (int, float)):
            self._sleep_event = self._sim.schedule(float(target), self._resume, None)
        elif isinstance(target, Signal):
            target._add_waiter(self)
        elif isinstance(target, Process):
            target.done._add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {target!r}"
            )

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        self.done.fire(result)

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"<Process {self.name} {state}>"


def _spawn(self: Simulator, gen: Generator, name: str = "") -> Process:
    """Start a generator as a simulation process."""
    return Process(self, gen, name)


def _signal(self: Simulator) -> Signal:
    """Create a new :class:`Signal` bound to this simulator."""
    return Signal(self)


# Install process-style helpers on Simulator so user code only ever
# needs a Simulator instance in hand.
Simulator.spawn = _spawn
Simulator.signal = _signal
