"""Partitioned execution: per-core event domains under epoch sync.

The paper's multi-core deployment partitions pipes across core nodes
and tunnels cross-core packets over the cluster switch. This module
turns that modeled structure into a real execution architecture:

* each emulated core node owns an :class:`~repro.engine.domain.EventDomain`
  (its own heap, clock, and seq counter);
* cross-domain work — tunneled descriptors, payload-caching delivery
  orders, packets exiting toward a remote host — travels as
  :class:`DomainMessage`\\ s through a :class:`DomainRouter` mailbox
  instead of as direct calls;
* a conservative epoch barrier advances every domain through its own
  causally-closed window, computed from a :class:`LookaheadMatrix` of
  **per-domain-pair** delivery bounds. A message from domain ``i``
  cannot reach domain ``j`` before ``next_send(i) + L[i][j]``, so
  domain ``j`` may dispatch everything strictly below
  ``min_i(next_send(i) + L[i][j])`` without hearing from anyone — the
  SimBricks argument, per channel instead of per cluster: the pairs
  that are only connected through high-latency pipes synchronize at
  that latency, and pairs with no cross-domain path at all never
  constrain each other.

The matrix entries come from the actual cross-domain relations the
emulation binds (see ``Emulation._derive_lookahead_matrix``): a
descriptor that will cross from ``i`` to ``j`` is announced when its
*current* pipe admits it, and the pipe's latency is in-flight time the
synchronizer gets for free. :class:`LookaheadMatrix` closes the
entries under min-plus composition (Floyd–Warshall to a numeric
fixpoint) because a relay chain ``i -> k -> j`` can deliver into ``j``
after only ``L[i][k] + L[k][j]``, which may be far below the direct
``L[i][j]`` entry.

Determinism contract: between epochs, pending messages are injected
into their destination heaps in ``(time, src_domain, seq)`` order —
a total order independent of execution interleaving — and both
executors compute windows with the same :func:`epoch_windows` on the
same post-flush next-event vector, so the serial executor here and
the multiprocess executor in :mod:`repro.engine.parallel` produce
identical per-domain event streams for the same scenario.
"""

from __future__ import annotations

from math import ceil
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.engine.domain import INFINITY, EventDomain, SimulationError

# Cross-domain message kinds.
MSG_TUNNEL = 0   # a PacketDescriptor whose next pipe lives on another core
MSG_DELIVER = 1  # a payload-caching delivery order returning to the entry core
MSG_HOST = 2     # a packet exiting the core fabric toward a remote edge host


class DomainMessage(NamedTuple):
    """One cross-domain send, as the router queues it.

    ``seq`` is the *source domain's* send counter: together with
    ``(time, src_domain)`` it totally orders every message in an
    epoch, which is what makes injection deterministic regardless of
    how domains were interleaved while producing them.
    """

    time: float
    src_domain: int
    seq: int
    dst_domain: int
    kind: int
    target: int  # core index (tunnel/deliver) or host index (to-host)
    payload: Any


class DomainChannel:
    """The cross-domain wire: serialization at NIC rate plus switch
    latency, tracked synchronously.

    Cross-domain sends cannot ride the sender's
    :class:`~repro.hardware.links.PhysicalLink` (its delivery callback
    would fire on the *sender's* clock and call into a domain whose
    clock is elsewhere), so the channel computes the arrival time at
    send time: serialization start is the later of now and the wire
    becoming free, and delivery is serialization end plus latency.
    The latency is never below the synchronizer's lookahead — that is
    the conservative-sync safety condition.
    """

    __slots__ = ("rate_bps", "latency_s", "_s_per_byte", "_free_at",
                 "messages", "bytes_sent")

    def __init__(self, rate_bps: float, latency_s: float):
        if rate_bps <= 0:
            raise ValueError("channel rate must be positive")
        if latency_s <= 0:
            raise ValueError("channel latency must be positive (lookahead)")
        self.rate_bps = float(rate_bps)
        self.latency_s = float(latency_s)
        self._s_per_byte = 8.0 / self.rate_bps
        self._free_at = 0.0
        self.messages = 0
        self.bytes_sent = 0

    def delivery_time(self, now: float, size_bytes: int) -> float:
        """Arrival time of a ``size_bytes`` message sent at ``now``."""
        start = self._free_at
        if start < now:
            start = now
        done = start + size_bytes * self._s_per_byte
        self._free_at = done
        self.messages += 1
        self.bytes_sent += size_bytes
        return done + self.latency_s

    def handoff_time(self, not_before: float, size_bytes: int) -> float:
        """Arrival time of a handoff announced while its subject is
        still in flight locally: the payload leaves its pipe at
        ``not_before`` (a future instant the pipe computed at
        admission) and only then serializes onto the cross-domain
        wire. Announcements are made in *admission* order, which is
        not exit order, so they deliberately do not thread through
        ``_free_at`` (an early announce with a late exit would push
        the wire's free time backwards); at descriptor sizes the
        serialization gap this ignores is nanoseconds."""
        self.messages += 1
        self.bytes_sent += size_bytes
        return not_before + size_bytes * self._s_per_byte + self.latency_s


class LookaheadMatrix:
    """Per-domain-pair conservative delivery bounds, min-plus closed.

    ``pairs`` maps ``(src_domain, dst_domain)`` to the minimum virtual
    delay between a send *opportunity* in the source domain and the
    earliest resulting delivery into the destination domain. The
    constructor closes the entries under min-plus composition
    (iterated Floyd–Warshall until a numeric fixpoint): a relay chain
    ``i -> k -> j`` bounds deliveries into ``j`` by
    ``L[i][k] + L[k][j]`` even when the direct ``(i, j)`` relation is
    looser or absent, and the diagonal picks up the cheapest cycle
    through each domain (a domain can be re-entered by mail it
    caused). Pairs with no path stay at infinity and never constrain
    each other's windows.

    ``floor`` is the smallest legal entry — the cross-domain channel
    latency — and ``tick_s`` is the core scheduler period: all sends
    happen inside core wakes, which land on tick boundaries, so
    :func:`epoch_windows` may round each domain's next send
    opportunity up to the next tick. Pass ``tick_s=0`` to disable
    that (exact mode, or debt handling, where wakes can run at
    unaligned instants).
    """

    __slots__ = ("num_domains", "floor", "tick_s", "direct", "_closed",
                 "_min_finite", "_max_finite", "_finite_pairs")

    def __init__(
        self,
        num_domains: int,
        pairs: Optional[Dict[Tuple[int, int], float]] = None,
        floor: float = 0.0,
        tick_s: float = 0.0,
    ):
        if num_domains < 1:
            raise SimulationError("need at least one domain")
        if not floor > 0.0:
            raise SimulationError(
                f"lookahead floor must be positive, got {floor} "
                f"(partitioned execution needs a nonzero minimum "
                f"cross-core latency)"
            )
        self.num_domains = num_domains
        self.floor = float(floor)
        self.tick_s = float(tick_s)
        self.direct: Dict[Tuple[int, int], float] = {}
        for (src, dst), bound in (pairs or {}).items():
            if not (0 <= src < num_domains and 0 <= dst < num_domains):
                raise SimulationError(
                    f"lookahead pair ({src}, {dst}) outside "
                    f"[0, {num_domains})"
                )
            if src == dst:
                raise SimulationError(
                    f"lookahead pair ({src}, {dst}) is a self-loop; "
                    f"intra-domain work never crosses the router"
                )
            if bound < self.floor:
                raise SimulationError(
                    f"lookahead pair ({src}, {dst}) = {bound:g}s is "
                    f"below the channel floor {self.floor:g}s"
                )
            self.direct[(src, dst)] = float(bound)
        self._closed = self._close()
        finite = [
            value
            for row in self._closed
            for value in row
            if value != INFINITY
        ]
        self._min_finite = min(finite) if finite else INFINITY
        self._max_finite = max(finite) if finite else INFINITY
        self._finite_pairs = len(finite)

    @classmethod
    def uniform(cls, num_domains: int, lookahead: float) -> "LookaheadMatrix":
        """Every off-diagonal pair at one global bound — the classic
        single-lookahead synchronizer, as a matrix."""
        pairs = {
            (i, j): float(lookahead)
            for i in range(num_domains)
            for j in range(num_domains)
            if i != j
        }
        return cls(num_domains, pairs, floor=lookahead)

    def _close(self) -> List[List[float]]:
        n = self.num_domains
        closed = [[INFINITY] * n for _ in range(n)]
        for (src, dst), bound in self.direct.items():
            if bound < closed[src][dst]:
                closed[src][dst] = bound
        # Iterate to a numeric fixpoint (not just one Floyd-Warshall
        # sweep): the epoch planner's monotonicity proof needs the
        # triangle inequality to hold in *float* arithmetic for every
        # (i, k, j) triple, which one sweep does not guarantee.
        changed = True
        while changed:
            changed = False
            for k in range(n):
                row_k = closed[k]
                for i in range(n):
                    d_ik = closed[i][k]
                    if d_ik == INFINITY:
                        continue
                    row_i = closed[i]
                    for j in range(n):
                        via = d_ik + row_k[j]
                        if via < row_i[j]:
                            row_i[j] = via
                            changed = True
        return closed

    def bound(self, src: int, dst: int) -> float:
        """The closed delivery bound from ``src`` to ``dst`` (INFINITY
        when no chain of cross-domain relations connects them)."""
        return self._closed[src][dst]

    @property
    def effective(self) -> float:
        """The tightest finite bound — the scalar the old single-
        lookahead synchronizer would have needed, and what obs reports
        as ``engine.lookahead_s``."""
        return self._min_finite

    @property
    def widest(self) -> float:
        return self._max_finite

    def items(self) -> List[Tuple[int, int, float]]:
        """Finite closed entries as ``(src, dst, bound)``, sorted —
        the per-pair breakdown obs exports."""
        return [
            (i, j, self._closed[i][j])
            for i in range(self.num_domains)
            for j in range(self.num_domains)
            if self._closed[i][j] != INFINITY
        ]

    def __repr__(self) -> str:
        if self._min_finite == INFINITY:
            spread = "inf"
        elif self._min_finite == self._max_finite:
            spread = f"{self._min_finite:g}s"
        else:
            spread = f"{self._min_finite:g}..{self._max_finite:g}s"
        return (
            f"<LookaheadMatrix domains={self.num_domains} "
            f"bounds={spread} pairs={self._finite_pairs}>"
        )


class DomainRouter:
    """The mailbox fabric between domains.

    Senders call :meth:`send` during an epoch; the synchronizer calls
    :meth:`flush` between epochs to inject everything queued, sorted
    by ``(time, src_domain, seq)``. Target resolution (core/host index
    to a live object) happens at injection against the bound
    emulation, which is what lets the multiprocess backend ship the
    same messages between processes as plain data.
    """

    def __init__(self, num_domains: int):
        self.num_domains = num_domains
        self._send_seq = [0] * num_domains
        self._pending: List[DomainMessage] = []
        self._emulation = None
        self.messages_routed = 0

    def bind(self, emulation) -> None:
        """Attach the emulation whose cores/hosts messages address."""
        self._emulation = emulation

    def send(
        self,
        time: float,
        src_domain: int,
        dst_domain: int,
        kind: int,
        target: int,
        payload: Any,
    ) -> None:
        """Queue a message for delivery at virtual ``time``."""
        seq = self._send_seq[src_domain]
        self._send_seq[src_domain] = seq + 1
        self._pending.append(
            DomainMessage(time, src_domain, seq, dst_domain, kind, target, payload)
        )

    # -- synchronizer interface -----------------------------------------

    def take_pending(self) -> List[DomainMessage]:
        """Drain the queue (the multiprocess worker's export path)."""
        pending = self._pending
        self._pending = []
        return pending

    def min_pending_time(self) -> float:
        if not self._pending:
            return INFINITY
        return min(message.time for message in self._pending)

    def flush(self, domains: List[EventDomain]) -> int:
        """Inject every queued message into its destination domain in
        deterministic ``(time, src_domain, seq)`` order."""
        if not self._pending:
            return 0
        pending = self._pending
        self._pending = []
        pending.sort(key=lambda m: (m.time, m.src_domain, m.seq))
        self.inject(domains, pending)
        return len(pending)

    def inject(self, domains: List[EventDomain], messages) -> None:
        """Schedule already-ordered ``messages`` into their domains.

        Callers other than :meth:`flush` (the multiprocess worker)
        must pass messages pre-sorted by ``(time, src_domain, seq)``
        — heap seq numbers are assigned in iteration order, so the
        order here *is* the same-timestamp tie-break.
        """
        from repro.core.node import DELIVER, TUNNEL_IN

        emulation = self._emulation
        if emulation is None:
            raise SimulationError("router has no bound emulation")
        for message in messages:
            domain = domains[message.dst_domain]
            kind = message.kind
            if kind == MSG_TUNNEL:
                domain.post(
                    message.time,
                    emulation.cores[message.target].physical_ingress,
                    TUNNEL_IN,
                    message.payload,
                )
            elif kind == MSG_DELIVER:
                domain.post(
                    message.time,
                    emulation.cores[message.target].physical_ingress,
                    DELIVER,
                    message.payload,
                )
            elif kind == MSG_HOST:
                domain.post(
                    message.time,
                    emulation.hosts[message.target].receive_from_switch,
                    message.payload,
                )
            else:  # pragma: no cover - kinds are module constants
                raise SimulationError(f"unknown message kind {kind}")
        self.messages_routed += len(messages)


def epoch_window(
    next_min: float, lookahead: float, until: Optional[float]
) -> Optional[Tuple[float, bool]]:
    """The next epoch's ``(horizon, inclusive)``, or None when done.

    The window opens at the earliest pending event and extends one
    lookahead: any message sent inside it arrives at or after the
    horizon, so the window is causally closed. The final window is
    clamped to ``until`` and inclusive, matching the single-kernel
    ``run(until=T)`` convention of dispatching events at exactly
    ``T``. Both executors — serial and multiprocess — call this one
    function, so their epoch sequences are identical by construction.
    """
    if next_min == INFINITY:
        return None
    if until is not None:
        if next_min > until:
            return None
        horizon = next_min + lookahead
        if horizon >= until:
            return until, True
        return horizon, False
    return next_min + lookahead, False


def epoch_windows(
    next_times: Sequence[float],
    matrix: LookaheadMatrix,
    until: Optional[float],
) -> Optional[List[Optional[Tuple[float, bool]]]]:
    """Per-domain ``(horizon, inclusive)`` windows for one epoch, or
    ``None`` when the run is done.

    ``next_times[d]`` is domain ``d``'s earliest pending work *after*
    mail flush — the serial executor reads its post-flush heaps, the
    multiprocess parent folds undelivered mail times into the worker-
    reported minima, and both land on the same vector, so both
    executors compute identical window sequences (the digest-equality
    contract).

    For each destination ``j`` the horizon is
    ``min_i(psend_i + L[i][j])`` over the *closed* matrix, where
    ``psend_i`` is domain ``i``'s next send opportunity: its next
    event time, rounded up to the core scheduler tick when the matrix
    carries one (all cross-domain sends are made inside core wakes,
    which land on tick boundaries). The ``i == j`` term uses the
    diagonal — the cheapest mail *cycle* through ``j`` — because a
    domain's own events can come back at it through a relay. Domains
    whose next work lies beyond ``until`` cannot send inside this run
    and drop out of the minima. This is epoch *coalescing*: when no
    near-horizon sender exists, windows grow to whatever the pairwise
    bounds allow instead of creeping one global lookahead per round.

    Boundary semantics at ``until``: a horizon at or past the target
    clamps to ``(until, True)`` — the inclusive final barrier that
    dispatches events at exactly ``until``. A later round may issue
    ``(until, True)`` to the same domain again (mail can land exactly
    on the target); ``EventDomain.run_window`` makes the re-run
    dispatch only the newly injected events, so nothing double-fires
    and the final barrier is never skipped.

    Entries are ``None`` for domains with no work and no reachable
    sender (nothing to do this round); the result is ``None`` only
    when *no* domain has dispatchable work left.
    """
    n = matrix.num_domains
    if len(next_times) != n:
        raise SimulationError(
            f"next_times has {len(next_times)} entries for "
            f"{n} domains"
        )
    tick = matrix.tick_s
    psend: List[float] = []
    any_work = False
    for t in next_times:
        if t == INFINITY or (until is not None and t > until):
            psend.append(INFINITY)
            continue
        any_work = True
        if tick > 0.0:
            aligned = ceil(t / tick - 1e-9) * tick
            psend.append(aligned if aligned > t else t)
        else:
            psend.append(t)
    if not any_work:
        return None
    closed = matrix._closed
    windows: List[Optional[Tuple[float, bool]]] = []
    for j in range(n):
        horizon = INFINITY
        row = None
        for i in range(n):
            p = psend[i]
            if p == INFINITY:
                continue
            d = closed[i][j]
            if d == INFINITY:
                continue
            v = p + d
            if v < horizon:
                horizon = v
        del row
        if until is not None:
            if horizon >= until:
                windows.append((until, True))
            else:
                windows.append((horizon, False))
        elif horizon != INFINITY:
            windows.append((horizon, False))
        elif psend[j] != INFINITY:
            # Unreachable but busy: free-run one floor past its own
            # next event (progress without a target to clamp to).
            windows.append((psend[j] + matrix.floor, False))
        else:
            windows.append(None)
    return windows


def fault_barrier(
    windows: Sequence[Optional[Tuple[float, bool]]]
) -> float:
    """The horizon up to which fault-timeline occurrences are applied
    before an epoch dispatches: the epoch's minimum granted horizon.

    Every participant — the serial epoch loop and every multiprocess
    worker — evaluates this on the *same* window list (workers receive
    the full per-domain list, not just their slice), so barrier-aligned
    fault application happens at identical points everywhere. Occurrences
    between this barrier and a wider domain's horizon wait one epoch;
    that lag is itself deterministic, which is what the digest contract
    requires.
    """
    barrier = INFINITY
    for window in windows:
        if window is not None and window[0] < barrier:
            barrier = window[0]
    return barrier


class PartitionedSimulator:
    """N event domains advancing under an epoch barrier (serial
    executor).

    Implements the same surface the classic
    :class:`~repro.engine.simulator.Simulator` exposes — ``now``,
    ``run(until)``, ``schedule``/``at``/``post``, ``stop``,
    ``events_dispatched`` — so the emulation layer and the Scenario
    facade treat either interchangeably. Direct ``schedule``/``at``
    calls land on domain 0 (the convention for app-level/global
    events); components bound to a domain schedule on their own
    domain's clock.
    """

    def __init__(
        self,
        num_domains: int,
        lookahead: Optional[float] = None,
        matrix: Optional[LookaheadMatrix] = None,
        kernel: str = "batched",
    ):
        if num_domains < 1:
            raise SimulationError("need at least one domain")
        if matrix is None:
            if lookahead is None:
                raise SimulationError(
                    "need a lookahead scalar or a LookaheadMatrix"
                )
            matrix = LookaheadMatrix.uniform(num_domains, lookahead)
        elif matrix.num_domains != num_domains:
            raise SimulationError(
                f"matrix covers {matrix.num_domains} domains, "
                f"simulator has {num_domains}"
            )
        self.matrix = matrix
        self.kernel = kernel
        self.domains: List[EventDomain] = [
            EventDomain(domain_id=index, kernel=kernel)
            for index in range(num_domains)
        ]
        self.router = DomainRouter(num_domains)
        self.epochs = 0
        #: Optional barrier hook ``fn(epoch_index, horizon)`` invoked
        #: after every completed epoch. Resilience uses it for budget
        #: checks and checkpoints; it must not schedule events (it runs
        #: between epochs, outside any domain's dispatch loop), and the
        #: epoch structure is identical whether or not it is set.
        self.on_epoch: Optional[Callable[[int, float], None]] = None
        #: Barrier-aligned fault application hook ``fn(apply_until)``,
        #: installed by the sanctioned FaultApplier. Invoked with each
        #: epoch's minimum grant horizon *before* the epoch's windows
        #: dispatch, so link mutations land between epochs at a point
        #: both executors (this serial loop and every multiprocess
        #: worker, which receives the same window list) compute
        #: identically — the digest-equality contract for dynamic
        #: topology. See :func:`fault_barrier`.
        self.fault_hook: Optional[Callable[[float], None]] = None
        self._running = False
        self._stopped = False

    # -- facade surface --------------------------------------------------

    @property
    def lookahead(self) -> float:
        """The *effective* (tightest finite) pairwise bound.

        Kept as a scalar for callers that predate the matrix — obs
        gauges, reprs, back-compat tests — but the synchronizer itself
        always plans with the full matrix; see
        :attr:`matrix` for the per-pair breakdown.
        """
        return self.matrix.effective

    def install_lookahead(self, matrix: LookaheadMatrix) -> None:
        """Replace the synchronization matrix (bind-time upgrade).

        The facade constructs the simulator before the emulation knows
        its topology, so it starts with the conservative uniform
        floor; once binding derives the real cross-domain relations,
        the emulation installs the derived matrix here. Refused after
        any event has dispatched — windows already granted under the
        old matrix are not revisited.
        """
        if matrix.num_domains != self.num_domains:
            raise SimulationError(
                f"matrix covers {matrix.num_domains} domains, "
                f"simulator has {self.num_domains}"
            )
        if self._running or self.events_dispatched:
            raise SimulationError(
                "cannot install a lookahead matrix after execution "
                "began"
            )
        self.matrix = matrix

    @property
    def num_domains(self) -> int:
        return len(self.domains)

    @property
    def now(self) -> float:
        """The barrier clock: no domain is behind this time."""
        return min(domain._now for domain in self.domains)

    # Some hot paths read ``sim._now`` directly; keep the alias honest.
    @property
    def _now(self) -> float:
        return self.now

    @property
    def events_dispatched(self) -> int:
        return sum(domain._dispatched for domain in self.domains)

    def events_by_domain(self) -> List[int]:
        """Per-domain dispatch counts (load-imbalance attribution)."""
        return [domain._dispatched for domain in self.domains]

    def snapshot(self) -> List[dict]:
        """Per-domain :meth:`EventDomain.snapshot` list (checkpoints)."""
        return [domain.snapshot() for domain in self.domains]

    @property
    def pending(self) -> int:
        return sum(domain.pending for domain in self.domains) + len(
            self.router._pending
        )

    @property
    def on_dispatch(self) -> Optional[Callable]:
        return self.domains[0].on_dispatch

    @on_dispatch.setter
    def on_dispatch(self, hook: Optional[Callable]) -> None:
        # Broadcast: a plain hook observes every domain's events. The
        # sanitizer installs per-domain probes itself for composable
        # digests; this setter is the compatibility path.
        for domain in self.domains:
            domain.on_dispatch = hook

    def schedule(self, delay: float, fn: Callable, *args: Any):
        return self.domains[0].schedule(delay, fn, *args)

    def at(self, time: float, fn: Callable, *args: Any):
        return self.domains[0].at(time, fn, *args)

    def post(self, time: float, fn: Callable, *args: Any) -> None:
        self.domains[0].post(time, fn, *args)

    def call_soon(self, fn: Callable, *args: Any):
        return self.domains[0].call_soon(fn, *args)

    def stop(self) -> None:
        """Halt after the current event, no later than the next barrier.

        The epoch loop checks the flag between barriers, but coalesced
        windows can span many events, so the currently dispatching
        domain is stopped too — it returns after the event that called
        ``stop``, keeping its clock at that event's time (see
        :meth:`EventDomain.run_until`). Domains that have not yet run
        their window this epoch still complete it: each window entry
        clears the per-domain flag, so the stop lands exactly at the
        epoch boundary for everyone else.
        """
        self._stopped = True
        for domain in self.domains:
            domain.stop()

    def fast_forward(
        self,
        until: float,
        domain_ids: Optional[Iterable[int]] = None,
        strict: bool = True,
    ) -> None:
        """Align idle domain clocks with ``until`` (barrier-side API).

        This is the sanctioned way for executors — the serial epoch
        loop, the multiprocess workers at ``finish``, and the parent's
        stat merge — to advance drained domains to the run target
        without touching ``EventDomain`` internals (which the DOM002 /
        EPO001 static rules forbid outside this module). ``domain_ids``
        restricts the sweep to the domains a worker owns; the default
        covers all of them. Delegates to
        :meth:`EventDomain.fast_forward`, which refuses to skip over
        pending work.
        """
        domains = (
            self.domains
            if domain_ids is None
            else [self.domains[d] for d in domain_ids]
        )
        for domain in domains:
            domain.fast_forward(until, strict=strict)

    # -- the epoch loop ---------------------------------------------------

    def next_event_time(self) -> float:
        """Earliest pending work across heaps and undelivered mail."""
        next_min = self.router.min_pending_time()
        for domain in self.domains:
            t = domain.next_event_time()
            if t < next_min:
                next_min = t
        return next_min

    def run(self, until: Optional[float] = None) -> float:
        """Advance all domains to ``until`` (or until drained) in
        lookahead-bounded epochs with deterministic mail delivery."""
        if self._running:
            raise SimulationError("simulator is already running")
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run until t={until}, already at t={self.now}"
            )
        self._running = True
        self._stopped = False
        domains = self.domains
        router = self.router
        matrix = self.matrix
        try:
            while not self._stopped:
                router.flush(domains)
                next_times = [
                    domain.next_event_time() for domain in domains
                ]
                windows = epoch_windows(next_times, matrix, until)
                if windows is None:
                    break
                if self.fault_hook is not None:
                    self.fault_hook(fault_barrier(windows))
                barrier = INFINITY
                for domain, window in zip(domains, windows):
                    if window is None:
                        continue
                    horizon, inclusive = window
                    domain.run_window(horizon, inclusive)
                    if horizon < barrier:
                        barrier = horizon
                self.epochs += 1
                if self.on_epoch is not None:
                    self.on_epoch(self.epochs - 1, barrier)
        finally:
            self._running = False
        if until is not None and not self._stopped:
            # Natural drain: align every idle clock with the target.
            self.fast_forward(until)
        return self.now

    def __repr__(self) -> str:
        matrix = self.matrix
        if matrix.effective == INFINITY:
            bounds = "inf"
        elif matrix.effective == matrix.widest:
            bounds = f"{matrix.effective:g}s"
        else:
            bounds = f"{matrix.effective:g}..{matrix.widest:g}s"
        return (
            f"<PartitionedSimulator domains={self.num_domains} "
            f"lookahead={bounds} epochs={self.epochs}>"
        )
