"""Partitioned execution: per-core event domains under epoch sync.

The paper's multi-core deployment partitions pipes across core nodes
and tunnels cross-core packets over the cluster switch. This module
turns that modeled structure into a real execution architecture:

* each emulated core node owns an :class:`~repro.engine.domain.EventDomain`
  (its own heap, clock, and seq counter);
* cross-domain work — tunneled descriptors, payload-caching delivery
  orders, packets exiting toward a remote host — travels as
  :class:`DomainMessage`\\ s through a :class:`DomainRouter` mailbox
  instead of as direct calls;
* a conservative epoch barrier advances all domains in lockstep
  windows no wider than the **lookahead** — the minimum cross-core
  latency from :mod:`repro.hardware.calibration`. A message sent at
  time ``t`` arrives no earlier than ``t + lookahead``, so everything
  strictly inside the current window is safe to dispatch without
  hearing from other domains (the SimBricks/conservative-PDES
  argument).

Determinism contract: between epochs, pending messages are injected
into their destination heaps in ``(time, src_domain, seq)`` order —
a total order independent of execution interleaving — so the serial
executor here and the multiprocess executor in
:mod:`repro.engine.parallel` produce identical per-domain event
streams for the same scenario.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, NamedTuple, Optional, Tuple

from repro.engine.domain import INFINITY, EventDomain, SimulationError

# Cross-domain message kinds.
MSG_TUNNEL = 0   # a PacketDescriptor whose next pipe lives on another core
MSG_DELIVER = 1  # a payload-caching delivery order returning to the entry core
MSG_HOST = 2     # a packet exiting the core fabric toward a remote edge host


class DomainMessage(NamedTuple):
    """One cross-domain send, as the router queues it.

    ``seq`` is the *source domain's* send counter: together with
    ``(time, src_domain)`` it totally orders every message in an
    epoch, which is what makes injection deterministic regardless of
    how domains were interleaved while producing them.
    """

    time: float
    src_domain: int
    seq: int
    dst_domain: int
    kind: int
    target: int  # core index (tunnel/deliver) or host index (to-host)
    payload: Any


class DomainChannel:
    """The cross-domain wire: serialization at NIC rate plus switch
    latency, tracked synchronously.

    Cross-domain sends cannot ride the sender's
    :class:`~repro.hardware.links.PhysicalLink` (its delivery callback
    would fire on the *sender's* clock and call into a domain whose
    clock is elsewhere), so the channel computes the arrival time at
    send time: serialization start is the later of now and the wire
    becoming free, and delivery is serialization end plus latency.
    The latency is never below the synchronizer's lookahead — that is
    the conservative-sync safety condition.
    """

    __slots__ = ("rate_bps", "latency_s", "_s_per_byte", "_free_at",
                 "messages", "bytes_sent")

    def __init__(self, rate_bps: float, latency_s: float):
        if rate_bps <= 0:
            raise ValueError("channel rate must be positive")
        if latency_s <= 0:
            raise ValueError("channel latency must be positive (lookahead)")
        self.rate_bps = float(rate_bps)
        self.latency_s = float(latency_s)
        self._s_per_byte = 8.0 / self.rate_bps
        self._free_at = 0.0
        self.messages = 0
        self.bytes_sent = 0

    def delivery_time(self, now: float, size_bytes: int) -> float:
        """Arrival time of a ``size_bytes`` message sent at ``now``."""
        start = self._free_at
        if start < now:
            start = now
        done = start + size_bytes * self._s_per_byte
        self._free_at = done
        self.messages += 1
        self.bytes_sent += size_bytes
        return done + self.latency_s


class DomainRouter:
    """The mailbox fabric between domains.

    Senders call :meth:`send` during an epoch; the synchronizer calls
    :meth:`flush` between epochs to inject everything queued, sorted
    by ``(time, src_domain, seq)``. Target resolution (core/host index
    to a live object) happens at injection against the bound
    emulation, which is what lets the multiprocess backend ship the
    same messages between processes as plain data.
    """

    def __init__(self, num_domains: int):
        self.num_domains = num_domains
        self._send_seq = [0] * num_domains
        self._pending: List[DomainMessage] = []
        self._emulation = None
        self.messages_routed = 0

    def bind(self, emulation) -> None:
        """Attach the emulation whose cores/hosts messages address."""
        self._emulation = emulation

    def send(
        self,
        time: float,
        src_domain: int,
        dst_domain: int,
        kind: int,
        target: int,
        payload: Any,
    ) -> None:
        """Queue a message for delivery at virtual ``time``."""
        seq = self._send_seq[src_domain]
        self._send_seq[src_domain] = seq + 1
        self._pending.append(
            DomainMessage(time, src_domain, seq, dst_domain, kind, target, payload)
        )

    # -- synchronizer interface -----------------------------------------

    def take_pending(self) -> List[DomainMessage]:
        """Drain the queue (the multiprocess worker's export path)."""
        pending = self._pending
        self._pending = []
        return pending

    def min_pending_time(self) -> float:
        if not self._pending:
            return INFINITY
        return min(message.time for message in self._pending)

    def flush(self, domains: List[EventDomain]) -> int:
        """Inject every queued message into its destination domain in
        deterministic ``(time, src_domain, seq)`` order."""
        if not self._pending:
            return 0
        pending = self._pending
        self._pending = []
        pending.sort(key=lambda m: (m.time, m.src_domain, m.seq))
        self.inject(domains, pending)
        return len(pending)

    def inject(self, domains: List[EventDomain], messages) -> None:
        """Schedule already-ordered ``messages`` into their domains.

        Callers other than :meth:`flush` (the multiprocess worker)
        must pass messages pre-sorted by ``(time, src_domain, seq)``
        — heap seq numbers are assigned in iteration order, so the
        order here *is* the same-timestamp tie-break.
        """
        from repro.core.node import DELIVER, TUNNEL_IN

        emulation = self._emulation
        if emulation is None:
            raise SimulationError("router has no bound emulation")
        for message in messages:
            domain = domains[message.dst_domain]
            kind = message.kind
            if kind == MSG_TUNNEL:
                domain.post(
                    message.time,
                    emulation.cores[message.target].physical_ingress,
                    TUNNEL_IN,
                    message.payload,
                )
            elif kind == MSG_DELIVER:
                domain.post(
                    message.time,
                    emulation.cores[message.target].physical_ingress,
                    DELIVER,
                    message.payload,
                )
            elif kind == MSG_HOST:
                domain.post(
                    message.time,
                    emulation.hosts[message.target].receive_from_switch,
                    message.payload,
                )
            else:  # pragma: no cover - kinds are module constants
                raise SimulationError(f"unknown message kind {kind}")
        self.messages_routed += len(messages)


def epoch_window(
    next_min: float, lookahead: float, until: Optional[float]
) -> Optional[Tuple[float, bool]]:
    """The next epoch's ``(horizon, inclusive)``, or None when done.

    The window opens at the earliest pending event and extends one
    lookahead: any message sent inside it arrives at or after the
    horizon, so the window is causally closed. The final window is
    clamped to ``until`` and inclusive, matching the single-kernel
    ``run(until=T)`` convention of dispatching events at exactly
    ``T``. Both executors — serial and multiprocess — call this one
    function, so their epoch sequences are identical by construction.
    """
    if next_min == INFINITY:
        return None
    if until is not None:
        if next_min > until:
            return None
        horizon = next_min + lookahead
        if horizon >= until:
            return until, True
        return horizon, False
    return next_min + lookahead, False


class PartitionedSimulator:
    """N event domains advancing under an epoch barrier (serial
    executor).

    Implements the same surface the classic
    :class:`~repro.engine.simulator.Simulator` exposes — ``now``,
    ``run(until)``, ``schedule``/``at``/``post``, ``stop``,
    ``events_dispatched`` — so the emulation layer and the Scenario
    facade treat either interchangeably. Direct ``schedule``/``at``
    calls land on domain 0 (the convention for app-level/global
    events); components bound to a domain schedule on their own
    domain's clock.
    """

    def __init__(self, num_domains: int, lookahead: float):
        if num_domains < 1:
            raise SimulationError("need at least one domain")
        if not lookahead > 0.0:
            raise SimulationError(
                f"epoch lookahead must be positive, got {lookahead} "
                f"(partitioned execution needs a nonzero minimum "
                f"cross-core latency)"
            )
        self.lookahead = float(lookahead)
        self.domains: List[EventDomain] = [
            EventDomain(domain_id=index) for index in range(num_domains)
        ]
        self.router = DomainRouter(num_domains)
        self.epochs = 0
        #: Optional barrier hook ``fn(epoch_index, horizon)`` invoked
        #: after every completed epoch. Resilience uses it for budget
        #: checks and checkpoints; it must not schedule events (it runs
        #: between epochs, outside any domain's dispatch loop), and the
        #: epoch structure is identical whether or not it is set.
        self.on_epoch: Optional[Callable[[int, float], None]] = None
        self._running = False
        self._stopped = False

    # -- facade surface --------------------------------------------------

    @property
    def num_domains(self) -> int:
        return len(self.domains)

    @property
    def now(self) -> float:
        """The barrier clock: no domain is behind this time."""
        return min(domain._now for domain in self.domains)

    # Some hot paths read ``sim._now`` directly; keep the alias honest.
    @property
    def _now(self) -> float:
        return self.now

    @property
    def events_dispatched(self) -> int:
        return sum(domain._dispatched for domain in self.domains)

    def events_by_domain(self) -> List[int]:
        """Per-domain dispatch counts (load-imbalance attribution)."""
        return [domain._dispatched for domain in self.domains]

    def snapshot(self) -> List[dict]:
        """Per-domain :meth:`EventDomain.snapshot` list (checkpoints)."""
        return [domain.snapshot() for domain in self.domains]

    @property
    def pending(self) -> int:
        return sum(domain.pending for domain in self.domains) + len(
            self.router._pending
        )

    @property
    def on_dispatch(self) -> Optional[Callable]:
        return self.domains[0].on_dispatch

    @on_dispatch.setter
    def on_dispatch(self, hook: Optional[Callable]) -> None:
        # Broadcast: a plain hook observes every domain's events. The
        # sanitizer installs per-domain probes itself for composable
        # digests; this setter is the compatibility path.
        for domain in self.domains:
            domain.on_dispatch = hook

    def schedule(self, delay: float, fn: Callable, *args: Any):
        return self.domains[0].schedule(delay, fn, *args)

    def at(self, time: float, fn: Callable, *args: Any):
        return self.domains[0].at(time, fn, *args)

    def post(self, time: float, fn: Callable, *args: Any) -> None:
        self.domains[0].post(time, fn, *args)

    def call_soon(self, fn: Callable, *args: Any):
        return self.domains[0].call_soon(fn, *args)

    def stop(self) -> None:
        """Halt at the next epoch boundary."""
        self._stopped = True

    def fast_forward(
        self,
        until: float,
        domain_ids: Optional[Iterable[int]] = None,
        strict: bool = True,
    ) -> None:
        """Align idle domain clocks with ``until`` (barrier-side API).

        This is the sanctioned way for executors — the serial epoch
        loop, the multiprocess workers at ``finish``, and the parent's
        stat merge — to advance drained domains to the run target
        without touching ``EventDomain`` internals (which the DOM002 /
        EPO001 static rules forbid outside this module). ``domain_ids``
        restricts the sweep to the domains a worker owns; the default
        covers all of them. Delegates to
        :meth:`EventDomain.fast_forward`, which refuses to skip over
        pending work.
        """
        domains = (
            self.domains
            if domain_ids is None
            else [self.domains[d] for d in domain_ids]
        )
        for domain in domains:
            domain.fast_forward(until, strict=strict)

    # -- the epoch loop ---------------------------------------------------

    def next_event_time(self) -> float:
        """Earliest pending work across heaps and undelivered mail."""
        next_min = self.router.min_pending_time()
        for domain in self.domains:
            t = domain.next_event_time()
            if t < next_min:
                next_min = t
        return next_min

    def run(self, until: Optional[float] = None) -> float:
        """Advance all domains to ``until`` (or until drained) in
        lookahead-bounded epochs with deterministic mail delivery."""
        if self._running:
            raise SimulationError("simulator is already running")
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run until t={until}, already at t={self.now}"
            )
        self._running = True
        self._stopped = False
        domains = self.domains
        router = self.router
        try:
            while not self._stopped:
                router.flush(domains)
                next_min = INFINITY
                for domain in domains:
                    t = domain.next_event_time()
                    if t < next_min:
                        next_min = t
                window = epoch_window(next_min, self.lookahead, until)
                if window is None:
                    break
                horizon, inclusive = window
                for domain in domains:
                    domain.run_until(horizon, inclusive)
                self.epochs += 1
                if self.on_epoch is not None:
                    self.on_epoch(self.epochs - 1, horizon)
        finally:
            self._running = False
        if until is not None and not self._stopped:
            # Natural drain: align every idle clock with the target.
            self.fast_forward(until)
        return self.now

    def __repr__(self) -> str:
        return (
            f"<PartitionedSimulator domains={self.num_domains} "
            f"lookahead={self.lookahead:g}s epochs={self.epochs}>"
        )
