"""Multiprocess executor: one worker per domain group, lockstep epochs.

The serial :class:`~repro.engine.sync.PartitionedSimulator` proves the
partitioning correct; this module makes it parallel. Each worker
process rebuilds the *entire* emulation from a picklable
:class:`~repro.api.ScenarioSpec` (build is deterministic per the
repro.check contract, so every worker sees an identical object graph)
and then runs only the event domains it owns. The parent never runs
events: it is the barrier — it routes cross-domain messages, computes
each epoch window, and broadcasts it.

Determinism, regardless of worker count:

* every cross-domain message travels through the parent, which sorts
  the union of all outboxes by ``(time, src_domain, seq)`` — the same
  total order :meth:`DomainRouter.flush` uses in-process — before
  slicing it per worker;
* a worker injects its slice in that order, so heap sequence numbers
  in each destination domain are assigned identically whether the
  sender lived in the same worker or another one;
* the per-domain window vector is computed by the same
  :func:`~repro.engine.sync.epoch_windows` planner the serial
  executor uses, on the same effective next-event vector
  (worker-reported heap minima folded with undelivered message
  times, which equals the post-flush heap minimum the serial
  executor sees).

Hence the composed per-domain digests of a multiprocess run match the
serial partitioned run of the same scenario exactly — the property
``repro-net sanitize --backend multiprocess`` enforces.

Mail crosses the process boundary as *batched frames*: each epoch
command carries one pre-pickled bytes frame holding the worker's
whole mail slice (``None`` when empty), and each reply carries one
frame holding the worker's whole outbox. Frames are opaque to the
supervisor, so crash-replay resends byte-identical commands without
re-encoding, and the single-frame shape is the groundwork for
shared-memory mailboxes later.

Execution is supervised (:mod:`repro.resilience`): every worker runs a
heartbeat thread, replies carry streaming per-domain digests, and the
parent drives the epoch barrier through a
:class:`~repro.resilience.supervisor.WorkerSupervisor` that detects
crashes and hangs, respawns dead workers from the spec, and replays
them to the last completed barrier with a digest check — so a SIGKILL
mid-run yields the same composed digest as an undisturbed run.
Budget guards and checkpoint callbacks observe the loop at epoch
boundaries and never alter the epoch structure.

One synchronous round trip per worker per epoch is the price of the
barrier. Per-pair lookahead and epoch coalescing keep that price
bounded by the *real* cross-domain pipe latencies (milliseconds on
the paper topologies, not the 20 us channel floor), so epochs carry
thousands of events instead of a handful; BENCH results are reported
honestly either way (see DESIGN.md §8).
"""

from __future__ import annotations

import multiprocessing
import pickle
import signal as _signal
import threading
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.domain import INFINITY
from repro.engine.sync import (
    DomainMessage,
    MSG_HOST,
    epoch_windows,
    fault_barrier,
)
from repro.resilience.policy import (
    BudgetExceeded,
    BudgetGuard,
    ResilienceError,
    RetryPolicy,
)
from repro.resilience.supervisor import WorkerSupervisor

#: Payload encodings on the wire between processes.
_ENC_DESCRIPTOR = 0
_ENC_PACKET = 1


class ParallelExecutionError(RuntimeError):
    """A worker failed; carries the remote traceback text."""


# ----------------------------------------------------------------------
# Message encoding
# ----------------------------------------------------------------------

def encode_message(message: DomainMessage) -> DomainMessage:
    """Replace the live payload with picklable plain data.

    Descriptors reference live :class:`~repro.core.pipe.Pipe` objects,
    which cannot cross a process boundary; they are flattened to pipe
    ids and rehydrated against the destination worker's identical
    pipe table. Packets and segments are plain data already.
    """
    if message.kind == MSG_HOST:
        return message._replace(payload=(_ENC_PACKET, message.payload))
    descriptor = message.payload
    return message._replace(
        payload=(
            _ENC_DESCRIPTOR,
            descriptor.packet,
            tuple(pipe.id for pipe in descriptor.pipes),
            descriptor.hop_index,
            descriptor.entry_core,
            descriptor.entered_at,
            descriptor.ideal_time,
            descriptor.tunnel_hops,
        )
    )


def decode_message(message: DomainMessage, emulation) -> DomainMessage:
    """Rehydrate an encoded payload against this process's emulation."""
    from repro.core.packet import PacketDescriptor

    payload = message.payload
    if payload[0] == _ENC_PACKET:
        return message._replace(payload=payload[1])
    (_, packet, pipe_ids, hop_index, entry_core, entered_at,
     ideal_time, tunnel_hops) = payload
    pipes_by_id = emulation._pipes_by_id
    descriptor = PacketDescriptor.acquire(
        packet,
        tuple(pipes_by_id[pipe_id] for pipe_id in pipe_ids),
        entry_core,
        entered_at,
    )
    descriptor.hop_index = hop_index
    descriptor.ideal_time = ideal_time
    descriptor.tunnel_hops = tunnel_hops
    return message._replace(payload=descriptor)


def pack_frame(messages: List[DomainMessage]) -> Optional[bytes]:
    """One pickle frame for a whole (already-encoded) mail batch.

    ``None`` stands for the empty batch so quiet epochs ship a single
    byte over the command pipe instead of a pickled empty list.
    """
    if not messages:
        return None
    return pickle.dumps(messages, protocol=pickle.HIGHEST_PROTOCOL)


def unpack_frame(frame: Optional[bytes]) -> List[DomainMessage]:
    if frame is None:
        return []
    return pickle.loads(frame)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def _build_from_spec(spec):
    """Rebuild the scenario in this process (identical by determinism
    of the build path) and return (scenario, partitioned sim,
    emulation)."""
    from repro.api import Scenario

    scenario = Scenario.from_spec(spec)
    emulation = scenario.build()
    sim = scenario.sim
    if getattr(sim, "domains", None) is None or sim.num_domains < 2:
        raise ParallelExecutionError(
            "spec did not produce a partitioned simulator; the "
            "multiprocess backend needs num_domains >= 2"
        )
    return scenario, sim, emulation


def _collect_worker_stats(emulation, sim, owned: Sequence[int], probes) -> dict:
    """Everything the parent needs to reconstruct run statistics."""
    owned_set = set(owned)
    cores: Dict[int, Dict[str, Any]] = {}
    for core in emulation.cores:
        if core.domain_id not in owned_set:
            continue
        cores[core.index] = {
            "wakeups": core.scheduler.wakeups,
            "hops_serviced": core.scheduler.hops_serviced,
            "cpu_busy_s": core.cpu_busy_s,
            "packets_processed": core.packets_processed,
            "hops_processed": core.hops_processed,
            "tick_overruns": core.tick_overruns,
            "tunnels_sent": core.tunnels_sent,
            "tunnels_received": core.tunnels_received,
            "nic_in_bytes": (
                core.ingress_link.bytes_sent if core.ingress_link else 0
            ),
            "nic_out_bytes": (
                core.egress_link.bytes_sent if core.egress_link else 0
            ),
        }
    pipes: Dict[int, Tuple] = {}
    domain_of_core = emulation._domain_of_core
    for pipe in emulation.pipes.values():
        if domain_of_core[pipe.owner] not in owned_set:
            continue
        pipes[pipe.id] = (
            pipe.arrivals,
            pipe.departures,
            pipe.drops_overflow,
            pipe.drops_random,
            pipe.drops_down,
            pipe.bytes_accepted,
            pipe.bytes_through,
            pipe.peak_backlog,
        )
    hosts: Dict[int, Tuple[int, int]] = {}
    edge_cpu_busy = 0.0
    edge_switches = 0
    for host in emulation.hosts:
        if emulation._domain_of_host[host.index] not in owned_set:
            continue
        hosts[host.index] = (host.uplink.bytes_sent, host.downlink.bytes_sent)
        if host.cpu is not None:
            stats = host.cpu.stats()
            edge_cpu_busy += stats["busy_s"]
            edge_switches += stats["context_switches"]
    tcp: Dict[str, int] = {}
    for vn in emulation.vns:
        if emulation.domain_of_vn(vn.vn_id) not in owned_set:
            continue
        for key, value in vn.stack.tcp_stats().items():
            tcp[key] = tcp.get(key, 0) + value
    monitor = emulation.monitor
    return {
        # Progress of domains this worker *owns* — a local read that the
        # ownership model cannot distinguish from a foreign peek.
        "domains": {
            d: (sim.domains[d]._dispatched, sim.domains[d]._now)  # repro: allow-cross-domain-clock
            for d in owned
        },
        "cores": cores,
        "pipes": pipes,
        "hosts": hosts,
        "edge_cpu": (edge_cpu_busy, edge_switches),
        "tcp": tcp,
        "monitor": {
            "packets_entered": monitor.packets_entered,
            "packets_delivered": monitor.packets_delivered,
            "packets_unroutable": monitor.packets_unroutable,
            "physical_drops_ring": monitor.physical_drops_ring,
            "physical_drops_egress": monitor.physical_drops_egress,
            "physical_drops_uplink": monitor.physical_drops_uplink,
            "tunnels": monitor.tunnels,
            "error_samples": list(monitor.error_samples),
        },
        "digests": {
            d: (probe.hexdigest(), probe.count) for d, probe in probes.items()
        },
        # Every worker applies the whole fault timeline identically;
        # the parent adopts the view of the worker owning domain 0.
        "faults": (
            emulation.fault_applier.counters()
            if emulation.fault_applier is not None
            else None
        ),
    }


def _worker_main(
    conn,
    spec,
    owned: List[int],
    worker_index: int = 0,
    heartbeat_interval_s: float = 0.5,
    probe: bool = True,
) -> None:
    """One worker: rebuild, then serve epoch commands until 'finish'.

    A daemon heartbeat thread shares the reply pipe (under a send
    lock) so the supervisor can tell a dead or stopped process from a
    livelocked one. With ``probe`` (the default), digest probes are
    attached: every ``done`` reply carries ``{domain: (hexdigest,
    count)}``, which is what makes crash recovery *verifiable* — the
    supervisor replays a respawned worker and compares these digests
    against the pre-crash ones. The single-worker fast path disables
    probing for pure timing runs (recovery there is a from-scratch
    deterministic rerun, so there is no replay to verify, and the
    serial leg it is benchmarked against runs unprobed too).
    """
    send_lock = threading.Lock()
    stop_beating = threading.Event()

    def _send(payload) -> None:
        with send_lock:
            conn.send(payload)

    def _beat() -> None:
        while not stop_beating.wait(heartbeat_interval_s):
            try:
                _send(("hb",))
            except (OSError, ValueError):
                return

    if heartbeat_interval_s > 0:
        threading.Thread(
            target=_beat, daemon=True, name=f"repro-hb-{worker_index}"
        ).start()
    epoch_index = 0
    try:
        _scenario, sim, emulation = _build_from_spec(spec)
        probes = {}
        if probe:
            from repro.check.sanitize import DomainProbe

            probes = {
                d: DomainProbe(d, keep_records=False).attach(sim.domains[d])
                for d in owned
            }
        _send(
            ("ready", {d: sim.domains[d].next_event_time() for d in owned})
        )
        while True:
            command = conn.recv()
            op = command[0]
            if op == "epoch":
                _, windows, frame = command
                if frame is not None:
                    sim.router.inject(
                        sim.domains,
                        [
                            decode_message(m, emulation)
                            for m in unpack_frame(frame)
                        ],
                    )
                if sim.fault_hook is not None:
                    # Barrier-aligned fault application: every worker
                    # receives the full window list and computes the
                    # same barrier the serial loop does, so all
                    # processes mutate link state at identical points.
                    sim.fault_hook(fault_barrier(windows))
                for d in owned:
                    window = windows[d]
                    if window is not None:
                        sim.domains[d].run_window(window[0], window[1])
                outbox = [
                    encode_message(m) for m in sim.router.take_pending()
                ]
                _send(
                    (
                        "done",
                        {d: sim.domains[d].next_event_time() for d in owned},
                        pack_frame(outbox),
                        {
                            d: (probes[d].hexdigest(), probes[d].count)
                            for d in probes
                        },
                    )
                )
                epoch_index += 1
            elif op == "run":
                # Single-worker fast path: this worker owns every
                # domain, so the parent has nothing to route and the
                # whole epoch loop can run in-process — the exact
                # serial-partitioned loop, hence byte-identical
                # digests with zero per-epoch IPC.
                _, run_until = command
                sim.run(until=run_until)
                _send(
                    (
                        "done",
                        {d: sim.domains[d].next_event_time() for d in owned},
                        (sim.epochs, sim.router.messages_routed),
                        {
                            d: (probes[d].hexdigest(), probes[d].count)
                            for d in probes
                        },
                    )
                )
                epoch_index += 1
            elif op == "finish":
                _, until = command
                if until is not None:
                    sim.fast_forward(until, owned)
                stop_beating.set()
                _send(
                    ("result", _collect_worker_stats(emulation, sim, owned, probes))
                )
                conn.close()
                return
            else:  # pragma: no cover - protocol is fixed
                raise ParallelExecutionError(f"unknown command {op!r}")
    except BaseException:
        import traceback

        stop_beating.set()
        try:
            _send(
                (
                    "error",
                    {
                        "worker": worker_index,
                        "domains": list(owned),
                        "epoch": epoch_index,
                        "traceback": traceback.format_exc(),
                    },
                )
            )
        except (OSError, ValueError):
            # Parent is gone; a nonzero exit is the only report left.
            pass
        raise


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

class MultiprocessResult:
    """Outcome of one multiprocess run, before report assembly."""

    def __init__(self) -> None:
        self.epochs = 0
        self.messages_routed = 0
        self.events_by_domain: Dict[int, int] = {}
        self.domain_digests: Dict[int, str] = {}
        self.domain_digest_events: Dict[int, int] = {}
        #: Flat metric overrides for stats that live in worker object
        #: state the parent cannot patch (TCP stacks, edge CPUs).
        self.metric_overlay: Dict[str, Any] = {}
        self.wall_time_s = 0.0
        #: Worker spawn + per-process scenario rebuild time, kept out
        #: of ``wall_time_s`` so events/s compares run phases across
        #: backends (the serial leg's build cost is outside its wall
        #: clock too).
        self.spawn_s = 0.0
        self.workers = 0
        #: ``completed`` or ``aborted`` (budget exhaustion mid-run).
        self.outcome = "completed"
        self.abort_reason: Optional[str] = None
        self.budget_error: Optional[BudgetExceeded] = None
        # Supervision counters (surfaced as resilience.* metrics).
        self.heartbeats_missed = 0
        self.workers_restarted = 0
        self.retries = 0

    @property
    def events_dispatched(self) -> int:
        return sum(self.events_by_domain.values())

    @property
    def composed_digest(self) -> str:
        from repro.check.sanitize import compose_domain_digests

        return compose_domain_digests(self.domain_digests)


def _mp_context():
    """fork where available (cheap, no spec pickling through argv);
    spawn otherwise. Both paths keep the spec picklable anyway."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def run_multiprocess(
    scenario,
    until: float,
    workers: int = 0,
    sanitize: bool = False,
    policy: Optional[RetryPolicy] = None,
    epoch_timeout_s: float = 30.0,
    heartbeat_interval_s: float = 0.5,
    budget: Optional[BudgetGuard] = None,
    on_epoch: Optional[Callable[[int, float, dict, dict], None]] = None,
    chaos_kill: Optional[Tuple[int, int]] = None,
    chaos_signal: int = _signal.SIGKILL,
) -> MultiprocessResult:
    """Run a built partitioned ``scenario`` to ``until`` across
    supervised worker processes, patch its (never-run) parent objects
    with the merged statistics, and return the
    :class:`MultiprocessResult`.

    ``workers == 0`` means one per domain, capped at the machine's
    CPU count (oversubscription buys no parallelism and pays a
    context-switch chain at every barrier); an explicit count is
    honored uncapped. Domains are dealt to workers round-robin; any
    worker count from 1 to ``num_domains`` produces identical
    digests. When a single worker owns every domain (and no chaos,
    budget, or epoch hook is in play) the worker runs the whole epoch
    loop in-process — one command, zero per-epoch IPC. ``sanitize``
    is kept for API compatibility: digests are always streamed now
    (supervision needs them for verified recovery).

    Supervision: a crashed or hung worker is respawned from the spec
    and deterministically replayed to the last completed epoch barrier
    (digest-verified) per ``policy``; when retries run out a
    :class:`~repro.resilience.supervisor.SupervisionEscalation`
    propagates so the caller can degrade to the serial backend.
    ``budget`` is checked at every epoch barrier; exhaustion ends the
    run early with ``result.outcome == "aborted"`` and whatever stats
    the workers could still report. ``on_epoch(epoch_index, horizon,
    domain_digests, domain_counts)`` fires after every epoch (the
    checkpoint hook). ``chaos_kill=(epoch, worker)`` delivers
    ``chaos_signal`` to one worker just before that epoch — the
    deterministic fault-injection hook for tests and the
    ``chaos_recovery`` benchmark.
    """
    sim = scenario.sim
    if getattr(sim, "domains", None) is None or sim.num_domains < 2:
        raise ParallelExecutionError(
            "multiprocess backend needs a partitioned scenario with "
            ">= 2 domains (set backend/num_domains before build)"
        )
    spec = scenario.to_spec()
    num_domains = sim.num_domains
    if workers <= 0:
        # Default pool size: one worker per domain, capped at the
        # machine's CPU count. Oversubscribing a small machine buys no
        # parallelism and pays a context-switch chain at every barrier
        # (on one CPU, four workers made each epoch ~1 ms of pure
        # scheduling). Explicit counts are honored uncapped — the
        # worker-count-invariance tests depend on that.
        import os as _os

        workers = max(1, min(num_domains, _os.cpu_count() or 1))
    num_workers = min(workers, num_domains)
    owned = [list(range(w, num_domains, num_workers)) for w in range(num_workers)]
    owner_of_domain = [d % num_workers for d in range(num_domains)]

    result = MultiprocessResult()
    result.workers = num_workers
    ctx = _mp_context()

    # Single-worker fast path: one worker owns every domain and runs
    # the whole epoch loop in-process (no per-epoch IPC). Digest probes
    # cost ~25% of run time, so the fast path attaches them only when
    # the caller asked to sanitize — matching the serial timing leg,
    # which also runs unprobed.
    fast = (
        num_workers == 1
        and chaos_kill is None
        and on_epoch is None
        and budget is None
    )
    probe = (not fast) or sanitize

    def spawn(index: int):
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main,
            args=(
                child_conn, spec, owned[index], index,
                heartbeat_interval_s, probe,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return parent_conn, proc

    supervisor = WorkerSupervisor(
        spawn,
        owned,
        policy=policy,
        epoch_timeout_s=epoch_timeout_s,
        heartbeat_interval_s=heartbeat_interval_s,
    )
    if budget is not None and budget._t0 is None:
        budget.start()
    stats: List[dict] = []
    matrix = sim.matrix
    t0 = perf_counter()  # repro: allow-wallclock
    try:
        next_times: Dict[int, float] = supervisor.start()
        # Workers are up and rebuilt; everything before this instant is
        # spawn/build cost, reported separately so wall_time_s measures
        # the run phase — the same phase the serial wall clock covers.
        result.spawn_s = perf_counter() - t0  # repro: allow-wallclock
        t0 = perf_counter()  # repro: allow-wallclock
        if fast:
            # One worker owns every domain: no cross-worker mail, no
            # global minimum to compute — the worker runs the serial
            # epoch loop itself and reports once at the end.
            reply = supervisor.run_all(until)
            result.wall_time_s = perf_counter() - t0  # repro: allow-wallclock
            next_times.update(reply[1])
            result.epochs, result.messages_routed = reply[2]
            for d, (digest, count) in reply[3].items():
                result.domain_digests[d] = digest
                result.domain_digest_events[d] = count
            stats = supervisor.finish(until)
        else:
            pending: List[DomainMessage] = []
            while True:
                eff_next = [
                    next_times.get(d, INFINITY) for d in range(num_domains)
                ]
                for message in pending:
                    if message.time < eff_next[message.dst_domain]:
                        eff_next[message.dst_domain] = message.time
                windows = epoch_windows(eff_next, matrix, until)
                if windows is None:
                    break
                barrier = INFINITY
                for window in windows:
                    if window is not None and window[0] < barrier:
                        barrier = window[0]
                pending.sort(key=lambda m: (m.time, m.src_domain, m.seq))
                slices: List[List[DomainMessage]] = [
                    [] for _ in range(num_workers)
                ]
                for message in pending:
                    slices[owner_of_domain[message.dst_domain]].append(message)
                result.messages_routed += len(pending)
                pending = []
                frames = [pack_frame(messages) for messages in slices]
                if (
                    chaos_kill is not None
                    and supervisor.epoch_index == chaos_kill[0]
                ):
                    supervisor.kill(chaos_kill[1] % num_workers, chaos_signal)
                replies = supervisor.run_epoch(windows, frames)
                for reply in replies:
                    next_times.update(reply[1])
                    pending.extend(unpack_frame(reply[2]))
                    for d, (digest, count) in reply[3].items():
                        result.domain_digests[d] = digest
                        result.domain_digest_events[d] = count
                result.epochs += 1
                if budget is not None:
                    budget.check(
                        events=sum(result.domain_digest_events.values()),
                        pids=supervisor.pids(),
                    )
                if on_epoch is not None:
                    on_epoch(
                        result.epochs - 1,
                        barrier,
                        dict(result.domain_digests),
                        dict(result.domain_digest_events),
                    )
            result.wall_time_s = perf_counter() - t0  # repro: allow-wallclock
            stats = supervisor.finish(until)
    except BudgetExceeded as exc:
        result.outcome = "aborted"
        result.abort_reason = exc.reason
        result.budget_error = exc
        try:
            # Best-effort partial stats: no clock fast-forward.
            stats = supervisor.finish(None)
        except ResilienceError:
            stats = []
    finally:
        result.heartbeats_missed = supervisor.heartbeats_missed
        result.workers_restarted = supervisor.workers_restarted
        result.retries = supervisor.retries
        supervisor.shutdown()
    if result.wall_time_s == 0.0:
        # Aborted runs never reached the run-phase clock stop above.
        result.wall_time_s = perf_counter() - t0  # repro: allow-wallclock
    result.metric_overlay["parallel.spawn_s"] = result.spawn_s

    _merge_stats(
        scenario,
        stats,
        until if result.outcome == "completed" else None,
        result,
    )
    return result


def _merge_stats(scenario, stats: List[dict], until, result) -> None:
    """Patch the parent's never-run emulation with worker state so the
    standard report path reads true numbers."""
    sim = scenario.sim
    emulation = scenario.emulation
    monitor = emulation.monitor
    edge_cpu_busy = 0.0
    edge_switches = 0
    tcp_totals: Dict[str, int] = {}
    samples: List[Tuple[int, List[float]]] = []
    for worker_stats in stats:
        for d, (dispatched, now) in worker_stats["domains"].items():
            sim.domains[d].restore_progress(dispatched, now)
            result.events_by_domain[d] = dispatched
        for index, fields in worker_stats["cores"].items():
            core = emulation.cores[index]
            core.scheduler.wakeups = fields["wakeups"]
            core.scheduler.hops_serviced = fields["hops_serviced"]
            core.cpu_busy_s = fields["cpu_busy_s"]
            core.packets_processed = fields["packets_processed"]
            core.hops_processed = fields["hops_processed"]
            core.tick_overruns = fields["tick_overruns"]
            core.tunnels_sent = fields["tunnels_sent"]
            core.tunnels_received = fields["tunnels_received"]
            if core.ingress_link is not None:
                core.ingress_link.bytes_sent = fields["nic_in_bytes"]
            if core.egress_link is not None:
                core.egress_link.bytes_sent = fields["nic_out_bytes"]
        for pipe_id, values in worker_stats["pipes"].items():
            pipe = emulation._pipes_by_id[pipe_id]
            (pipe.arrivals, pipe.departures, pipe.drops_overflow,
             pipe.drops_random, pipe.drops_down, pipe.bytes_accepted,
             pipe.bytes_through, pipe.peak_backlog) = values
        for host_index, (up, down) in worker_stats["hosts"].items():
            host = emulation.hosts[host_index]
            host.uplink.bytes_sent = up
            host.downlink.bytes_sent = down
        busy, switches = worker_stats["edge_cpu"]
        edge_cpu_busy += busy
        edge_switches += switches
        for key, value in worker_stats["tcp"].items():
            tcp_totals[key] = tcp_totals.get(key, 0) + value
        m = worker_stats["monitor"]
        monitor.packets_entered += m["packets_entered"]
        monitor.packets_delivered += m["packets_delivered"]
        monitor.packets_unroutable += m["packets_unroutable"]
        monitor.physical_drops_ring += m["physical_drops_ring"]
        monitor.physical_drops_egress += m["physical_drops_egress"]
        monitor.physical_drops_uplink += m["physical_drops_uplink"]
        monitor.tunnels += m["tunnels"]
        for d, (digest, count) in worker_stats["digests"].items():
            result.domain_digests[d] = digest
            result.domain_digest_events[d] = count
        min_domain = min(worker_stats["domains"]) if worker_stats["domains"] else 0
        fault_counters = worker_stats.get("faults")
        if (
            fault_counters is not None
            and emulation.fault_applier is not None
            and min_domain == 0
        ):
            emulation.fault_applier.absorb(fault_counters)
        samples.append((min_domain, m["error_samples"]))
    # Error samples merged in domain order so the stored list is
    # worker-count independent (derived stats are order-invariant
    # regardless, via the sort in monitor.report()).
    for _, worker_samples in sorted(samples, key=lambda pair: pair[0]):
        room = monitor.max_samples - len(monitor.error_samples)
        if room <= 0:
            break
        monitor.error_samples.extend(worker_samples[:room])
    sim.epochs = result.epochs
    sim.router.messages_routed = result.messages_routed
    if until is not None:
        # The parent's kernels never ran; their heaps still hold the
        # initial schedule, so this alignment cannot be strict.
        sim.fast_forward(until, strict=False)
    for key, value in tcp_totals.items():
        result.metric_overlay[f"tcp.{key}"] = value
    if any(host.cpu is not None for host in emulation.hosts):
        result.metric_overlay["edge.cpu_busy_s"] = edge_cpu_busy
        result.metric_overlay["edge.context_switches"] = edge_switches
