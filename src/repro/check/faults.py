"""Fault-mutation discipline rules (FLT).

The declarative fault timeline (DESIGN.md §12, :mod:`repro.faults`)
keeps link/node churn digest-identical across backends by funneling
every topology mutation through one sanctioned applier
(:class:`repro.core.faults.FaultApplier`): a plan travels in the
:class:`~repro.api.ScenarioSpec`, is lowered to a sorted occurrence
list, and is applied either at exact virtual times (single-domain) or
at epoch barriers every participant computes identically
(partitioned, serial or multiprocess). Engine or core code that
mutates link state directly — calling ``set_link_up``/
``set_link_params``/``set_params``, or assigning a pipe's or link's
``latency_s``/``bandwidth_bps``/``loss_rate``/``up`` attribute —
changes per-process pipe state *outside* the timeline: workers that
never execute that code path diverge from workers that do, and the
digest contract breaks in a way the sanitizer only catches after the
fact. Route the mutation through a :class:`~repro.faults.FaultPlan`
(or the imperative :class:`~repro.core.faults.FaultInjector`, which
shares the applier's primitives) instead.

========  ============================================================
FLT001    Direct fault mutation: a ``set_link_up``/``set_link_params``
          /``set_params`` call, or an assignment to a ``latency_s``/
          ``bandwidth_bps``/``loss_rate``/``up`` attribute, in
          ``engine/`` or ``core/`` code outside the sanctioned
          applier. Declare the change as a FaultPlan event so every
          backend applies it at the same point in virtual time.
========  ============================================================

Scope: files whose path contains an ``engine`` or ``core`` component.
Exempt wholesale: ``core/faults.py`` (the sanctioned applier itself),
``core/emulator.py`` (owns the ``set_link_*`` primitives the applier
calls), and ``core/pipe.py`` (a pipe initializes and adjusts its own
parameters). Suppressions: ``# repro: allow-fault-mutation``.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List

from repro.check.model import ModuleModel, Violation, register_rules

RULES: Dict[str, tuple] = {
    "FLT001": (
        "fault-mutation",
        "link state mutated outside the sanctioned fault applier; "
        "declare the change as a FaultPlan event so every backend "
        "applies it at the same point in virtual time",
    ),
}

register_rules(RULES)

#: Path components that put a file in scope (the same closure the
#: KERN/DOM families guard: the engine and the emulation core).
FLT_PACKAGES = {"engine", "core"}

#: Sanctioned homes of link-state mechanics.
_EXEMPT_SUFFIXES = (
    os.path.join("core", "faults.py"),
    os.path.join("core", "emulator.py"),
    os.path.join("core", "pipe.py"),
)

#: Method calls that flip link state.
_MUTATOR_CALLS = {"set_link_up", "set_link_params", "set_params"}

#: Attribute assignments that flip link state.
_MUTATOR_ATTRS = {"latency_s", "bandwidth_bps", "loss_rate", "up"}


def in_scope(path: str) -> bool:
    normalized = os.path.normpath(path)
    parts = normalized.split(os.sep)
    if not FLT_PACKAGES.intersection(parts):
        return False
    return not normalized.endswith(_EXEMPT_SUFFIXES)


class _FaultVisitor:
    def __init__(self, model: ModuleModel):
        self.model = model
        self.violations: List[Violation] = []

    def _flag(self, node: ast.AST, detail: str) -> None:
        self.violations.append(
            Violation(
                "FLT001",
                self.model.path,
                node.lineno,
                node.col_offset + 1,
                f"{RULES['FLT001'][1]} [{detail}]",
            )
        )

    def check_function(self, fn: ast.AST) -> None:
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_CALLS
                ):
                    self._flag(node, f".{func.attr}() call")
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in _MUTATOR_ATTRS
                        # self.<attr> = ... is an object initializing or
                        # adjusting its own field, not an outside
                        # mutation of link state.
                        and not (
                            isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        )
                    ):
                        self._flag(node, f".{target.attr} assignment")


def collect(model: ModuleModel) -> List[Violation]:
    """Raw FLT violations for one module (no suppression applied; the
    :func:`repro.check.model.check_paths` driver does that)."""
    if not in_scope(model.path):
        return []
    visitor = _FaultVisitor(model)
    for fn, _cls in model.functions:
        visitor.check_function(fn)
    return visitor.violations
