"""Spec-portability rules (PORT): what may cross a process boundary.

The multiprocess backend and the resilience layer rebuild workers from
two picklable currencies — :class:`~repro.api.ScenarioSpec` (the full
scenario, for spawn/respawn) and
:class:`~repro.engine.sync.DomainMessage` (cross-domain mail, for
epoch injection). Anything that rides either channel but cannot be
pickled — a lambda, a nested closure, a bound method — works under
``fork`` by accident and dies under ``spawn`` or on the first worker
respawn. These rules keep the currencies honest statically:

========  ============================================================
PORT001   A lambda or nested-function reference passed into a
          ``DomainMessage(...)`` constructor or a ``router.send(...)``
          call: closures cannot cross the pipe. Encode behavior as a
          ``(kind, target)`` pair and resolve it worker-side (the
          ``encode_message``/``decode_message`` discipline).
PORT002   ``Process(target=...)`` whose target is a lambda, a nested
          function, or a ``self.``-bound method: unpicklable under the
          spawn start method, so the backend silently stops being
          portable. Targets must be module-level functions.
PORT003   A class with a ``to_spec``/``from_spec`` pair assigns a
          persistent ``self._field`` in ``__init__`` that ``to_spec``
          never reads: the field silently fails to round-trip, so a
          respawned worker rebuilds a *different* scenario. Runtime-
          only state carries ``# repro: allow-spec-drift`` with a
          why-comment.
========  ============================================================

Scope: PORT001/PORT002 apply to files with an ``engine``, ``core`` or
``resilience`` path component (where the process boundary lives);
PORT003 applies wherever a ``to_spec``/``from_spec`` pair is defined.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List, Optional, Set, Tuple

from repro.check.model import (
    ModuleModel,
    Violation,
    attr_chain,
    register_rules,
)

RULES: Dict[str, tuple] = {
    "PORT001": (
        "closure-payload",
        "closure or nested function in a cross-domain payload; encode "
        "behavior as picklable (kind, target) data instead",
    ),
    "PORT002": (
        "process-target",
        "Process target is not a module-level function; it cannot be "
        "pickled under the spawn start method",
    ),
    "PORT003": (
        "spec-drift",
        "field assigned in __init__ but never read by to_spec; it "
        "will not survive a spec round-trip (worker respawn/resume)",
    ),
}

register_rules(RULES)

#: Path components where the process boundary lives (PORT001/PORT002).
PORT_PACKAGES = {"engine", "core", "resilience"}


def in_boundary_scope(path: str) -> bool:
    parts = os.path.normpath(path).split(os.sep)
    return bool(PORT_PACKAGES.intersection(parts))


class _PortVisitor:
    def __init__(self, model: ModuleModel):
        self.model = model
        self.violations: List[Violation] = []

    def _flag(self, rule: str, node: ast.AST, detail: str = "") -> None:
        message = RULES[rule][1]
        if detail:
            message = f"{message} [{detail}]"
        self.violations.append(
            Violation(
                rule, self.model.path, node.lineno, node.col_offset + 1, message
            )
        )

    # -- PORT001 / PORT002 -----------------------------------------------

    def check_function(self, fn: ast.AST) -> None:
        nested = self.model.nested_functions(fn)
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            if self._is_payload_call(node):
                self._check_payload(node, nested)
            if self._is_process_ctor(node):
                self._check_target(node, nested)

    @staticmethod
    def _is_payload_call(node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "DomainMessage"
        chain = attr_chain(func)
        if not chain:
            return False
        if chain[-1] == "DomainMessage":
            return True
        return chain[-1] == "send" and any(
            "router" in part for part in chain[:-1]
        )

    @staticmethod
    def _is_process_ctor(node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "Process"
        chain = attr_chain(func)
        return bool(chain) and chain[-1] == "Process"

    def _check_payload(self, node: ast.Call, nested: Set[str]) -> None:
        values = list(node.args) + [kw.value for kw in node.keywords]
        for value in values:
            for sub in ast.walk(value):
                if isinstance(sub, ast.Lambda):
                    self._flag("PORT001", sub, "lambda in payload")
                elif isinstance(sub, ast.Name) and sub.id in nested:
                    self._flag(
                        "PORT001", sub,
                        f"nested function {sub.id!r} in payload",
                    )

    def _check_target(self, node: ast.Call, nested: Set[str]) -> None:
        target: Optional[ast.expr] = None
        for keyword in node.keywords:
            if keyword.arg == "target":
                target = keyword.value
        if target is None:
            return
        if isinstance(target, ast.Lambda):
            self._flag("PORT002", target, "lambda target")
        elif isinstance(target, ast.Name):
            if target.id in nested:
                self._flag(
                    "PORT002", target,
                    f"nested function {target.id!r} as target",
                )
        elif isinstance(target, ast.Attribute):
            chain = attr_chain(target)
            if chain and chain[0] == "self":
                self._flag(
                    "PORT002", target,
                    f"bound method {'.'.join(chain)!r} as target",
                )


# ----------------------------------------------------------------------
# PORT003: spec round-trip drift
# ----------------------------------------------------------------------


def _self_calls(fn: ast.AST, methods: Dict[str, ast.AST]) -> Set[str]:
    """Same-class methods ``fn`` calls (``self.m(...)``), plus
    ``__init__`` when it constructs its own class (``cls(...)``)."""
    called: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        chain = attr_chain(func)
        if chain and len(chain) == 2 and chain[0] in ("self", "cls") \
                and chain[1] in methods:
            called.add(chain[1])
        elif isinstance(func, ast.Name) and func.id == "cls":
            called.add("__init__")
    return called


def _transitive_bodies(
    seeds: List[str], methods: Dict[str, ast.AST]
) -> List[ast.AST]:
    """Fixpoint expansion of ``seeds`` through same-class calls."""
    todo = [name for name in seeds if name in methods]
    seen: Set[str] = set()
    bodies: List[ast.AST] = []
    while todo:
        name = todo.pop()
        if name in seen:
            continue
        seen.add(name)
        fn = methods[name]
        bodies.append(fn)
        todo.extend(_self_calls(fn, methods))
    return bodies


def _init_fields(bodies: List[ast.AST]) -> Dict[str, ast.AST]:
    """Underscore-prefixed ``self._x`` assignments (field -> first
    assignment node, for the violation anchor)."""
    fields: Dict[str, ast.AST] = {}
    for body in bodies:
        for node in ast.walk(body):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            for target in targets:
                chain = attr_chain(target) if isinstance(
                    target, ast.Attribute
                ) else None
                if (
                    chain
                    and len(chain) == 2
                    and chain[0] == "self"
                    and chain[1].startswith("_")
                    and not chain[1].startswith("__")
                ):
                    fields.setdefault(chain[1], node)
    return fields


def _referenced_fields(bodies: List[ast.AST]) -> Set[str]:
    found: Set[str] = set()
    for body in bodies:
        for node in ast.walk(body):
            if isinstance(node, ast.Attribute):
                chain = attr_chain(node)
                if chain and chain[0] in ("self", "scenario", "obj") \
                        and len(chain) >= 2:
                    found.add(chain[1])
    return found


def _check_spec_drift(model: ModuleModel) -> List[Violation]:
    violations: List[Violation] = []
    for cls_name, cls in model.classes.items():
        methods = model.methods_of(cls)
        if "to_spec" not in methods or "from_spec" not in methods:
            continue
        if "__init__" not in methods:
            continue
        init_bodies = _transitive_bodies(["__init__"], methods)
        persistent = _init_fields(init_bodies)
        spec_bodies = _transitive_bodies(["to_spec"], methods)
        covered = _referenced_fields(spec_bodies)
        for field, node in sorted(persistent.items()):
            if field in covered:
                continue
            violations.append(
                Violation(
                    "PORT003",
                    model.path,
                    node.lineno,
                    node.col_offset + 1,
                    f"{RULES['PORT003'][1]} "
                    f"[{cls_name}.{field} not read by to_spec]",
                )
            )
    return violations


def collect(model: ModuleModel) -> List[Violation]:
    """Raw PORT violations for one module (suppression is applied by
    the :func:`repro.check.model.check_paths` driver)."""
    violations: List[Violation] = []
    if in_boundary_scope(model.path):
        visitor = _PortVisitor(model)
        for fn, _cls in model.functions:
            visitor.check_function(fn)
        violations.extend(visitor.violations)
    violations.extend(_check_spec_drift(model))
    return violations
