"""Cross-domain safety rules (DOM) and epoch-discipline rules (EPO).

The partitioned engine's scalability argument (DESIGN.md §8, and the
paper's conservative-synchronization discipline) rests on two
invariants that no runtime check can attribute to a line of code:

1. **Isolation** — cross-domain effects travel only through
   :meth:`~repro.engine.sync.DomainRouter.send`. Code in ``engine/``
   or ``core/`` that schedules onto, reads the clock of, or mutates
   the state of a domain object it does not own silently breaks
   digest invariance across worker counts; the runtime sanitizer sees
   the divergence but not the culprit.
2. **Causality** — a cross-domain message sent at virtual time ``t``
   must not arrive before ``t + lookahead``, the minimum cross-core
   latency from :mod:`repro.hardware.calibration`. An event posted
   below that horizon can land inside an epoch another domain has
   already dispatched past.

These rules prove both properties up front, over the conservative
ownership model of :mod:`repro.check.model` (table subscripts and
their aliases are *potentially foreign*; bound attributes like
``self.sim`` are one's own):

========  ============================================================
DOM001    ``.schedule`` / ``.at`` / ``.post`` / ``.call_soon`` invoked
          on another domain's kernel (``sim.domains[i].post(...)``).
          Cross-domain work must go through ``DomainRouter.send``.
DOM002    Attribute write on another domain's kernel
          (``sim.domains[i]._now = t``, or via an alias). Barrier-side
          executors use the sanctioned facades
          (:meth:`~repro.engine.sync.PartitionedSimulator.fast_forward`,
          :meth:`~repro.engine.domain.EventDomain.restore_progress`)
          or carry an explicit allow.
DOM003    Method call on a peer core/host fetched from an ownership
          table (``emulation.cores[i].physical_ingress(...)``) in a
          function with no domain guard (no ``_domain_of_core`` /
          ``domain_id`` / ``router`` reference): under partitioning
          this injects work into a foreign heap directly.
EPO001    Read of another domain's clock or heap internals
          (``sim.domains[i]._now`` / ``.now`` / ``._heap`` /
          ``._seq``) — only the epoch barrier may compare clocks
          across domains.
EPO002    ``router.send`` whose delivery time is provably below the
          pairwise sync horizon: a bare ``now``, a constant offset
          smaller than ``min_cross_core_latency`` (the floor of every
          lookahead-matrix entry), or a ``min()``/``max()`` fold that
          bounds the time below the floor. Delivery times must come
          from :meth:`~repro.engine.sync.DomainChannel.delivery_time`
          or :meth:`~repro.engine.sync.DomainChannel.handoff_time`
          (whose latency is never below the floor) or add at least
          the lookahead.
========  ============================================================

Scope: files whose path contains an ``engine`` or ``core`` component.
``engine/sync.py`` — the router, the epoch barrier, and the
:class:`~repro.engine.sync.PartitionedSimulator` facade — is the one
sanctioned home of cross-domain mechanics and is exempt wholesale.
Suppressions: ``# repro: allow-<tag>`` per rule, as everywhere in
:mod:`repro.check`.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List, Optional, Set

from repro.check.model import (
    ModuleModel,
    Violation,
    attr_chain,
    register_rules,
)

RULES: Dict[str, tuple] = {
    "DOM001": (
        "cross-domain-schedule",
        "scheduling onto another domain's kernel; route the work "
        "through DomainRouter.send",
    ),
    "DOM002": (
        "cross-domain-state",
        "attribute write on another domain's kernel; use the barrier "
        "facades (fast_forward/restore_progress) or DomainRouter.send",
    ),
    "DOM003": (
        "unrouted-peer-call",
        "direct call into a peer core/host with no domain guard; "
        "check _domain_of_core/_domain_of_host and use "
        "DomainRouter.send for the foreign case",
    ),
    "EPO001": (
        "cross-domain-clock",
        "read of another domain's clock/heap outside the epoch "
        "barrier; only the synchronizer may compare clocks",
    ),
    "EPO002": (
        "sub-lookahead",
        "cross-domain send below the pairwise sync horizon; derive "
        "the delivery time from DomainChannel.delivery_time or "
        ".handoff_time (never below the channel floor)",
    ),
}

register_rules(RULES)

#: Path components that put a file in scope.
DOM_PACKAGES = {"engine", "core"}

#: The sanctioned home of cross-domain mechanics.
ROUTER_HOME = os.path.join("engine", "sync.py")

#: Kernel scheduling entry points (DOM001).
_SCHED_METHODS = {"schedule", "at", "post", "call_soon"}

#: Clock/heap internals another domain must never read (EPO001).
_CLOCK_ATTRS = {"now", "_now", "_heap", "_seq"}

#: Identifiers whose presence marks a function as domain-aware: it
#: either consults the ownership directory or holds the router, so its
#: peer-object calls are the guarded local-case branch (DOM003).
_GUARD_NAMES = {
    "_domain_of_core", "domain_of_core", "_domain_of_host",
    "domain_of_host", "domain_id", "router", "_router", "domain_of_vn",
}


def _fallback_lookahead() -> float:
    try:
        from repro.hardware.calibration import DEFAULT_CORE_SPEC
        return DEFAULT_CORE_SPEC.switch_latency_s
    except Exception:  # pragma: no cover - calibration always importable
        return 20e-6


def in_scope(path: str) -> bool:
    parts = os.path.normpath(path).split(os.sep)
    if not DOM_PACKAGES.intersection(parts):
        return False
    return not os.path.normpath(path).endswith(ROUTER_HOME)


def _identifiers(fn: ast.AST) -> Set[str]:
    """Every Name id and attribute name appearing in ``fn``."""
    found: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Name):
            found.add(node.id)
        elif isinstance(node, ast.Attribute):
            found.add(node.attr)
    return found


def _attr_base(expr: ast.expr) -> ast.expr:
    """Strip trailing attribute accesses: base of ``a.b.c`` is ``a``,
    base of ``x[i].b.c`` is ``x[i]``."""
    while isinstance(expr, ast.Attribute):
        expr = expr.value
    return expr


class _DomainVisitor:
    def __init__(self, model: ModuleModel):
        self.model = model
        self.violations: List[Violation] = []

    def _flag(self, rule: str, node: ast.AST, detail: str = "") -> None:
        message = RULES[rule][1]
        if detail:
            message = f"{message} [{detail}]"
        self.violations.append(
            Violation(
                rule, self.model.path, node.lineno, node.col_offset + 1, message
            )
        )

    def check_function(self, fn: ast.AST) -> None:
        model = self.model
        aliases = model.aliases(fn)
        guarded = bool(_GUARD_NAMES & _identifiers(fn))
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                self._check_call(node, aliases, guarded)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                self._check_store(node, aliases)
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                self._check_clock_read(node, aliases)

    # -- DOM001 / DOM003 / EPO002 ---------------------------------------

    def _check_call(
        self, node: ast.Call, aliases: Dict[str, str], guarded: bool
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        base = _attr_base(func.value)
        kind = self.model.owned_kind(base, aliases)
        if kind == "domain" and func.attr in _SCHED_METHODS:
            self._flag("DOM001", node, f".{func.attr}() on a foreign domain")
        elif kind in ("core", "host") and not guarded:
            self._flag(
                "DOM003", node,
                f".{func.attr}() on a table-fetched {kind} in an "
                f"unguarded function",
            )
        if func.attr == "send":
            chain = attr_chain(func)
            if chain and any("router" in part for part in chain[:-1]):
                self._check_send_horizon(node)

    #: DomainChannel methods whose results satisfy the horizon by
    #: construction (their latency is validated >= the floor).
    _SANCTIONED_TIME_FNS = ("delivery_time", "handoff_time")

    @staticmethod
    def _is_fold_call(expr: ast.AST) -> bool:
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("min", "max")
        )

    def _fold_bound(self, expr: ast.expr) -> Optional[float]:
        """Provable upper bound of a time expression, when one exists:
        numeric constants, ``a + b`` of foldable parts, and
        ``min()``/``max()`` folds. A ``min()`` is bounded by its
        smallest foldable argument even when other arguments are
        opaque; a ``max()`` only when every argument folds."""
        value = self.model.const_number(expr)
        if value is not None:
            return value
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            left = self._fold_bound(expr.left)
            right = self._fold_bound(expr.right)
            if left is not None and right is not None:
                return left + right
            return None
        if self._is_fold_call(expr) and expr.args:
            bounds = [self._fold_bound(arg) for arg in expr.args]
            folded = [bound for bound in bounds if bound is not None]
            if not folded:
                return None
            if expr.func.id == "min":
                return min(folded)
            if len(folded) == len(bounds):
                return max(folded)
        return None

    def _check_send_horizon(self, node: ast.Call) -> None:
        if not node.args:
            return
        time_arg = node.args[0]
        # The sanctioned shapes: DomainChannel.delivery_time(...) /
        # .handoff_time(...) calls (latency validated >= the floor of
        # every lookahead-matrix entry at runtime).
        if isinstance(time_arg, ast.Call) and not self._is_fold_call(time_arg):
            chain = attr_chain(time_arg.func)
            if chain and chain[-1] in self._SANCTIONED_TIME_FNS:
                return
            return  # other computed times: not statically provable
        lookahead = _fallback_lookahead()
        # `now + C`: fold the additive offset and bound it.
        if isinstance(time_arg, ast.BinOp) and isinstance(time_arg.op, ast.Add):
            for operand in (time_arg.right, time_arg.left):
                offset = self._fold_bound(operand)
                if offset is not None and offset < lookahead:
                    self._flag(
                        "EPO002", node,
                        f"delay {offset:g}s < pairwise horizon floor "
                        f"{lookahead:g}s",
                    )
                    return
            return
        # A bare clock read (`now`, `self.sim._now`) is a zero delay.
        chain = attr_chain(time_arg)
        if chain and chain[-1] in ("now", "_now"):
            self._flag("EPO002", node, "zero-delay send (bare clock value)")
            return
        value = self._fold_bound(time_arg)
        if value is not None and value < lookahead:
            self._flag(
                "EPO002", node,
                f"constant time {value:g}s < pairwise horizon floor "
                f"{lookahead:g}s",
            )

    # -- DOM002 ----------------------------------------------------------

    def _check_store(self, node, aliases: Dict[str, str]) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            base = _attr_base(target.value)
            if self.model.owned_kind(base, aliases) == "domain":
                self._flag("DOM002", node, f"write to .{target.attr}")

    # -- EPO001 ----------------------------------------------------------

    def _check_clock_read(self, node: ast.Attribute, aliases) -> None:
        if node.attr not in _CLOCK_ATTRS:
            return
        if self.model.owned_kind(node.value, aliases) == "domain":
            self._flag("EPO001", node, f"read of .{node.attr}")


def collect(model: ModuleModel) -> List[Violation]:
    """Raw DOM/EPO violations for one module (no suppression applied;
    the :func:`repro.check.model.check_paths` driver does that)."""
    if not in_scope(model.path):
        return []
    visitor = _DomainVisitor(model)
    for fn, _cls in model.functions:
        visitor.check_function(fn)
    return visitor.violations
