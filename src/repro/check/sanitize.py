"""Runtime simulation sanitizer: double-run digest comparison.

The static pass (:mod:`repro.check.lint`) catches the *patterns* that
break determinism; this module catches the *fact* of it. A
:class:`SimSanitizer` hooks a :class:`~repro.engine.simulator.Simulator`'s
dispatch path and records, per fired event, a
:class:`DispatchRecord` of ``(virtual time, heap sequence number,
callsite)`` folded into a streaming SHA-256. Running the same seeded
scenario twice and comparing digests answers the only question that
matters — "same seed, same trace?" — and when the answer is no,
:func:`compare_runs` diffs the two record streams to pinpoint the
**first divergent event** (and whether the divergence is merely a
same-timestamp tie-order flip, the classic symptom of iterating an
unordered container into the heap).

Optionally the sanitizer freezes :class:`~repro.net.packet.Packet`
instances once a pipe accepts them, so post-enqueue mutation (the
paper's by-reference descriptors make this an easy bug) raises
immediately at the write site instead of silently corrupting a later
hop.
"""

from __future__ import annotations

import functools
import hashlib
import struct
from dataclasses import dataclass, field
from typing import Any, Callable, List, NamedTuple, Optional

from repro.engine.simulator import Event, Simulator


class DispatchRecord(NamedTuple):
    """One dispatched event, as the digest sees it."""

    time: float
    seq: int
    callsite: str

    def __str__(self) -> str:
        return f"t={self.time:.9f} seq={self.seq} {self.callsite}"


def _callsite(fn: Callable) -> str:
    """A stable name for an event callback: ``module.qualname``."""
    while isinstance(fn, functools.partial):
        fn = fn.func
    fn = getattr(fn, "__func__", fn)
    module = getattr(fn, "__module__", None) or "?"
    qualname = getattr(fn, "__qualname__", None) or repr(fn)
    return f"{module}.{qualname}"


class DomainProbe:
    """A streaming per-domain digest: one :class:`DomainProbe` hooks
    one :class:`~repro.engine.domain.EventDomain`.

    The probe folds every dispatch into its own SHA-256 — never into a
    shared one — so a partitioned run's identity is a *set* of
    per-domain digests that can be composed
    (:func:`compose_domain_digests`) and compared across executors:
    the serial epoch loop and the multiprocess workers dispatch each
    domain's events identically, and per-domain digests are blind to
    how domains were interleaved around them.
    """

    def __init__(self, domain_id: int, keep_records: bool = True):
        self.domain_id = domain_id
        self.count = 0
        self._hash = hashlib.sha256()
        self.records: Optional[List[DispatchRecord]] = (
            [] if keep_records else None
        )
        self._domain = None

    def attach(self, domain) -> "DomainProbe":
        previous = domain.on_dispatch

        def hook(event: Event, fn: Callable) -> None:
            if previous is not None:
                previous(event, fn)
            self.observe(event, fn)

        domain.on_dispatch = hook
        self._domain = domain
        return self

    def detach(self) -> None:
        if self._domain is not None:
            self._domain.on_dispatch = None
            self._domain = None

    def observe(self, event: Event, fn: Callable) -> None:
        callsite = _callsite(fn)
        self._hash.update(struct.pack("<dq", event.time, event.seq))
        self._hash.update(callsite.encode())
        if self.records is not None:
            self.records.append(DispatchRecord(event.time, event.seq, callsite))
        self.count += 1

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


def diff_domain_digests(expected, actual) -> List[int]:
    """Domain ids whose digests disagree (or exist on one side only).

    The recovery digest compare: the resilience supervisor uses this
    to decide whether a replayed worker reproduced its pre-crash event
    stream, and ``--resume`` uses it to verify a replayed prefix
    against a checkpoint. Values are hex digest strings keyed by
    domain id.
    """
    ids = sorted(set(expected) | set(actual))
    return [d for d in ids if expected.get(d) != actual.get(d)]


def compose_domain_digests(digests) -> str:
    """Fold per-domain digests into one, sorted by domain id.

    The composition is executor-independent: a serial partitioned run
    and a multiprocess run (any worker count) of the same scenario
    produce the same per-domain digests, hence the same composition.
    """
    composed = hashlib.sha256()
    for domain_id in sorted(digests):
        composed.update(f"{domain_id}:{digests[domain_id]}\n".encode())
    return composed.hexdigest()


class SimSanitizer:
    """Record a digest of every dispatched event on one simulator.

    >>> sim = Simulator()
    >>> sanitizer = SimSanitizer()
    >>> sanitizer.attach(sim)
    >>> # ... schedule and run ...
    >>> sanitizer.digest  # doctest: +SKIP
    'e3b0c442...'
    """

    def __init__(self, freeze_packets: bool = False, keep_records: bool = True):
        self.records: List[DispatchRecord] = []
        self.dispatched = 0
        self._hash = hashlib.sha256()
        self._sim: Optional[Simulator] = None
        self._probes: Optional[List[DomainProbe]] = None
        self._freeze_packets = freeze_packets
        #: ``keep_records=False`` keeps only the streaming digest —
        #: O(1) memory for long supervised runs that never need the
        #: record-level diff (resilience attaches sanitizers for the
        #: whole run; storing every DispatchRecord would dwarf the
        #: emulation itself).
        self._keep_records = keep_records
        self._frozen_ids: set = set()
        self._freeze_undo: Optional[Callable[[], None]] = None

    # -- lifecycle ------------------------------------------------------

    def attach(self, sim) -> "SimSanitizer":
        """Install the dispatch hook (chains with any existing one).

        A partitioned simulator (anything exposing ``domains`` with
        more than one) gets one :class:`DomainProbe` per domain and a
        *composed* digest, so its identity is comparable with a
        multiprocess run of the same scenario.
        """
        if self._sim is not None:
            raise RuntimeError("sanitizer is already attached")
        self._sim = sim
        domains = getattr(sim, "domains", None)
        if domains is not None and len(domains) > 1:
            self._probes = [
                DomainProbe(
                    domain.domain_id, keep_records=self._keep_records
                ).attach(domain)
                for domain in domains
            ]
        else:
            previous = sim.on_dispatch

            def hook(event: Event, fn: Callable) -> None:
                if previous is not None:
                    previous(event, fn)
                self._observe(event, fn)

            sim.on_dispatch = hook
        if self._freeze_packets:
            self._install_freeze()
        return self

    def detach(self) -> None:
        """Remove hooks; recorded data stays readable."""
        if self._probes is not None:
            for probe in self._probes:
                probe.detach()
            # Materialize the merged view (domain-id order): records
            # for diffing, the total for summaries. The digest stays
            # the composition of the per-domain hashes.
            self.records = [
                record
                for probe in self._probes
                for record in (probe.records or [])
            ]
            self.dispatched = sum(probe.count for probe in self._probes)
            self._sim = None
        elif self._sim is not None:
            self._sim.on_dispatch = None
            self._sim = None
        if self._freeze_undo is not None:
            self._freeze_undo()
            self._freeze_undo = None

    # -- recording ------------------------------------------------------

    def _observe(self, event: Event, fn: Callable) -> None:
        callsite = _callsite(fn)
        self._hash.update(struct.pack("<dq", event.time, event.seq))
        self._hash.update(callsite.encode())
        if self._keep_records:
            self.records.append(DispatchRecord(event.time, event.seq, callsite))
        self.dispatched += 1

    def domain_digests(self) -> Optional[dict]:
        """Per-domain digests of a partitioned attach (else None)."""
        if self._probes is None:
            return None
        return {probe.domain_id: probe.hexdigest() for probe in self._probes}

    def domain_counts(self) -> Optional[dict]:
        """Per-domain event counts of a partitioned attach (else None)."""
        if self._probes is None:
            return None
        return {probe.domain_id: probe.count for probe in self._probes}

    def events_observed(self) -> int:
        """Events observed so far — valid mid-run, unlike
        ``dispatched`` which (for partitioned attaches) is only
        materialized at :meth:`detach`."""
        if self._probes is not None:
            return sum(probe.count for probe in self._probes)
        return self.dispatched

    @property
    def digest(self) -> str:
        """Streaming SHA-256 over every record so far (hex). For a
        partitioned simulator this is the composed per-domain digest
        (:func:`compose_domain_digests`)."""
        if self._probes is not None:
            return compose_domain_digests(
                {probe.domain_id: probe.hexdigest() for probe in self._probes}
            )
        return self._hash.hexdigest()

    # -- packet freezing -------------------------------------------------

    def freeze(self, packet) -> None:
        """Explicitly freeze one packet (automatic after pipe
        acceptance when constructed with ``freeze_packets=True``).

        Keyed on the packet's monotonic ``id`` field, not ``id()`` —
        CPython reuses addresses, which would freeze unrelated new
        packets allocated where a dead frozen one lived."""
        self._frozen_ids.add(packet.id)

    def _install_freeze(self) -> None:
        from repro.core.pipe import Pipe
        from repro.net.packet import Packet

        frozen = self._frozen_ids
        original_arrival = Pipe.arrival

        def arrival(pipe, descriptor, now, ideal_now, rng=None):
            accepted = original_arrival(pipe, descriptor, now, ideal_now, rng)
            if accepted:
                frozen.add(descriptor.packet.id)
            return accepted

        def guarded_setattr(packet, name, value):
            if name != "id" and getattr(packet, "id", None) in frozen:
                raise AttributeError(
                    f"sanitizer: write to {name!r} on {packet!r} after it "
                    f"was enqueued (packets move by reference; mutating "
                    f"one in flight corrupts every later hop)"
                )
            object.__setattr__(packet, name, value)

        Pipe.arrival = arrival
        Packet.__setattr__ = guarded_setattr  # type: ignore[method-assign]

        def undo() -> None:
            Pipe.arrival = original_arrival
            del Packet.__setattr__

        self._freeze_undo = undo


# ----------------------------------------------------------------------
# Double-run comparison
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Divergence:
    """The first point where two same-seed traces disagree."""

    index: int
    first: Optional[DispatchRecord]
    second: Optional[DispatchRecord]
    #: True when the divergence is a reordering of events sharing one
    #: timestamp (both runs dispatch the same multiset at that time).
    tie_order_only: bool

    @property
    def time(self) -> Optional[float]:
        record = self.first or self.second
        return record.time if record else None

    def describe(self) -> str:
        if self.tie_order_only:
            kind = "same-timestamp events changed relative order"
        else:
            kind = "traces diverge"
        lines = [f"event #{self.index}: {kind}"]
        lines.append(f"  run 1: {self.first if self.first else '<trace ended>'}")
        lines.append(f"  run 2: {self.second if self.second else '<trace ended>'}")
        return "\n".join(lines)


@dataclass
class SanitizeResult:
    """Outcome of :func:`compare_runs` for one seed."""

    seed: Optional[int]
    digests: List[str] = field(default_factory=list)
    events: List[int] = field(default_factory=list)
    divergence: Optional[Divergence] = None

    @property
    def identical(self) -> bool:
        return len(set(self.digests)) <= 1

    def summary(self) -> str:
        label = "all runs" if self.seed is None else f"seed {self.seed}"
        if self.identical:
            return (
                f"{label}: OK — {len(self.digests)} runs, "
                f"{self.events[0] if self.events else 0} events, "
                f"digest {self.digests[0][:16] if self.digests else '-'}"
            )
        head = f"{label}: NONDETERMINISTIC — digests differ"
        if self.divergence is not None:
            head += "\n" + self.divergence.describe()
        return head


def _first_divergence(
    a: List[DispatchRecord], b: List[DispatchRecord]
) -> Optional[Divergence]:
    limit = min(len(a), len(b))
    for index in range(limit):
        if a[index] != b[index]:
            return Divergence(
                index, a[index], b[index],
                tie_order_only=_is_tie_flip(a, b, index),
            )
    if len(a) != len(b):
        index = limit
        return Divergence(
            index,
            a[index] if index < len(a) else None,
            b[index] if index < len(b) else None,
            tie_order_only=False,
        )
    return None


def _is_tie_flip(
    a: List[DispatchRecord], b: List[DispatchRecord], index: int
) -> bool:
    """Do both runs dispatch the same multiset of events at the
    divergent timestamp, just in a different order?

    Sequence numbers are excluded from the comparison: the heap
    assigns them in insertion order, so an insertion-order flip (the
    very bug this classifies) re-pairs seq with callsite and would
    otherwise make the multisets look genuinely different."""
    t_a, t_b = a[index].time, b[index].time
    if t_a != t_b:
        return False

    def group(records: List[DispatchRecord], time: float) -> List[tuple]:
        start = index
        while start > 0 and records[start - 1].time == time:
            start -= 1
        stop = index
        while stop < len(records) and records[stop].time == time:
            stop += 1
        return sorted((r.time, r.callsite) for r in records[start:stop])

    return group(a, t_a) == group(b, t_b)


def compare_runs(
    run_once: Callable[[SimSanitizer], Any],
    seed: Optional[int] = None,
    runs: int = 2,
    freeze_packets: bool = False,
) -> SanitizeResult:
    """Execute ``run_once`` ``runs`` times, each with a fresh
    :class:`SimSanitizer`, and diff the recorded traces.

    ``run_once(sanitizer)`` must construct the *entire* experiment
    from scratch (topology, emulation, traffic) and call
    ``sanitizer.attach(sim)`` before driving the clock — state shared
    across calls would itself be a source of coupling.
    """
    if runs < 2:
        raise ValueError(f"need at least 2 runs to compare, got {runs}")
    result = SanitizeResult(seed=seed)
    traces: List[List[DispatchRecord]] = []
    for _ in range(runs):
        sanitizer = SimSanitizer(freeze_packets=freeze_packets)
        try:
            run_once(sanitizer)
        finally:
            sanitizer.detach()
        result.digests.append(sanitizer.digest)
        result.events.append(sanitizer.dispatched)
        traces.append(sanitizer.records)
    if not result.identical:
        for trace in traces[1:]:
            divergence = _first_divergence(traces[0], trace)
            if divergence is not None:
                result.divergence = divergence
                break
    return result


def sanitize_scenario(
    make_scenario: Callable[[], Any],
    until: float,
    seed: Optional[int] = None,
    runs: int = 2,
    freeze_packets: bool = False,
) -> SanitizeResult:
    """Double-run a :class:`~repro.api.Scenario` factory.

    ``make_scenario`` must return a *fresh, unbuilt* scenario each
    call; ``seed`` (when given) overrides the scenario seed so one
    factory can sweep seeds.
    """

    def run_once(sanitizer: SimSanitizer) -> None:
        scenario = make_scenario()
        if seed is not None:
            scenario.seed(seed)
        scenario.build()
        sanitizer.attach(scenario.sim)
        scenario.run(until=until)

    return compare_runs(
        run_once, seed=seed, runs=runs, freeze_packets=freeze_packets
    )


def sanitize_scenario_multiprocess(
    make_scenario: Callable[[], Any],
    until: float,
    seed: Optional[int] = None,
    runs: int = 2,
    worker_counts=(0, 2),
) -> SanitizeResult:
    """Digest-compare multiprocess runs of a scenario factory.

    Each run rebuilds the scenario from scratch and executes it on the
    multiprocess backend with the next worker count from
    ``worker_counts`` (cycled), so the comparison covers both
    run-to-run repeatability *and* invariance to how domains are dealt
    across workers. Workers stream per-domain digests
    (:class:`DomainProbe`) which compose into one comparable hash.

    Event *records* stay in the workers, so a failing comparison
    reports digests only — rerun on the serial backend to localise the
    first divergent event.
    """
    from repro.engine.parallel import run_multiprocess

    if runs < 2:
        raise ValueError(f"need at least 2 runs to compare, got {runs}")
    result = SanitizeResult(seed=seed)
    for index in range(runs):
        workers = worker_counts[index % len(worker_counts)]
        scenario = make_scenario()
        if seed is not None:
            scenario.seed(seed)
        scenario.build()
        mp = run_multiprocess(
            scenario, until=until, workers=workers, sanitize=True
        )
        result.digests.append(mp.composed_digest)
        result.events.append(
            sum(mp.domain_digest_events.values())
        )
    return result
