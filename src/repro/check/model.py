"""Shared static-analysis infrastructure and the domain-ownership model.

Every analysis family in :mod:`repro.check` — the PR 2 determinism
lints (:mod:`repro.check.lint`), the cross-domain safety rules
(:mod:`repro.check.domains`), and the spec-portability rules
(:mod:`repro.check.portability`) — reports through the same
:class:`Violation` shape, honors the same ``# repro: allow-<tag>``
inline suppressions, and is grandfathered by the same
``check-baseline.toml``. This module owns that shared machinery plus
the :class:`ModuleModel`: a one-parse-per-file index of functions,
classes, call targets, local aliases, and *domain-table ownership*
that lets the rule modules reason about "whose object is this
expression" without each re-walking the AST.

Ownership model
---------------

The partitioned engine's isolation invariant is: **cross-domain
effects travel only through** :meth:`~repro.engine.sync.DomainRouter.send`.
Statically we approximate "another domain's object" as any expression
that reaches into one of the shared ownership tables —

* ``<x>.domains[i]`` / ``domains[i]`` — an :class:`EventDomain` kernel
  (clock, heap, seq counter) that may belong to another worker;
* ``<x>.cores[i]`` / ``cores[i]`` — a :class:`CoreNode` whose heap and
  scheduler live on that domain's clock;
* ``<x>.hosts[i]`` / ``hosts[i]`` — an :class:`EdgeHost`, clocked by
  the domain of the core it attaches to —

either directly or through a simple local alias (``d = sim.domains[i]``
or ``for d in sim.domains:``). Subscripting a table is how code
addresses *potentially foreign* objects; components reach their *own*
kernel through bound attributes (``self.sim``), which the model never
classifies. The approximation is conservative by design: legal
barrier-side code (the epoch synchronizer, worker stat collection)
either lives in the sanctioned module (``engine/sync.py``) or carries
an explicit inline allow that documents why the touch is safe.

Driver
------

:func:`check_paths` runs every registered family over a set of files
with one parse per file, applies suppressions and the baseline
centrally, and — unlike the per-family entry points — *accounts* for
escapes: an inline allow that matched no violation is reported as a
:data:`WARN_UNUSED_SUPPRESSION` warning, and a baseline entry that no
longer matches anything as :data:`WARN_STALE_BASELINE`, so stale
escapes shrink instead of accumulating.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

# ----------------------------------------------------------------------
# Violations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Violation:
    """One finding from any analysis family."""

    rule: str
    path: str
    line: int
    col: int
    message: str


def format_violation(violation: Violation) -> str:
    return (
        f"{violation.path}:{violation.line}:{violation.col}: "
        f"{violation.rule} {violation.message}"
    )


# ----------------------------------------------------------------------
# Rule registry (filled by each family module at import)
# ----------------------------------------------------------------------

#: rule id -> (suppression tag, one-line description), across families.
_REGISTRY: Dict[str, Tuple[str, str]] = {}

#: Warning pseudo-rules (never suppressible, never fail the run).
WARN_UNUSED_SUPPRESSION = "SUP001"
WARN_STALE_BASELINE = "SUP002"
WARNING_RULES: Dict[str, str] = {
    WARN_UNUSED_SUPPRESSION: (
        "unused '# repro: allow-<tag>' (no matching violation on the "
        "covered lines); delete the stale escape"
    ),
    WARN_STALE_BASELINE: (
        "baseline entry matches no current violation; delete it from "
        "check-baseline.toml"
    ),
}


def register_rules(rules: Dict[str, Tuple[str, str]]) -> None:
    """Register a family's rules so suppressions and ``--select``
    resolve across every analysis module."""
    _REGISTRY.update(rules)


def registered_rules() -> Dict[str, Tuple[str, str]]:
    """All rules across imported families (id -> (tag, description))."""
    _load_families()
    return dict(_REGISTRY)


def _load_families() -> None:
    # Import every family for its registration side effect. Function-
    # level to avoid a cycle: family modules import this module.
    from repro.check import domains, faults, kernel, lint, portability  # noqa: F401


def resolve_select(select: Optional[Iterable[str]]) -> Set[str]:
    """Expand ``--select`` tokens (rule ids or prefixes like ``DOM``,
    or ``all``) into a concrete rule-id set.

    Raises :class:`ValueError` for a token matching nothing — a usage
    error, not a clean run.
    """
    _load_families()
    if not select:
        return set(_REGISTRY)
    chosen: Set[str] = set()
    for raw in select:
        token = raw.strip()
        if not token:
            continue
        if token.lower() == "all":
            chosen |= set(_REGISTRY)
            continue
        matched = {
            rule for rule in _REGISTRY
            if rule == token or rule.startswith(token.upper())
        }
        if not matched:
            raise ValueError(
                f"--select token {token!r} matches no rule; known: "
                f"{', '.join(sorted(_REGISTRY))}"
            )
        chosen |= matched
    return chosen


# ----------------------------------------------------------------------
# Inline suppressions
# ----------------------------------------------------------------------

_MARKER = "# repro: allow-"


@dataclass
class SuppressionMarker:
    """One inline allow: covers its own line and the line below."""

    line: int
    rule: Optional[str]  # None for an unknown tag
    token: str
    used: bool = False

    def covers(self, line: int) -> bool:
        return line in (self.line, self.line + 1)


def scan_suppressions(source: str) -> List[SuppressionMarker]:
    """Find every ``# repro: allow-<tag>`` marker; tags resolve
    against the full cross-family registry (or a bare rule id).

    Only *actual comments* count (via :mod:`tokenize`), so docstrings
    and f-strings that merely mention the marker syntax are ignored.
    """
    import io
    import tokenize

    _load_families()
    tag_to_rule = {tag: rule for rule, (tag, _) in _REGISTRY.items()}
    markers: List[SuppressionMarker] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return markers
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        at = tok.string.find(_MARKER)
        if at < 0:
            continue
        token = tok.string[at + len(_MARKER):].split()[0].strip(",;")
        rule = tag_to_rule.get(token, token if token in _REGISTRY else None)
        markers.append(SuppressionMarker(tok.start[0], rule, token))
    return markers


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------


@dataclass
class BaselineEntry:
    """One grandfathered finding from ``check-baseline.toml``."""

    file: str
    rule: str
    line: Optional[int] = None
    used: bool = field(default=False, compare=False)

    def matches(self, violation: Violation) -> bool:
        if self.rule != violation.rule:
            return False
        if self.line is not None and self.line != violation.line:
            return False
        normalized = violation.path.replace(os.sep, "/")
        return normalized.endswith(self.file.replace(os.sep, "/"))


def load_baseline(path: str) -> List[BaselineEntry]:
    """Parse a ``check-baseline.toml``. Uses :mod:`tomllib` when
    available (3.11+), else a minimal parser that understands exactly
    the ``[[suppress]]`` table-array shape."""
    with open(path, "rb") as handle:
        raw = handle.read()
    try:
        import tomllib
        data = tomllib.loads(raw.decode())
        tables = data.get("suppress", [])
    except ModuleNotFoundError:  # Python 3.10
        tables = _parse_baseline_fallback(raw.decode())
    entries = []
    for table in tables:
        if "file" not in table or "rule" not in table:
            raise ValueError(
                f"{path}: every [[suppress]] entry needs 'file' and 'rule'"
            )
        entries.append(
            BaselineEntry(
                file=str(table["file"]),
                rule=str(table["rule"]),
                line=int(table["line"]) if "line" in table else None,
            )
        )
    return entries


def _parse_baseline_fallback(text: str) -> List[Dict[str, object]]:
    tables: List[Dict[str, object]] = []
    current: Optional[Dict[str, object]] = None
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line == "[[suppress]]":
            current = {}
            tables.append(current)
            continue
        if "=" in line and current is not None:
            key, _, value = line.partition("=")
            value = value.strip()
            if value.startswith(("'", '"')):
                current[key.strip()] = value[1:-1]
            else:
                current[key.strip()] = int(value)
    return tables


# ----------------------------------------------------------------------
# File discovery
# ----------------------------------------------------------------------


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d != "__pycache__" and not d.startswith(".")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        found.append(os.path.join(root, name))
        elif path.endswith(".py") and os.path.exists(path):
            found.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return found


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------


def attr_chain(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ("a", "b", "c"); None for non-trivial bases."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


#: Ownership tables: attribute/name -> kind of object the table holds.
DOMAIN_TABLES: Dict[str, str] = {
    "domains": "domain",
    "cores": "core",
    "hosts": "host",
}


class ModuleModel:
    """A one-parse index of a module for the analysis families.

    Exposes the parsed ``tree`` plus:

    * ``functions`` — every (async) function/method with its enclosing
      class name (None at module level);
    * ``classes`` — class name -> :class:`ast.ClassDef`;
    * ``module_functions`` — names defined by module-level ``def``;
    * ``nested_functions(fn)`` — names of ``def``\\ s nested in ``fn``;
    * ``table_subscript(expr)`` — ownership-table classification;
    * ``aliases(fn)`` — local names bound to table elements;
    * ``const_number(expr)`` — tiny constant folder (module-level
      numeric constants, ``+ - * /``, unary minus).
    """

    def __init__(self, source: str, path: str = "<string>"):
        self.source = source
        self.path = path
        self.tree = ast.parse(source, filename=path)
        self.functions: List[Tuple[ast.AST, Optional[str]]] = []
        self.classes: Dict[str, ast.ClassDef] = {}
        self.module_functions: Set[str] = set()
        self._nested: Dict[ast.AST, Set[str]] = {}
        self._aliases: Dict[ast.AST, Dict[str, str]] = {}
        self._constants: Dict[str, float] = {}
        self._index()

    # -- indexing -------------------------------------------------------

    def _index(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_functions.add(node.name)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = self._fold(node.value)
                if isinstance(target, ast.Name) and value is not None:
                    self._constants[target.id] = value

        def walk(body: Iterable[ast.stmt], cls: Optional[str]) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self.functions.append((node, cls))
                    walk(node.body, cls)
                elif isinstance(node, ast.ClassDef):
                    self.classes[node.name] = node
                    walk(node.body, node.name)
                elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For,
                                       ast.While)):
                    # Defs hiding under conditionals still count.
                    for sub in ast.iter_child_nodes(node):
                        if isinstance(sub, ast.stmt):
                            walk([sub], cls)

        walk(self.tree.body, None)

    # -- functions ------------------------------------------------------

    def nested_functions(self, fn: ast.AST) -> Set[str]:
        """Names of functions defined *inside* ``fn`` (these cannot be
        pickled across a process boundary)."""
        cached = self._nested.get(fn)
        if cached is None:
            cached = {
                node.name
                for node in ast.walk(fn)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not fn
            }
            self._nested[fn] = cached
        return cached

    def methods_of(self, cls: ast.ClassDef) -> Dict[str, ast.AST]:
        return {
            node.name: node
            for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

    # -- ownership ------------------------------------------------------

    def table_subscript(self, expr: ast.expr) -> Optional[str]:
        """Kind of ownership table ``expr`` subscripts, if any:
        ``sim.domains[i]`` -> "domain", ``cores[i]`` -> "core", ..."""
        if not isinstance(expr, ast.Subscript):
            return None
        base = expr.value
        if isinstance(base, ast.Attribute):
            return DOMAIN_TABLES.get(base.attr)
        if isinstance(base, ast.Name):
            return DOMAIN_TABLES.get(base.id)
        return None

    def table_iter(self, expr: ast.expr) -> Optional[str]:
        """Kind of table ``expr`` iterates (``for d in sim.domains``)."""
        if isinstance(expr, ast.Attribute):
            return DOMAIN_TABLES.get(expr.attr)
        if isinstance(expr, ast.Name):
            return DOMAIN_TABLES.get(expr.id)
        return None

    def aliases(self, fn: ast.AST) -> Dict[str, str]:
        """Local names bound to ownership-table elements inside ``fn``:
        ``d = sim.domains[i]`` and ``for d in sim.domains`` both bind
        ``d`` as a "domain" alias. Flow-insensitive (a name bound to a
        table element anywhere in the function is treated as one
        everywhere) — conservative, like the rest of the model."""
        cached = self._aliases.get(fn)
        if cached is not None:
            return cached
        aliases: Dict[str, str] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                kind = self.table_subscript(node.value)
                if kind and isinstance(target, ast.Name):
                    aliases[target.id] = kind
            elif isinstance(node, (ast.For, ast.comprehension)):
                kind = self.table_iter(node.iter)
                if kind and isinstance(node.target, ast.Name):
                    aliases[node.target.id] = kind
        self._aliases[fn] = aliases
        return aliases

    def owned_kind(self, expr: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
        """Classify ``expr`` as a potentially-foreign table element:
        a direct table subscript or a known alias name."""
        kind = self.table_subscript(expr)
        if kind:
            return kind
        if isinstance(expr, ast.Name):
            return aliases.get(expr.id)
        return None

    # -- constant folding -----------------------------------------------

    def const_number(self, expr: ast.expr) -> Optional[float]:
        """Fold ``expr`` to a float when it is a numeric literal, a
        module-level constant name, or ``+ - * /`` / unary-minus over
        those. None when not statically known."""
        return self._fold(expr)

    def _fold(self, expr: ast.expr) -> Optional[float]:
        if isinstance(expr, ast.Constant) and isinstance(
            expr.value, (int, float)
        ) and not isinstance(expr.value, bool):
            return float(expr.value)
        if isinstance(expr, ast.Name):
            return self._constants.get(expr.id)
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
            value = self._fold(expr.operand)
            return -value if value is not None else None
        if isinstance(expr, ast.BinOp):
            left = self._fold(expr.left)
            right = self._fold(expr.right)
            if left is None or right is None:
                return None
            if isinstance(expr.op, ast.Add):
                return left + right
            if isinstance(expr.op, ast.Sub):
                return left - right
            if isinstance(expr.op, ast.Mult):
                return left * right
            if isinstance(expr.op, ast.Div):
                return left / right if right != 0 else None
        return None


# ----------------------------------------------------------------------
# The cross-family driver
# ----------------------------------------------------------------------


@dataclass
class CheckReport:
    """Outcome of :func:`check_paths` over a file set."""

    violations: List[Violation] = field(default_factory=list)
    warnings: List[Violation] = field(default_factory=list)
    files: int = 0
    baselined: int = 0
    #: Files that failed to parse: (path, message). Reported as
    #: violations too (rule "E999"-style is ruff's job; we surface the
    #: SyntaxError as a usage-level problem instead).
    errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations and not self.errors


def check_paths(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    baseline: Sequence[BaselineEntry] = (),
) -> CheckReport:
    """Run every selected analysis family over ``paths``.

    One parse per file feeds all families. Inline suppressions and the
    baseline are applied centrally, with usage accounting: escapes that
    matched nothing come back as warnings (:data:`WARN_UNUSED_SUPPRESSION`
    / :data:`WARN_STALE_BASELINE`). Warnings never affect
    :attr:`CheckReport.clean`.
    """
    from repro.check import domains, faults, kernel, lint, portability

    selected = resolve_select(select)
    collectors = (
        lint.collect, domains.collect, portability.collect, kernel.collect,
        faults.collect,
    )
    report = CheckReport()
    for filename in iter_python_files(paths):
        with open(filename, encoding="utf-8") as handle:
            source = handle.read()
        try:
            model = ModuleModel(source, path=filename)
        except SyntaxError as exc:
            report.errors.append((filename, str(exc)))
            continue
        report.files += 1
        raw: List[Violation] = []
        for collect in collectors:
            raw.extend(collect(model))
        # Nested defs are visited both standalone and inside their
        # enclosing function; identical findings collapse to one.
        raw = list(dict.fromkeys(raw))
        markers = scan_suppressions(source)
        for violation in sorted(raw, key=lambda v: (v.line, v.rule)):
            if violation.rule not in selected:
                # Still burns a matching marker: the escape is "in use"
                # even when the family is filtered out this run.
                for marker in markers:
                    if marker.rule == violation.rule and marker.covers(
                        violation.line
                    ):
                        marker.used = True
                continue
            suppressed = False
            for marker in markers:
                if marker.rule == violation.rule and marker.covers(
                    violation.line
                ):
                    marker.used = True
                    suppressed = True
            if suppressed:
                continue
            matched_baseline = False
            for entry in baseline:
                if entry.matches(violation):
                    entry.used = True
                    matched_baseline = True
            if matched_baseline:
                report.baselined += 1
                continue
            report.violations.append(violation)
        for marker in markers:
            if marker.used:
                continue
            if marker.rule is None:
                detail = (
                    f"tag {marker.token!r} names no known rule "
                    f"(typo in the escape?)"
                )
            elif marker.rule not in selected:
                continue  # its family did not run; can't call it unused
            else:
                detail = f"allow-{marker.token}"
            report.warnings.append(
                Violation(
                    WARN_UNUSED_SUPPRESSION,
                    filename,
                    marker.line,
                    1,
                    f"{WARNING_RULES[WARN_UNUSED_SUPPRESSION]} [{detail}]",
                )
            )
    for entry in baseline:
        if not entry.used and entry.rule in selected:
            where = entry.file + (f":{entry.line}" if entry.line else "")
            report.warnings.append(
                Violation(
                    WARN_STALE_BASELINE,
                    entry.file,
                    entry.line or 0,
                    1,
                    f"{WARNING_RULES[WARN_STALE_BASELINE]} "
                    f"[{entry.rule} @ {where}]",
                )
            )
    report.violations.sort(key=lambda v: (v.path, v.line, v.rule))
    report.warnings.sort(key=lambda v: (v.path, v.line, v.rule))
    return report
