"""Batch-kernel discipline rules (KERN).

The batched pipe kernel (DESIGN.md §7, :mod:`repro.core.kernel`) gets
its throughput from one structural invariant: **per-packet departures
never become heap events**. A packet descriptor entering a pipe is
admitted into the pipe's columnar delay line
(:meth:`~repro.core.kernel.BatchedDelayLine.admit`); the scheduler's
heap holds one entry per *pipe* deadline, and
:meth:`~repro.core.scheduler.PipeScheduler.collect` drains whole runs
of due departures per pipe per tick. Code that schedules an individual
descriptor's departure directly — a ``heapq.heappush`` of a
descriptor-carrying entry, or a kernel ``post``/``at``/``schedule``/
``call_soon`` whose payload references a descriptor — reintroduces the
one-event-per-packet regime the kernel seam exists to remove. It also
silently bypasses the digest contract: kernel-batched departures
dispatch no heap events, so a stray per-packet event changes the
event stream's sequence numbering and breaks digest identity across
kernels.

========  ============================================================
KERN001   Per-packet departure event: a ``heappush`` or kernel
          scheduling call (``.post``/``.at``/``.schedule``/
          ``.call_soon``) in ``core/`` or ``engine/`` whose arguments
          reference a packet descriptor. Admit the descriptor into the
          pipe's delay line (``Pipe`` → ``DelayLine.admit``) and let
          ``PipeScheduler.collect`` batch the departures instead.
========  ============================================================

Scope: files whose path contains an ``engine`` or ``core`` component.
Exempt wholesale: ``core/kernel.py`` (the delay-line kernel itself)
and ``engine/sync.py`` (the router legitimately ships descriptors
across domain boundaries as routed messages, which is handoff, not
scheduling). Suppressions: ``# repro: allow-per-packet-event``.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List, Set

from repro.check.model import ModuleModel, Violation, register_rules

RULES: Dict[str, tuple] = {
    "KERN001": (
        "per-packet-event",
        "per-packet departure scheduled as a heap event, bypassing the "
        "batch kernel; admit the descriptor into the pipe's delay line "
        "and let PipeScheduler.collect batch it",
    ),
}

register_rules(RULES)

#: Path components that put a file in scope (same closure the DOM
#: family guards: the engine and the emulation core).
KERN_PACKAGES = {"engine", "core"}

#: Sanctioned homes of descriptor-carrying mechanics.
KERNEL_HOME = os.path.join("core", "kernel.py")
ROUTER_HOME = os.path.join("engine", "sync.py")

#: Kernel scheduling entry points (mirrors the DOM001 set).
_SCHED_METHODS = {"schedule", "at", "post", "call_soon"}

#: Exact identifiers that name a packet descriptor.
_DESCRIPTOR_NAMES = {"pkt", "desc"}

#: Substrings that mark an identifier as descriptor-ish.
_DESCRIPTOR_MARKS = ("descriptor", "packet")


def in_scope(path: str) -> bool:
    normalized = os.path.normpath(path)
    parts = normalized.split(os.sep)
    if not KERN_PACKAGES.intersection(parts):
        return False
    return not (
        normalized.endswith(KERNEL_HOME) or normalized.endswith(ROUTER_HOME)
    )


def _is_descriptorish(name: str) -> bool:
    lowered = name.lower()
    if lowered in _DESCRIPTOR_NAMES:
        return True
    return any(mark in lowered for mark in _DESCRIPTOR_MARKS)


def _descriptor_refs(args) -> Set[str]:
    """Descriptor-ish identifiers referenced anywhere in ``args`` —
    positionally, in keywords, or captured inside a lambda payload."""
    found: Set[str] = set()
    for arg in args:
        for node in ast.walk(arg):
            if isinstance(node, ast.Name) and _is_descriptorish(node.id):
                found.add(node.id)
            elif isinstance(node, ast.Attribute) and _is_descriptorish(
                node.attr
            ):
                found.add(node.attr)
    return found


class _KernelVisitor:
    def __init__(self, model: ModuleModel):
        self.model = model
        self.violations: List[Violation] = []

    def _flag(self, node: ast.AST, detail: str) -> None:
        self.violations.append(
            Violation(
                "KERN001",
                self.model.path,
                node.lineno,
                node.col_offset + 1,
                f"{RULES['KERN001'][1]} [{detail}]",
            )
        )

    def check_function(self, fn: ast.AST) -> None:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                callee = func.id
            elif isinstance(func, ast.Attribute):
                callee = func.attr
            else:
                continue
            payload = list(node.args) + [kw.value for kw in node.keywords]
            if callee == "heappush":
                refs = _descriptor_refs(payload)
                if refs:
                    self._flag(
                        node,
                        f"heappush of {'/'.join(sorted(refs))}",
                    )
            elif (
                isinstance(func, ast.Attribute) and callee in _SCHED_METHODS
            ):
                refs = _descriptor_refs(payload)
                if refs:
                    self._flag(
                        node,
                        f".{callee}() payload references "
                        f"{'/'.join(sorted(refs))}",
                    )


def collect(model: ModuleModel) -> List[Violation]:
    """Raw KERN violations for one module (no suppression applied; the
    :func:`repro.check.model.check_paths` driver does that)."""
    if not in_scope(model.path):
        return []
    visitor = _KernelVisitor(model)
    for fn, _cls in model.functions:
        visitor.check_function(fn)
    return visitor.violations
