"""Correctness tooling for the determinism contract.

The whole reproduction rests on bit-reproducible virtual time: the
same root seed must yield identical event traces, which is what lets
runs be compared against the paper's figures and against each other
via :class:`~repro.obs.RunReport` manifests. This package *enforces*
that contract two ways:

* :mod:`repro.check.lint` — an AST-based static pass with rules
  specific to this codebase (bare ``random.Random`` outside the
  :class:`~repro.engine.randomness.RngRegistry` stream discipline,
  wall-clock reads inside simulation packages, unordered-iteration
  event scheduling, identity-based heap tie-breaks, mutable-packet
  captures in event callbacks).

* :mod:`repro.check.sanitize` — a runtime sanitizer that records a
  streaming digest of every dispatched event, runs a scenario twice
  with the same seed, and pinpoints the *first* divergent event when
  the traces disagree.

Both are wired into the ``repro-net check`` / ``repro-net sanitize``
CLI subcommands and CI.
"""

from repro.check.lint import (
    RULES,
    Violation,
    format_violation,
    lint_paths,
    lint_source,
    load_baseline,
)
from repro.check.sanitize import (
    Divergence,
    DispatchRecord,
    DomainProbe,
    SanitizeResult,
    SimSanitizer,
    compare_runs,
    compose_domain_digests,
    sanitize_scenario,
    sanitize_scenario_multiprocess,
)

__all__ = [
    "RULES",
    "Violation",
    "format_violation",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "Divergence",
    "DispatchRecord",
    "DomainProbe",
    "SanitizeResult",
    "SimSanitizer",
    "compare_runs",
    "compose_domain_digests",
    "sanitize_scenario",
    "sanitize_scenario_multiprocess",
]
