"""Correctness tooling for the determinism contract.

The whole reproduction rests on bit-reproducible virtual time: the
same root seed must yield identical event traces, which is what lets
runs be compared against the paper's figures and against each other
via :class:`~repro.obs.RunReport` manifests. This package *enforces*
that contract two ways:

* :mod:`repro.check.lint` — an AST-based static pass with rules
  specific to this codebase (bare ``random.Random`` outside the
  :class:`~repro.engine.randomness.RngRegistry` stream discipline,
  wall-clock reads inside simulation packages, unordered-iteration
  event scheduling, identity-based heap tie-breaks, mutable-packet
  captures in event callbacks).

* :mod:`repro.check.domains` — cross-domain safety (DOM) and epoch
  discipline (EPO) rules over the ownership model in
  :mod:`repro.check.model`: cross-domain effects only through
  ``DomainRouter.send``, no foreign clock/heap reads outside the
  barrier, no sends below the sync horizon.

* :mod:`repro.check.portability` — spec-portability (PORT) rules:
  nothing unpicklable crosses the process boundary, and every
  persistent ``Scenario`` field round-trips through
  ``to_spec``/``from_spec``.

* :mod:`repro.check.sanitize` — a runtime sanitizer that records a
  streaming digest of every dispatched event, runs a scenario twice
  with the same seed, and pinpoints the *first* divergent event when
  the traces disagree.

All are wired into the ``repro-net check`` / ``repro-net sanitize``
CLI subcommands and CI.
"""

from repro.check.lint import (
    RULES,
    Violation,
    format_violation,
    lint_paths,
    lint_source,
    load_baseline,
)
from repro.check.model import (
    BaselineEntry,
    CheckReport,
    ModuleModel,
    check_paths,
    iter_python_files,
    registered_rules,
    resolve_select,
)
from repro.check.sanitize import (
    Divergence,
    DispatchRecord,
    DomainProbe,
    SanitizeResult,
    SimSanitizer,
    compare_runs,
    compose_domain_digests,
    sanitize_scenario,
    sanitize_scenario_multiprocess,
)

__all__ = [
    "RULES",
    "BaselineEntry",
    "CheckReport",
    "ModuleModel",
    "Violation",
    "check_paths",
    "iter_python_files",
    "registered_rules",
    "resolve_select",
    "format_violation",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "Divergence",
    "DispatchRecord",
    "DomainProbe",
    "SanitizeResult",
    "SimSanitizer",
    "compare_runs",
    "compose_domain_digests",
    "sanitize_scenario",
    "sanitize_scenario_multiprocess",
]
