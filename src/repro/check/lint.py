"""Determinism lint: AST rules for the virtual-time kernel.

Same seed, same trace — that is the contract every experiment in this
repo depends on. These rules catch the ways Python code silently
breaks it:

========  ============================================================
DET001    Bare ``random.Random(...)`` / ``random.seed(...)`` /
          module-level ``random.*()`` draws. All randomness must come
          from a named :class:`~repro.engine.randomness.RngRegistry`
          stream so adding a consumer never perturbs existing draws.
DET002    Wall-clock reads (``time.time``, ``perf_counter``,
          ``datetime.now``, ...) inside simulation packages
          (``engine/``, ``core/``, ``net/``, ``apps/``, ``obs/``)
          where only ``sim.now`` is legal. Observability timing hooks
          carry an explicit ``# repro: allow-wallclock``.
DET003    ``for`` loops over a ``set`` (or ``dict.keys()`` not
          wrapped in ``sorted``) whose body schedules events or
          mutates pipes: iteration order feeds the event heap, so it
          must be deterministic.
DET004    ``id()`` / ``hash()`` used as a heap tie-break (inside
          ``heappush`` arguments or rich-comparison methods): memory
          addresses differ between runs.
NED001    ``lambda`` event callbacks that capture mutable packet
          objects from the enclosing scope — the packet can mutate
          between scheduling and dispatch.
ROB001    Bare/broad ``except`` (``except:``, ``except Exception``,
          ``except BaseException``) with a silent body (``pass`` /
          ``continue`` / ``...``) inside ``engine/`` or ``core/``:
          it swallows worker crashes and desyncs that the supervisor
          must see. Narrow the exception or re-raise a typed error;
          deliberate last-resort handlers carry an explicit
          ``# repro: allow-broad-except``.
========  ============================================================

A violation is suppressed by ``# repro: allow-<tag>`` (or
``# repro: allow-<RULE>``) on the offending line or the line above,
or by an entry in a ``check-baseline.toml`` file::

    [[suppress]]
    file = "src/repro/foo.py"
    rule = "DET001"
    # line = 12   # optional: pin to a specific line

New code must be clean; the baseline only grandfathers pre-existing
violations.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

# Shared infrastructure lives in repro.check.model (one Violation
# shape, one suppression/baseline mechanism across every analysis
# family). Re-exported here for backward compatibility: this module
# was the original home of all of these names.
from repro.check.model import (  # noqa: F401  (re-exports)
    BaselineEntry,
    ModuleModel,
    Violation,
    _parse_baseline_fallback,
    format_violation,
    iter_python_files,
    load_baseline,
    register_rules,
    scan_suppressions,
)

#: Rule id -> (suppression tag, one-line description).
RULES: Dict[str, Tuple[str, str]] = {
    "DET001": (
        "rng",
        "bare random.Random/random.seed/module-level random.* call; "
        "draw from a named RngRegistry stream instead",
    ),
    "DET002": (
        "wallclock",
        "wall-clock read inside a simulation package; use sim.now "
        "(observability timing hooks: # repro: allow-wallclock)",
    ),
    "DET003": (
        "unordered",
        "iteration over a set / unsorted dict.keys() schedules events "
        "or mutates pipes; wrap the iterable in sorted()",
    ),
    "DET004": (
        "tiebreak",
        "id()/hash() used as a heap tie-break; use a monotonic "
        "sequence number instead",
    ),
    "NED001": (
        "capture",
        "lambda event callback captures a mutable packet from the "
        "enclosing scope; pass it as an explicit argument",
    ),
    "ROB001": (
        "broad-except",
        "bare/broad except with a silent body swallows failures the "
        "supervisor must see; narrow it or re-raise a typed error",
    ),
}

register_rules(RULES)

#: Path components that mark a file as simulation code for DET002.
SIM_PACKAGES = {"engine", "core", "net", "apps", "obs"}

#: Path components where silent broad excepts are flagged (ROB001):
#: the kernel and emulation core, where a swallowed error means a
#: wedged or silently-desynced run instead of a typed failure.
ROB_PACKAGES = {"engine", "core"}

#: The one module allowed to construct random.Random directly.
RNG_HOME = os.path.join("engine", "randomness.py")

#: Module-level functions of ``random`` that draw from (or reseed) the
#: hidden global Mersenne Twister.
_RANDOM_MODULE_FUNCS = {
    "seed", "random", "randint", "randrange", "uniform", "choice",
    "choices", "shuffle", "sample", "gauss", "normalvariate",
    "expovariate", "paretovariate", "betavariate", "gammavariate",
    "lognormvariate", "vonmisesvariate", "weibullvariate",
    "triangular", "getrandbits", "randbytes", "binomialvariate",
}

#: ``time`` module attributes that read the wall clock.
_TIME_FUNCS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
}

#: ``datetime.datetime`` / ``datetime.date`` constructors that read
#: the wall clock.
_DATETIME_FUNCS = {"now", "utcnow", "today", "fromtimestamp"}

#: Method names whose invocation inside a loop body means the loop is
#: feeding the event heap (DET003).
_SCHEDULERS = {"schedule", "at", "call_soon"}

#: Method names that mutate pipe state (DET003).
_PIPE_MUTATORS = {"arrival", "enqueue", "set_params", "flush"}

#: Free-variable names in a callback that look like mutable packets
#: (NED001).
_PACKETISH_PREFIXES = ("packet", "pkt", "descriptor", "desc")


# ----------------------------------------------------------------------
# Import tracking
# ----------------------------------------------------------------------

class _Imports:
    """Aliases under which wall-clock and RNG callables are visible."""

    def __init__(self) -> None:
        self.random_modules: Set[str] = set()   # `import random [as r]`
        self.random_names: Dict[str, str] = {}  # alias -> original random.X
        self.time_modules: Set[str] = set()     # `import time [as t]`
        self.time_names: Dict[str, str] = {}    # alias -> original time func
        self.datetime_classes: Set[str] = set() # names bound to datetime/date

    def collect(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.random_modules.add(local)
                    elif alias.name == "time":
                        self.time_modules.add(local)
                    elif alias.name == "datetime":
                        # `import datetime` -> datetime.datetime.now(...)
                        self.datetime_classes.add(local)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        self.random_names[alias.asname or alias.name] = alias.name
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_FUNCS:
                            self.time_names[alias.asname or alias.name] = alias.name
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in {"datetime", "date"}:
                            self.datetime_classes.add(alias.asname or alias.name)


# ----------------------------------------------------------------------
# Rule visitors
# ----------------------------------------------------------------------

def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _attr_chain(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ("a", "b", "c"); None for non-trivial bases."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, imports: _Imports, sim_scope: bool,
                 rng_home: bool, rob_scope: bool = False):
        self.path = path
        self.imports = imports
        self.sim_scope = sim_scope
        self.rng_home = rng_home
        self.rob_scope = rob_scope
        self.violations: List[Violation] = []
        self._lt_depth = 0

    def _flag(self, rule: str, node: ast.AST, detail: str = "") -> None:
        message = RULES[rule][1]
        if detail:
            message = f"{message} [{detail}]"
        self.violations.append(
            Violation(rule, self.path, node.lineno, node.col_offset + 1, message)
        )

    # -- DET001 / DET002 / DET004 / NED001 are all call-shaped ---------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_det001(node)
        self._check_det002(node)
        self._check_det004(node)
        self._check_ned001(node)
        self.generic_visit(node)

    def _check_det001(self, node: ast.Call) -> None:
        if self.rng_home:
            return
        chain = _attr_chain(node.func)
        if chain and len(chain) == 2 and chain[0] in self.imports.random_modules:
            if chain[1] == "Random" or chain[1] in _RANDOM_MODULE_FUNCS:
                self._flag("DET001", node, f"random.{chain[1]}")
            return
        name = _call_name(node)
        if name and name in self.imports.random_names:
            original = self.imports.random_names[name]
            if original == "Random" or original in _RANDOM_MODULE_FUNCS:
                self._flag("DET001", node, original)

    def _check_det002(self, node: ast.Call) -> None:
        if not self.sim_scope:
            return
        chain = _attr_chain(node.func)
        if chain:
            if (
                len(chain) == 2
                and chain[0] in self.imports.time_modules
                and chain[1] in _TIME_FUNCS
            ):
                self._flag("DET002", node, ".".join(chain))
                return
            # datetime.now(), datetime.datetime.now(), date.today()
            if chain[-1] in _DATETIME_FUNCS and chain[0] in self.imports.datetime_classes:
                self._flag("DET002", node, ".".join(chain))
                return
        name = _call_name(node)
        if name and name in self.imports.time_names:
            self._flag("DET002", node, f"time.{self.imports.time_names[name]}")

    def _check_det004(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        name = _call_name(node)
        is_heappush = name == "heappush" or (chain and chain[-1] == "heappush")
        if not is_heappush:
            return
        for arg in node.args:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Call):
                    sub_name = _call_name(sub)
                    if sub_name in {"id", "hash"}:
                        self._flag("DET004", sub, f"{sub_name}() in heappush")

    def _check_ned001(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if not chain or chain[-1] not in _SCHEDULERS:
            return
        for arg in node.args:
            if not isinstance(arg, ast.Lambda):
                continue
            params = {a.arg for a in arg.args.args}
            params |= {a.arg for a in arg.args.posonlyargs}
            params |= {a.arg for a in arg.args.kwonlyargs}
            for sub in ast.walk(arg.body):
                if (
                    isinstance(sub, ast.Name)
                    and isinstance(sub.ctx, ast.Load)
                    and sub.id not in params
                    and sub.id.lower().startswith(_PACKETISH_PREFIXES)
                ):
                    self._flag("NED001", arg, f"captures {sub.id!r}")
                    break

    # -- DET004: identity comparisons inside rich-comparison methods ----

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.name in {"__lt__", "__le__", "__gt__", "__ge__"}:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call) and _call_name(sub) in {"id", "hash"}:
                    self._flag("DET004", sub, f"{_call_name(sub)}() in {node.name}")
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- ROB001 ---------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self.rob_scope:
            detail = self._broad_except(node.type)
            if detail and self._silent_body(node.body):
                self._flag("ROB001", node, detail)
        self.generic_visit(node)

    @staticmethod
    def _broad_except(node: Optional[ast.expr]) -> Optional[str]:
        """``except:`` / ``except Exception`` / ``except BaseException``
        (alone or anywhere in a tuple of types)."""
        if node is None:
            return "bare except"
        names = []
        if isinstance(node, ast.Tuple):
            names = [e.id for e in node.elts if isinstance(e, ast.Name)]
        elif isinstance(node, ast.Name):
            names = [node.id]
        for name in names:
            if name in {"Exception", "BaseException"}:
                return f"except {name}"
        return None

    @staticmethod
    def _silent_body(body: Sequence[ast.stmt]) -> bool:
        """True when the handler does nothing: only ``pass``,
        ``continue``, ``...``, or bare string/constant expressions."""
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue
            return False
        return True

    # -- DET003 ---------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        detail = self._unordered_iterable(node.iter)
        if detail and self._body_feeds_heap(node.body):
            self._flag("DET003", node, detail)
        self.generic_visit(node)

    @staticmethod
    def _unordered_iterable(node: ast.expr) -> Optional[str]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set literal"
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in {"set", "frozenset"}:
                return f"{name}()"
            chain = _attr_chain(node.func)
            if chain and chain[-1] == "keys":
                return ".keys()"
        # `a | b` / `a & b` / `a - b` over sets is still a set; catch
        # the common explicit spelling.
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub)
        ):
            left = _Linter._unordered_iterable(node.left)
            right = _Linter._unordered_iterable(node.right)
            if left or right:
                return "set expression"
        return None

    @staticmethod
    def _body_feeds_heap(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    chain = _attr_chain(sub.func)
                    if chain and chain[-1] in (_SCHEDULERS | _PIPE_MUTATORS):
                        return True
        return False


# ----------------------------------------------------------------------
# Suppressions (standalone lint_source path; check_paths does its own)
# ----------------------------------------------------------------------

def _suppressed_lines(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of rule ids allowed on that line (the
    marker also covers the line below it, so it can sit above a long
    statement). Tags resolve against the full cross-family registry."""
    out: Dict[int, Set[str]] = {}
    for marker in scan_suppressions(source):
        if marker.rule is None:
            continue
        out.setdefault(marker.line, set()).add(marker.rule)
        out.setdefault(marker.line + 1, set()).add(marker.rule)
    return out


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def _is_sim_scope(path: str) -> bool:
    parts = os.path.normpath(path).split(os.sep)
    return bool(SIM_PACKAGES.intersection(parts))


def _is_rob_scope(path: str) -> bool:
    parts = os.path.normpath(path).split(os.sep)
    return bool(ROB_PACKAGES.intersection(parts))


def lint_source(
    source: str,
    path: str = "<string>",
    sim_scope: Optional[bool] = None,
    rob_scope: Optional[bool] = None,
) -> List[Violation]:
    """Lint Python source text. ``sim_scope`` forces or disables
    DET002; ``rob_scope`` does the same for ROB001; by default both
    are inferred from the path (``engine/core/net/apps/obs`` and
    ``engine/core`` respectively)."""
    tree = ast.parse(source, filename=path)
    imports = _Imports()
    imports.collect(tree)
    if sim_scope is None:
        sim_scope = _is_sim_scope(path)
    if rob_scope is None:
        rob_scope = _is_rob_scope(path)
    rng_home = os.path.normpath(path).endswith(RNG_HOME)
    linter = _Linter(path, imports, sim_scope, rng_home, rob_scope)
    linter.visit(tree)
    allowed = _suppressed_lines(source)
    return [
        v for v in linter.violations
        if v.rule not in allowed.get(v.line, ())
    ]


def collect(model: ModuleModel) -> List[Violation]:
    """Raw determinism violations for one parsed module — the
    :func:`repro.check.model.check_paths` family hook (suppressions
    and the baseline are applied by the driver)."""
    imports = _Imports()
    imports.collect(model.tree)
    linter = _Linter(
        model.path,
        imports,
        _is_sim_scope(model.path),
        os.path.normpath(model.path).endswith(RNG_HOME),
        _is_rob_scope(model.path),
    )
    linter.visit(model.tree)
    return linter.violations


def lint_paths(
    paths: Iterable[str],
    baseline: Sequence[BaselineEntry] = (),
) -> List[Violation]:
    """Lint files and directories; baseline-matched violations are
    dropped. Violations come back sorted by (path, line)."""
    violations: List[Violation] = []
    for filename in iter_python_files(paths):
        with open(filename, encoding="utf-8") as handle:
            source = handle.read()
        for violation in lint_source(source, path=filename):
            if not any(entry.matches(violation) for entry in baseline):
                violations.append(violation)
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))
