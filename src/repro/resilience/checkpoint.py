"""Checkpoint/resume by verified deterministic replay.

A live emulation is *not* picklable mid-run (TCP streams hold local
closures, digest objects hold hashlib state), and it does not need to
be: builds and runs are deterministic per the ``repro.check``
contract, so the scenario spec plus a barrier position IS the state.
A checkpoint therefore stores

``(ScenarioSpec, epoch index / barrier time, per-domain digests,
event counts, domain snapshots, RNG stream states, metric snapshot)``

and ``--resume`` rebuilds the scenario from the spec, re-runs it from
t=0 to the recorded barrier, *verifies* that the replayed digests,
event counts, and RNG states match the checkpoint exactly
(:class:`CheckpointDivergence` otherwise), then continues to ``until``.
The final digest of a resumed run trivially equals the uninterrupted
run's — the event stream is the same stream — and the verification
step turns that "trivially" into a checked property: resume refuses to
continue from a prefix it cannot prove identical.

Checkpoints are written atomically (temp file + ``os.replace``) at
epoch barriers (partitioned backends) or virtual-time chunk marks
(single-domain runs) so a file on disk is always a complete, loadable
checkpoint even if the writer was killed mid-write.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.resilience.policy import ResilienceError

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointDivergence",
    "Checkpoint",
    "CheckpointWriter",
    "write_checkpoint",
    "load_checkpoint",
    "rng_stream_states",
    "ResumeVerifier",
]

CHECKPOINT_VERSION = 1


class CheckpointError(ResilienceError):
    """The checkpoint file is unreadable, wrong type, or wrong version."""


class CheckpointDivergence(ResilienceError):
    """Replay did not reproduce the checkpointed barrier state."""

    def __init__(self, mismatches: List[str]) -> None:
        self.mismatches = list(mismatches)
        super().__init__(
            "resume verification failed — replayed run diverged from "
            "the checkpoint: " + "; ".join(self.mismatches)
        )


@dataclass
class Checkpoint:
    """Everything needed to resume (and verify) a run at a barrier."""

    spec: Any  # picklable ScenarioSpec
    until: float  # the original run's target virtual time
    seed: int
    barrier_time: float  # virtual time of the barrier
    epoch: Optional[int]  # epoch index at the barrier (partitioned only)
    events: int  # total events dispatched at the barrier
    digest: str  # composed sanitize digest at the barrier
    domain_digests: Optional[Dict[int, str]] = None
    domain_counts: Optional[Dict[int, int]] = None
    snapshots: Optional[List[dict]] = None  # EventDomain.snapshot() list
    rng_states: Optional[Dict[str, tuple]] = None
    metrics: Dict[str, Any] = field(default_factory=dict)
    index: int = 0  # ordinal of this checkpoint within the run
    # Fault-timeline position and the per-link state it implies at the
    # barrier.  Resume replays the plan from t=0 (the spec carries it),
    # so these exist purely so the verifier can prove the replayed
    # timeline landed in the same place.
    fault_cursor: Optional[int] = None
    link_state: Optional[Dict[Any, tuple]] = None
    version: int = CHECKPOINT_VERSION


def write_checkpoint(path: str, checkpoint: Checkpoint) -> None:
    """Atomically pickle ``checkpoint`` to ``path``."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(checkpoint, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_checkpoint(path: str) -> Checkpoint:
    try:
        with open(path, "rb") as fh:
            checkpoint = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise CheckpointError(f"cannot load checkpoint {path!r}: {exc}") from exc
    if not isinstance(checkpoint, Checkpoint):
        raise CheckpointError(
            f"{path!r} does not contain a Checkpoint "
            f"(got {type(checkpoint).__name__})"
        )
    if checkpoint.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {checkpoint.version} unsupported "
            f"(expected {CHECKPOINT_VERSION})"
        )
    return checkpoint


def rng_stream_states(registry) -> Dict[str, tuple]:
    """Snapshot every named stream's generator state."""
    return {
        name: stream.getstate()
        for name, stream in sorted(registry._streams.items())
    }


class CheckpointWriter:
    """Cadence-driven checkpoint emitter for the resilient run loops.

    ``due(barrier_time)`` is checked at every barrier; when the virtual
    clock crosses the next cadence mark, the caller gathers state and
    calls :meth:`write`. The cadence is anchored at t=0 so a resumed
    run writes checkpoints at the same marks as the original.
    """

    def __init__(self, path: str, every_s: float, spec, until: float, seed: int) -> None:
        if every_s <= 0:
            raise ValueError("checkpoint cadence must be positive")
        self.path = path
        self.every_s = float(every_s)
        self.spec = spec
        self.until = until
        self.seed = seed
        self.written = 0
        self._next_mark = self.every_s

    def due(self, barrier_time: float) -> bool:
        return barrier_time >= self._next_mark

    def write(
        self,
        barrier_time: float,
        events: int,
        digest: str,
        epoch: Optional[int] = None,
        domain_digests: Optional[Dict[int, str]] = None,
        domain_counts: Optional[Dict[int, int]] = None,
        snapshots: Optional[List[dict]] = None,
        rng_states: Optional[Dict[str, tuple]] = None,
        metrics: Optional[Dict[str, Any]] = None,
        fault_cursor: Optional[int] = None,
        link_state: Optional[Dict[Any, tuple]] = None,
    ) -> Checkpoint:
        checkpoint = Checkpoint(
            spec=self.spec,
            until=self.until,
            seed=self.seed,
            barrier_time=barrier_time,
            epoch=epoch,
            events=events,
            digest=digest,
            domain_digests=domain_digests,
            domain_counts=domain_counts,
            snapshots=snapshots,
            rng_states=rng_states,
            metrics=dict(metrics or {}),
            index=self.written,
            fault_cursor=fault_cursor,
            link_state=link_state,
        )
        write_checkpoint(self.path, checkpoint)
        self.written += 1
        while self._next_mark <= barrier_time:
            self._next_mark += self.every_s
        return checkpoint


class ResumeVerifier:
    """Compares a replayed run's barrier state against a checkpoint."""

    def __init__(self, checkpoint: Checkpoint) -> None:
        self.checkpoint = checkpoint
        self.verified = False

    def verify(
        self,
        digest: Optional[str] = None,
        events: Optional[int] = None,
        domain_digests: Optional[Dict[int, str]] = None,
        rng_states: Optional[Dict[str, tuple]] = None,
        fault_cursor: Optional[int] = None,
        link_state: Optional[Dict[Any, tuple]] = None,
    ) -> None:
        """Raise :class:`CheckpointDivergence` on any mismatch."""
        ckpt = self.checkpoint
        mismatches: List[str] = []
        if digest is not None and digest != ckpt.digest:
            mismatches.append(
                f"composed digest {digest[:16]}... != "
                f"checkpointed {ckpt.digest[:16]}..."
            )
        if events is not None and events != ckpt.events:
            mismatches.append(
                f"event count {events} != checkpointed {ckpt.events}"
            )
        if domain_digests is not None and ckpt.domain_digests is not None:
            from repro.check.sanitize import diff_domain_digests

            bad = diff_domain_digests(ckpt.domain_digests, domain_digests)
            if bad:
                mismatches.append(f"per-domain digests differ for {bad}")
        if rng_states is not None and ckpt.rng_states is not None:
            bad_streams = sorted(
                name
                for name in set(ckpt.rng_states) | set(rng_states)
                if ckpt.rng_states.get(name) != rng_states.get(name)
            )
            if bad_streams:
                mismatches.append(f"RNG stream states differ for {bad_streams}")
        # getattr: checkpoints pickled before the fault-timeline fields
        # existed simply skip these comparisons.
        ckpt_cursor = getattr(ckpt, "fault_cursor", None)
        if fault_cursor is not None and ckpt_cursor is not None:
            if fault_cursor != ckpt_cursor:
                mismatches.append(
                    f"fault timeline cursor {fault_cursor} != "
                    f"checkpointed {ckpt_cursor}"
                )
        ckpt_links = getattr(ckpt, "link_state", None)
        if link_state is not None and ckpt_links is not None:
            bad_links = sorted(
                str(link)
                for link in set(ckpt_links) | set(link_state)
                if ckpt_links.get(link) != link_state.get(link)
            )
            if bad_links:
                mismatches.append(f"perturbed link state differs for {bad_links}")
        if mismatches:
            raise CheckpointDivergence(mismatches)
        self.verified = True
