"""repro.resilience — supervised execution for long-running emulations.

ModelNet's purpose for dynamic faults is to "identify conditions under
which services will fail" (paper §4.3); this package makes sure the
*harness* is not the thing that fails. It provides:

* :class:`~repro.resilience.supervisor.WorkerSupervisor` — heartbeat
  monitoring, typed failure classification (crash / hang / desync),
  and digest-verified deterministic recovery of multiprocess epoch
  workers by rebuild-and-replay from the picklable ``ScenarioSpec``;
* :class:`~repro.resilience.policy.RetryPolicy` and graceful
  degradation from the multiprocess backend to serial partitioned
  execution (identical digests by construction);
* :mod:`~repro.resilience.checkpoint` — checkpoint/resume by verified
  deterministic replay (``repro-net run --checkpoint-every/--resume``);
* :class:`~repro.resilience.policy.BudgetGuard` — ``--max-wall`` /
  ``--max-rss`` / ``--max-events`` cutoffs that abort cleanly with a
  partial RunReport (``run.outcome = aborted``).

Nothing in this package runs inside virtual time: supervision,
budgets, and checkpoints observe the event stream at barriers but
never perturb it, so every resilience feature is digest-neutral.
"""

from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointDivergence,
    CheckpointError,
    CheckpointWriter,
    ResumeVerifier,
    load_checkpoint,
    rng_stream_states,
    write_checkpoint,
)
from repro.resilience.policy import (
    BudgetExceeded,
    BudgetGuard,
    ResilienceConfig,
    ResilienceError,
    RetryPolicy,
    RunAborted,
)
from repro.resilience.supervisor import (
    SupervisionEscalation,
    WorkerCrash,
    WorkerDesync,
    WorkerFailure,
    WorkerHandle,
    WorkerHang,
    WorkerSupervisor,
)

__all__ = [
    "BudgetExceeded",
    "BudgetGuard",
    "Checkpoint",
    "CheckpointDivergence",
    "CheckpointError",
    "CheckpointWriter",
    "ResilienceConfig",
    "ResilienceError",
    "ResumeVerifier",
    "RetryPolicy",
    "RunAborted",
    "SupervisionEscalation",
    "WorkerCrash",
    "WorkerDesync",
    "WorkerFailure",
    "WorkerHandle",
    "WorkerHang",
    "WorkerSupervisor",
    "load_checkpoint",
    "rng_stream_states",
    "write_checkpoint",
]
