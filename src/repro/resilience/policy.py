"""Retry policy and resource-budget guards for supervised runs.

This module is deliberately *outside* the simulation scope
(``SIM_PACKAGES`` in :mod:`repro.check.lint`): everything here reads
wall clocks and process tables on purpose. Nothing in this module may
influence the virtual event stream — budgets and backoff decide *when
to stop or retry*, never *what the simulation computes* — which is why
a budget abort, a worker restart, or a degraded rerun all leave the
composed digest byte-identical to an undisturbed run.
"""

from __future__ import annotations

import os
import resource
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.engine.randomness import RngRegistry

__all__ = [
    "ResilienceError",
    "BudgetExceeded",
    "RunAborted",
    "RetryPolicy",
    "BudgetGuard",
    "ResilienceConfig",
]


class ResilienceError(RuntimeError):
    """Base class for every failure the resilience layer reports."""


class BudgetExceeded(ResilienceError):
    """A resource budget (wall clock, RSS, or event count) ran out.

    ``reason`` is one of ``max_wall`` / ``max_rss`` / ``max_events`` and
    is recorded verbatim in the partial RunReport's ``run.outcome``.
    """

    def __init__(self, reason: str, limit: float, observed: float) -> None:
        self.reason = reason
        self.limit = limit
        self.observed = observed
        super().__init__(
            f"budget exhausted: {reason} (limit {limit:g}, observed {observed:g})"
        )


class RunAborted(ResilienceError):
    """A run stopped before ``until`` but flushed a partial report.

    Raised to the caller of :meth:`repro.api.Scenario.run` so the CLI
    can exit nonzero; ``report`` carries the partial RunReport with
    ``run.outcome`` and the resilience counters already filled in.
    """

    def __init__(self, reason: str, report=None, detail: str = "") -> None:
        self.reason = reason
        self.report = report
        msg = f"run aborted: {reason}"
        if detail:
            msg = f"{msg} ({detail})"
        super().__init__(msg)


class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    The jitter stream comes from :class:`RngRegistry` so that two runs
    with the same seed sleep the same (wall-clock) intervals — the
    *schedule* of recovery attempts is reproducible even though the
    failures themselves are not. Backoff never touches virtual time.
    """

    def __init__(
        self,
        max_attempts: int = 2,
        base_backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = int(max_attempts)
        self.base_backoff_s = float(base_backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self.jitter = float(jitter)
        self._rng = RngRegistry(seed).stream("resilience-backoff")

    def backoff_s(self, attempt: int) -> float:
        """Sleep interval before retry ``attempt`` (1-based)."""
        base = self.base_backoff_s * (2.0 ** max(0, attempt - 1))
        jittered = base * (1.0 + self.jitter * self._rng.random())
        return min(jittered, self.max_backoff_s)

    def sleep(self, attempt: int) -> float:
        delay = self.backoff_s(attempt)
        if delay > 0:
            time.sleep(delay)
        return delay

    def call(self, fn, retryable=(Exception,), on_retry=None):
        """Run ``fn()`` under this policy: up to ``max_attempts``
        calls, backing off between them.

        Only exceptions matching ``retryable`` are retried; anything
        else propagates immediately, as does the final failure.
        ``on_retry(attempt, exc)`` fires before each backoff sleep —
        the sweep runner uses it to count retries in run reports.
        """
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except retryable as exc:
                if attempt >= self.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.sleep(attempt)


def _read_rss_bytes(pid: Optional[int] = None) -> int:
    """Resident set size of ``pid`` (default: this process), bytes.

    Prefers ``/proc/<pid>/status`` (current RSS, works for children);
    falls back to ``ru_maxrss`` for the calling process on platforms
    without procfs. Returns 0 for processes that already exited.
    """
    path = f"/proc/{pid if pid is not None else 'self'}/status"
    try:
        with open(path, "rb") as fh:
            for line in fh:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        if pid is not None:
            return 0
    try:
        usage = resource.getrusage(resource.RUSAGE_SELF)
    except (ValueError, OSError):
        return 0
    # ru_maxrss is KB on Linux, bytes on macOS.
    scale = 1024 if os.uname().sysname == "Linux" else 1
    return int(usage.ru_maxrss) * scale


class BudgetGuard:
    """Aborts a run when wall clock, RSS, or event budgets run out.

    ``check()`` is called at epoch barriers (partitioned backends) or
    virtual-time chunk marks (single-domain runs) — deterministic
    points in the event stream, so a ``max_events`` abort always cuts
    at the same barrier for the same seed. Wall and RSS cutoffs are
    inherently wall-clock dependent; they abort *cleanly* (partial
    report, workers reaped) but not at a reproducible barrier.
    """

    RSS_POLL_INTERVAL_S = 0.2

    def __init__(
        self,
        max_wall_s: Optional[float] = None,
        max_rss_bytes: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> None:
        self.max_wall_s = max_wall_s
        self.max_rss_bytes = max_rss_bytes
        self.max_events = max_events
        self._t0: Optional[float] = None
        self._last_rss_poll = -1e9
        self._last_rss = 0

    @property
    def active(self) -> bool:
        return (
            self.max_wall_s is not None
            or self.max_rss_bytes is not None
            or self.max_events is not None
        )

    def start(self) -> "BudgetGuard":
        self._t0 = time.perf_counter()
        return self

    def wall_s(self) -> float:
        if self._t0 is None:
            return 0.0
        return time.perf_counter() - self._t0

    def rss_bytes(self, pids: Sequence[int] = ()) -> int:
        total = _read_rss_bytes()
        for pid in pids:
            total += _read_rss_bytes(pid)
        return total

    def check(self, events: Optional[int] = None, pids: Sequence[int] = ()) -> None:
        """Raise :class:`BudgetExceeded` if any budget is exhausted."""
        if self.max_events is not None and events is not None:
            if events >= self.max_events:
                raise BudgetExceeded("max_events", self.max_events, events)
        if self.max_wall_s is not None:
            wall = self.wall_s()
            if wall >= self.max_wall_s:
                raise BudgetExceeded("max_wall", self.max_wall_s, wall)
        if self.max_rss_bytes is not None:
            now = time.perf_counter()
            if now - self._last_rss_poll >= self.RSS_POLL_INTERVAL_S:
                self._last_rss_poll = now
                self._last_rss = self.rss_bytes(pids)
            if self._last_rss >= self.max_rss_bytes:
                raise BudgetExceeded(
                    "max_rss", self.max_rss_bytes, self._last_rss
                )


@dataclass
class ResilienceConfig:
    """Everything `Scenario.resilience()` / the CLI flags can set.

    Parent-side only: none of these knobs enter the ``ScenarioSpec``
    or the workers' builds, so toggling them never changes digests.
    """

    checkpoint_every_s: Optional[float] = None
    checkpoint_path: Optional[str] = None
    max_wall_s: Optional[float] = None
    max_rss_mb: Optional[float] = None
    max_events: Optional[int] = None
    epoch_timeout_s: float = 30.0
    heartbeat_interval_s: float = 0.5
    max_attempts: int = 2
    backoff_base_s: float = 0.05
    degrade: bool = True
    # Deterministic fault-injection hook for tests/benchmarks:
    # (epoch_index, worker_index) to signal just before that epoch.
    chaos_kill: Optional[Tuple[int, int]] = None
    chaos_signal: int = 9  # SIGKILL
    extra: dict = field(default_factory=dict)

    def budget(self) -> BudgetGuard:
        rss = None
        if self.max_rss_mb is not None:
            rss = int(self.max_rss_mb * 1024 * 1024)
        return BudgetGuard(
            max_wall_s=self.max_wall_s,
            max_rss_bytes=rss,
            max_events=self.max_events,
        )

    def retry_policy(self, seed: int = 0) -> RetryPolicy:
        return RetryPolicy(
            max_attempts=self.max_attempts,
            base_backoff_s=self.backoff_base_s,
            seed=seed,
        )
