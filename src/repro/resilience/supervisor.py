"""WorkerSupervisor: heartbeats, failure typing, deterministic recovery.

The multiprocess backend (:mod:`repro.engine.parallel`) is a lockstep
epoch barrier: the parent broadcasts ``("epoch", horizon, inclusive,
messages)`` commands and every worker must answer with ``("done",
next_times, outbox, digests)``. That protocol makes supervision
simple — a worker is healthy iff it answers the current command within
the epoch timeout — and makes recovery *provably* correct:

* builds are deterministic (the ``repro.check`` contract), so a
  respawned worker rebuilt from the same picklable ``ScenarioSpec`` is
  an identical object graph;
* the parent already stores, per epoch, exactly the inputs a worker
  consumed (the epoch window plus that worker's cross-domain message
  slice) because *it* produced them; replaying that history drives the
  rebuilt worker through the same event stream event-for-event;
* every ``done`` reply carries streaming per-domain digests, so after
  replay the supervisor compares the rebuilt worker's digests against
  the ones recorded before the crash. A mismatch is a
  :class:`WorkerDesync` — recovery refuses to continue from a state it
  cannot prove equal to the pre-crash one.

Failures are typed: :class:`WorkerCrash` (process died / pipe broke /
worker reported a traceback), :class:`WorkerHang` (alive but silent
past the epoch timeout — the heartbeat thread distinguishes a wedged
process from a livelocked one), :class:`WorkerDesync` (replay digest
mismatch). Each carries the worker id, its domain group, the epoch
index, and the original traceback when one exists. Retries follow the
:class:`~repro.resilience.policy.RetryPolicy`; when attempts run out a
:class:`SupervisionEscalation` is raised and the caller may degrade to
serial partitioned execution (same digests by construction).

Wall clocks are legal here: this module lives outside the simulation
scope on purpose — supervision timing never influences virtual time.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.resilience.policy import ResilienceError, RetryPolicy

__all__ = [
    "WorkerFailure",
    "WorkerCrash",
    "WorkerHang",
    "WorkerDesync",
    "SupervisionEscalation",
    "WorkerHandle",
    "WorkerSupervisor",
]


class WorkerFailure(ResilienceError):
    """Base class for a single worker's failure.

    Carries everything a post-mortem needs: ``worker`` (index),
    ``domains`` (the event-domain group it owns), ``epoch`` (index of
    the epoch in flight when it failed), and ``traceback`` (the remote
    traceback text, when the worker managed to report one).
    """

    kind = "failed"

    def __init__(
        self,
        worker: int,
        domains: Sequence[int],
        epoch: int,
        detail: str = "",
        traceback: Optional[str] = None,
    ) -> None:
        self.worker = worker
        self.domains = list(domains)
        self.epoch = epoch
        self.traceback = traceback
        message = (
            f"worker {worker} (domains {self.domains}) {self.kind} "
            f"at epoch {epoch}"
        )
        if detail:
            message += f": {detail}"
        if traceback:
            message += f"\n--- worker traceback ---\n{traceback.rstrip()}"
        super().__init__(message)


class WorkerCrash(WorkerFailure):
    """The worker process died, broke its pipe, or reported an error."""

    kind = "crashed"


class WorkerHang(WorkerFailure):
    """The worker is alive but has not answered within the timeout."""

    kind = "hung"


class WorkerDesync(WorkerFailure):
    """Replay after recovery produced different per-domain digests.

    This is the one failure recovery must *not* paper over: it means
    the rebuilt worker's event stream diverged from the pre-crash one,
    so continuing would silently corrupt the run's determinism claim.
    """

    kind = "desynchronized"


class SupervisionEscalation(ResilienceError):
    """Retries for one worker ran out; the run cannot stay parallel."""

    def __init__(self, worker: int, attempts: int, last: WorkerFailure) -> None:
        self.worker = worker
        self.attempts = attempts
        self.last = last
        super().__init__(
            f"worker {worker} unrecoverable after {attempts} "
            f"attempt(s); last failure: {last}"
        )


class WorkerHandle:
    """Parent-side state for one worker process."""

    __slots__ = (
        "index",
        "domains",
        "conn",
        "proc",
        "completed",
        "last_digests",
        "next_times",
    )

    def __init__(self, index: int, domains: Sequence[int]) -> None:
        self.index = index
        self.domains = list(domains)
        self.conn = None
        self.proc = None
        #: Epochs this worker has completed (answered "done" for).
        self.completed = 0
        #: ``{domain: (hexdigest, event_count)}`` from the latest
        #: completed epoch — the recovery ground truth.
        self.last_digests: Optional[Dict[int, Tuple[str, int]]] = None
        self.next_times: Dict[int, float] = {}

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None


class WorkerSupervisor:
    """Drives a fleet of epoch workers with recovery and replay.

    ``spawn(index)`` must start worker ``index`` and return
    ``(connection, process)``; the supervisor owns both afterwards.
    """

    def __init__(
        self,
        spawn: Callable[[int], Tuple[Any, Any]],
        owned: Sequence[Sequence[int]],
        policy: Optional[RetryPolicy] = None,
        epoch_timeout_s: float = 30.0,
        heartbeat_interval_s: float = 0.5,
    ) -> None:
        self._spawn = spawn
        self.policy = policy or RetryPolicy()
        self.epoch_timeout_s = float(epoch_timeout_s)
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.workers = [WorkerHandle(i, group) for i, group in enumerate(owned)]
        #: Per-epoch command history: ``(payload, frames)`` with one
        #: mail frame per worker — the full replay input. The payload
        #: (the per-domain window vector) is broadcast; frames are
        #: per-worker opaque bytes the executor encoded (kept as-is so
        #: replay resends byte-identical commands without re-pickling).
        self._history: List[Tuple[Any, List[Any]]] = []
        # Counters surfaced as resilience.* metrics.
        self.heartbeats_missed = 0
        self.workers_restarted = 0
        self.retries = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def epoch_index(self) -> int:
        return len(self._history)

    def start(self) -> Dict[int, float]:
        """Spawn every worker, await readiness, return merged
        per-domain next event times."""
        for handle in self.workers:
            self._launch(handle)
        next_times: Dict[int, float] = {}
        for handle in self.workers:
            try:
                self._ready(handle)
            except WorkerFailure as failure:
                self._handle_failure(handle, failure, resend=None)
            next_times.update(handle.next_times)
        return next_times

    def run_epoch(self, payload: Any, frames: List[Any]):
        """Broadcast one epoch to every worker; recover any that fail.

        ``payload`` is shared by all workers (the per-domain window
        vector); ``frames[i]`` is worker ``i``'s private mail frame.
        Returns the list of ``("done", next_times, outbox_frame,
        digests)`` replies, indexed by worker.
        """
        self._history.append((payload, frames))
        replies: List[Any] = [None] * len(self.workers)
        for handle in self.workers:
            command = ("epoch", payload, frames[handle.index])
            try:
                self._send(handle, command)
            except WorkerFailure as failure:
                replies[handle.index] = self._handle_failure(
                    handle, failure, resend=command
                )
        for handle in self.workers:
            if replies[handle.index] is not None:
                continue
            command = ("epoch", payload, frames[handle.index])
            try:
                replies[handle.index] = self._recv(handle)
            except WorkerFailure as failure:
                replies[handle.index] = self._handle_failure(
                    handle, failure, resend=command
                )
        for handle, reply in zip(self.workers, replies):
            handle.completed += 1
            handle.next_times = dict(reply[1])
            handle.last_digests = dict(reply[3])
        return replies

    def run_all(self, until, timeout_s: Optional[float] = None):
        """Single-worker fast path: one ``("run", until)`` command has
        the worker drive its own epoch loop to ``until`` — no per-epoch
        parent barrier.

        Only valid when one worker owns every domain (nothing to
        route, nothing to synchronize against). The epoch history
        stays empty, so crash recovery degenerates correctly: replay
        is a no-op and the whole deterministic run is re-issued.
        Returns the worker's ``("done", next_times, (epochs,
        messages_routed), digests)`` reply.
        """
        if len(self.workers) != 1:
            raise ResilienceError(
                "run_all needs exactly one worker owning every domain"
            )
        handle = self.workers[0]
        command = ("run", until)
        try:
            self._send(handle, command)
            reply = self._recv(handle, timeout_s=timeout_s)
        except WorkerFailure as failure:
            reply = self._handle_failure(handle, failure, resend=command)
        handle.next_times = dict(reply[1])
        handle.last_digests = dict(reply[3])
        return reply

    def finish(self, until) -> List[dict]:
        """Send the final command; returns per-worker stats dicts."""
        stats: List[Optional[dict]] = [None] * len(self.workers)
        command = ("finish", until)
        pending = []
        for handle in self.workers:
            try:
                self._send(handle, command)
                pending.append(handle)
            except WorkerFailure as failure:
                reply = self._handle_failure(handle, failure, resend=command)
                stats[handle.index] = reply[1]
        for handle in pending:
            try:
                reply = self._recv(handle)
            except WorkerFailure as failure:
                reply = self._handle_failure(handle, failure, resend=command)
            stats[handle.index] = reply[1]
        return [s for s in stats if s is not None]

    def shutdown(self) -> None:
        """Close pipes and reap every worker process.

        Join honours the configurable supervisor timeout (this replaces
        the old fixed ``proc.join(timeout=30)``), then escalates to
        terminate and finally SIGKILL so no orphan survives.
        """
        for handle in self.workers:
            self._reap(handle, join_timeout_s=self.epoch_timeout_s)

    def kill(self, worker: int, sig: int = signal.SIGKILL) -> None:
        """Deliver ``sig`` to a worker — the chaos-injection hook."""
        handle = self.workers[worker]
        if handle.proc is not None and handle.proc.pid is not None:
            os.kill(handle.proc.pid, sig)

    def pids(self) -> List[int]:
        return [h.proc.pid for h in self.workers if h.proc is not None]

    # -- plumbing ------------------------------------------------------

    def _launch(self, handle: WorkerHandle) -> None:
        handle.conn, handle.proc = self._spawn(handle.index)

    def _ready(self, handle: WorkerHandle) -> None:
        reply = self._recv(handle)
        if reply[0] != "ready":
            raise WorkerCrash(
                handle.index,
                handle.domains,
                self.epoch_index,
                detail=f"expected 'ready', got {reply[0]!r}",
            )
        handle.next_times = dict(reply[1])

    def _send(self, handle: WorkerHandle, command) -> None:
        try:
            handle.conn.send(command)
        except (OSError, ValueError) as exc:
            raise WorkerCrash(
                handle.index,
                handle.domains,
                self.epoch_index,
                detail=f"pipe write failed: {exc!r}",
            ) from exc

    def _recv(self, handle: WorkerHandle, timeout_s: Optional[float] = None):
        """Receive the next non-heartbeat reply, within the timeout.

        Polls at the heartbeat cadence: every empty window counts a
        missed heartbeat; EOF or a dead process is a crash; hitting the
        deadline with the process still alive is a hang (the message
        records whether heartbeats kept arriving — livelock — or the
        process went completely silent — wedged/stopped).
        """
        timeout_s = self.epoch_timeout_s if timeout_s is None else timeout_s
        deadline = time.monotonic() + timeout_s
        beats = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                if handle.proc is not None and not handle.proc.is_alive():
                    raise WorkerCrash(
                        handle.index,
                        handle.domains,
                        self.epoch_index,
                        detail=(
                            "process died "
                            f"(exitcode {handle.proc.exitcode})"
                        ),
                    )
                liveness = (
                    f"{beats} heartbeat(s) received while waiting "
                    "(livelocked?)"
                    if beats
                    else "no heartbeats received (wedged or stopped)"
                )
                raise WorkerHang(
                    handle.index,
                    handle.domains,
                    self.epoch_index,
                    detail=(
                        f"no reply within {timeout_s:g}s; {liveness}"
                    ),
                )
            window = min(self.heartbeat_interval_s, remaining)
            try:
                if not handle.conn.poll(window):
                    self.heartbeats_missed += 1
                    if handle.proc is not None and not handle.proc.is_alive():
                        raise WorkerCrash(
                            handle.index,
                            handle.domains,
                            self.epoch_index,
                            detail=(
                                "process died "
                                f"(exitcode {handle.proc.exitcode})"
                            ),
                        )
                    continue
                reply = handle.conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerCrash(
                    handle.index,
                    handle.domains,
                    self.epoch_index,
                    detail=f"pipe closed: {exc!r}",
                ) from exc
            tag = reply[0]
            if tag == "hb":
                beats += 1
                continue
            if tag == "error":
                info = reply[1] if isinstance(reply[1], dict) else {}
                raise WorkerCrash(
                    handle.index,
                    handle.domains,
                    info.get("epoch", self.epoch_index),
                    detail="worker reported an error",
                    traceback=info.get(
                        "traceback",
                        reply[1] if isinstance(reply[1], str) else None,
                    ),
                )
            return reply

    # -- recovery ------------------------------------------------------

    def _handle_failure(self, handle: WorkerHandle, failure: WorkerFailure, resend):
        """Recover ``handle`` per the retry policy.

        ``resend`` is the in-flight command to re-issue after replay
        (or ``None`` during startup); returns its reply when set.
        Raises :class:`SupervisionEscalation` when attempts run out.
        """
        last: WorkerFailure = failure
        attempt = 0
        while attempt < self.policy.max_attempts:
            attempt += 1
            self.retries += 1
            self.policy.sleep(attempt)
            try:
                self._respawn(handle)
                self._replay(handle)
                if resend is None:
                    return None
                self._send(handle, resend)
                return self._recv(handle)
            except WorkerFailure as exc:
                last = exc
        escalation = SupervisionEscalation(handle.index, attempt, last)
        # Counters travel with the escalation so a degraded run's
        # report can still account for the failed parallel attempt.
        escalation.counters = {
            "heartbeats_missed": self.heartbeats_missed,
            "workers_restarted": self.workers_restarted,
            "retries": self.retries,
        }
        raise escalation from last

    def _respawn(self, handle: WorkerHandle) -> None:
        self._reap(handle, join_timeout_s=0.0)
        self.workers_restarted += 1
        self._launch(handle)
        self._ready(handle)

    def _replay(self, handle: WorkerHandle) -> None:
        """Drive a freshly rebuilt worker back to the last completed
        epoch barrier, then digest-verify it against pre-crash state.

        Replayed outboxes are discarded — the parent routed them the
        first time around — and the digests of the final replayed epoch
        must match ``handle.last_digests`` exactly, or recovery stops
        with :class:`WorkerDesync`.
        """
        digests: Optional[Dict[int, Tuple[str, int]]] = None
        for payload, frames in self._history[: handle.completed]:
            self._send(
                handle, ("epoch", payload, frames[handle.index])
            )
            reply = self._recv(handle)
            handle.next_times = dict(reply[1])
            digests = dict(reply[3])
        if handle.completed == 0 or handle.last_digests is None:
            return
        from repro.check.sanitize import diff_domain_digests

        expected = {d: h for d, (h, _) in handle.last_digests.items()}
        actual = {d: h for d, (h, _) in (digests or {}).items()}
        bad = diff_domain_digests(expected, actual)
        counts_expected = {d: n for d, (_, n) in handle.last_digests.items()}
        counts_actual = {d: n for d, (_, n) in (digests or {}).items()}
        if not bad and counts_expected != counts_actual:
            bad = sorted(
                d
                for d in counts_expected
                if counts_expected.get(d) != counts_actual.get(d)
            )
        if bad:
            raise WorkerDesync(
                handle.index,
                handle.domains,
                handle.completed - 1,
                detail=(
                    "replay digests diverged for domain(s) "
                    f"{bad} after rebuild — refusing to resume from an "
                    "unverifiable state"
                ),
            )

    def _reap(self, handle: WorkerHandle, join_timeout_s: float) -> None:
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:  # best-effort close
                pass
            handle.conn = None
        proc = handle.proc
        if proc is None:
            return
        proc.join(timeout=join_timeout_s)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
        if proc.is_alive():
            # SIGTERM does not reach a SIGSTOPped process; SIGKILL does.
            proc.kill()
            proc.join(timeout=5.0)
        handle.proc = None
