"""Per-VN network stacks: addressing, UDP, and TCP Reno/NewReno.

In the real ModelNet, edge nodes run unmodified OS network stacks and
a preload library interposes on socket calls to bind endpoints to VN
addresses (paper Sec. 2.1). In this virtual-time reproduction the OS
stack itself is a substrate we implement: :class:`NetStack` is the
per-VN stack, handing packets to whatever fabric it is bound to (the
ModelNet core, or a test fabric).

The TCP implementation is segment-level Reno with NewReno partial-ACK
recovery, delayed ACKs, Jacobson/Karels RTO estimation, and Karn's
algorithm — enough fidelity that congestion behaviour through emulated
pipes drives the paper's figures the same way real TCP did.
"""

from repro.net.addr import vn_ip, parse_vn_ip, AddressError
from repro.net.packet import Packet, PROTO_TCP, PROTO_UDP, IP_HEADER_BYTES
from repro.net.sockets import NetStack, SocketError, UdpSocket, TcpListener
from repro.net.tcp import TcpConnection, TcpParams
from repro.net.loopback import LoopbackFabric
from repro.net.interpose import (
    NameService,
    VnEnvironment,
    PerSocketVnMapper,
    interpose,
)
from repro.net.conntrace import ConnectionSample, ConnectionTracer

__all__ = [
    "vn_ip",
    "parse_vn_ip",
    "AddressError",
    "Packet",
    "PROTO_TCP",
    "PROTO_UDP",
    "IP_HEADER_BYTES",
    "NetStack",
    "SocketError",
    "UdpSocket",
    "TcpListener",
    "TcpConnection",
    "TcpParams",
    "LoopbackFabric",
    "NameService",
    "VnEnvironment",
    "PerSocketVnMapper",
    "interpose",
    "ConnectionSample",
    "ConnectionTracer",
]
