"""Per-connection TCP tracing (a tcptrace/ss analog).

Evaluating services on the emulator often comes down to "what did TCP
do?" — :class:`ConnectionTracer` samples one connection's congestion
state over time and derives the series the classic tools plot:
cwnd/ssthresh evolution, RTT estimates, and a time-sequence summary.
Sampling is polling-based (no hooks in the data path), so tracing has
no effect on the traced connection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.tcp import TcpConnection


@dataclass(frozen=True)
class ConnectionSample:
    """One point-in-time snapshot of a connection's state."""

    time: float
    cwnd: float
    ssthresh: float
    srtt: Optional[float]
    rto: float
    bytes_acked: int
    in_recovery: bool
    timeouts: int
    retransmitted: int


class ConnectionTracer:
    """Samples a :class:`TcpConnection` at a fixed period."""

    def __init__(
        self,
        connection: TcpConnection,
        period_s: float = 0.05,
        start: bool = True,
    ):
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.connection = connection
        self.sim = connection.sim
        self.period_s = period_s
        self.samples: List[ConnectionSample] = []
        self._running = False
        if start:
            self.start()

    def start(self) -> None:
        """Begin (or resume) sampling."""
        if self._running:
            return
        self._running = True
        self._tick()

    def stop(self) -> None:
        """Stop sampling (the collected samples remain)."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        conn = self.connection
        self.samples.append(
            ConnectionSample(
                time=self.sim.now,
                cwnd=conn.cwnd,
                ssthresh=conn.ssthresh,
                srtt=conn.srtt,
                rto=conn.rto,
                bytes_acked=conn.bytes_acked,
                in_recovery=conn.in_recovery,
                timeouts=conn.timeouts,
                retransmitted=conn.segments_retransmitted,
            )
        )
        if conn.state == "closed":
            self._running = False
            return
        self.sim.schedule(self.period_s, self._tick)

    # -- derived series ---------------------------------------------------

    def cwnd_series(self) -> List[tuple]:
        """(time, cwnd bytes) points."""
        return [(s.time, s.cwnd) for s in self.samples]

    def rtt_series(self) -> List[tuple]:
        """(time, smoothed RTT) points, once estimates exist."""
        return [(s.time, s.srtt) for s in self.samples if s.srtt is not None]

    def goodput_series(self) -> List[tuple]:
        """(time, bytes/sec) between consecutive samples."""
        series = []
        for earlier, later in zip(self.samples, self.samples[1:]):
            elapsed = later.time - earlier.time
            if elapsed > 0:
                series.append(
                    (
                        later.time,
                        (later.bytes_acked - earlier.bytes_acked) / elapsed,
                    )
                )
        return series

    def max_cwnd(self) -> float:
        """Largest congestion window observed."""
        return max((s.cwnd for s in self.samples), default=0.0)

    def recovery_fraction(self) -> float:
        """Fraction of samples taken inside loss recovery."""
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s.in_recovery) / len(self.samples)

    def summary(self) -> str:
        """A one-line human-readable digest of the trace."""
        last = self.samples[-1] if self.samples else None
        if last is None:
            return "<no samples>"
        rtts = [s.srtt for s in self.samples if s.srtt is not None]
        mean_rtt = sum(rtts) / len(rtts) if rtts else float("nan")
        return (
            f"samples={len(self.samples)} max_cwnd={self.max_cwnd():.0f}B "
            f"mean_srtt={mean_rtt*1e3:.1f}ms acked={last.bytes_acked}B "
            f"rexmit={last.retransmitted} rtos={last.timeouts} "
            f"recovery={self.recovery_fraction()*100:.0f}%"
        )
