"""A trivial test fabric: fixed-delay, optionally lossy delivery.

Used by unit tests and micro-examples to exercise stacks and TCP
without the full ModelNet core. Supports per-pair delay, uniform random
loss, and a per-pair bandwidth cap (a single bottleneck serializer),
which is enough to provoke every TCP code path.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.engine.simulator import Simulator
from repro.net.packet import Packet
from repro.net.sockets import NetStack


class LoopbackFabric:
    """Connects a set of stacks with configurable delay/loss/bandwidth."""

    def __init__(
        self,
        sim: Simulator,
        delay_s: float = 0.01,
        loss_rate: float = 0.0,
        bandwidth_bps: Optional[float] = None,
        jitter_s: float = 0.0,
        rng=None,
    ):
        self.sim = sim
        self.delay_s = delay_s
        self.loss_rate = loss_rate
        self.bandwidth_bps = bandwidth_bps
        #: Uniform per-packet delay jitter; enough of it reorders
        #: packets, exercising receivers' out-of-order machinery.
        self.jitter_s = jitter_s
        self.rng = rng
        self._stacks: Dict[int, NetStack] = {}
        self._pair_delay: Dict[Tuple[int, int], float] = {}
        self._free_at: Dict[Tuple[int, int], float] = {}
        self.delivered = 0
        self.dropped = 0
        self.drop_filter: Optional[Callable[[Packet], bool]] = None

    def stack(self, vn_id: int, **kwargs) -> NetStack:
        """Create (or fetch) the stack for ``vn_id`` and attach it."""
        stack = self._stacks.get(vn_id)
        if stack is None:
            stack = NetStack(self.sim, vn_id, **kwargs)
            stack.attach(self.transmit)
            self._stacks[vn_id] = stack
        return stack

    def set_delay(self, a: int, b: int, delay_s: float) -> None:
        """Override the one-way delay between a pair (both directions)."""
        self._pair_delay[(a, b)] = delay_s
        self._pair_delay[(b, a)] = delay_s

    def transmit(self, packet: Packet) -> None:
        """Fabric entry point: apply loss/delay/bandwidth, deliver."""
        if packet.dst not in self._stacks:
            self.dropped += 1
            return
        if self.drop_filter is not None and self.drop_filter(packet):
            self.dropped += 1
            return
        if self.loss_rate > 0.0 and self.rng is not None:
            if self.rng.random() < self.loss_rate:
                self.dropped += 1
                return
        delay = self._pair_delay.get((packet.src, packet.dst), self.delay_s)
        if self.jitter_s > 0.0 and self.rng is not None:
            delay += self.rng.uniform(0.0, self.jitter_s)
        if self.bandwidth_bps:
            key = (packet.src, packet.dst)
            start = max(self.sim.now, self._free_at.get(key, 0.0))
            done = start + packet.size_bytes * 8.0 / self.bandwidth_bps
            self._free_at[key] = done
            delay += done - self.sim.now
        self.sim.schedule(delay, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        stack = self._stacks.get(packet.dst)
        if stack is None:
            self.dropped += 1
            return
        self.delivered += 1
        stack.deliver(packet)
