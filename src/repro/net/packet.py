"""Network packets.

A :class:`Packet` is an IP datagram between two VNs. The payload is a
transport segment object; packet *data* is never represented — like
the ModelNet core, which moves packets by reference and never copies
payload bytes, we track only sizes.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

PROTO_TCP = "tcp"
PROTO_UDP = "udp"

#: Combined IP + transport header bytes charged to every packet.
IP_HEADER_BYTES = 40

_packet_ids = itertools.count()


class Packet:
    """An IP datagram from VN ``src`` to VN ``dst``.

    ``size_bytes`` is the full wire size including headers; ``segment``
    is the transport-layer object (TcpSegment / UdpDatagram).
    """

    __slots__ = ("id", "src", "dst", "size_bytes", "proto", "segment", "created_at")

    def __init__(
        self,
        src: int,
        dst: int,
        size_bytes: int,
        proto: str,
        segment: Any = None,
        created_at: float = 0.0,
    ):
        self.id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.size_bytes = int(size_bytes)
        self.proto = proto
        self.segment = segment
        self.created_at = created_at

    def __repr__(self) -> str:
        return (
            f"<Packet #{self.id} {self.proto} vn{self.src}->vn{self.dst} "
            f"{self.size_bytes}B>"
        )
