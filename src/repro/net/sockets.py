"""Per-VN network stacks and the socket-level API.

A :class:`NetStack` is the emulated OS network stack of one VN. It is
bound to a *fabric* — anything with a ``transmit(packet)`` entry point
that eventually calls :meth:`NetStack.deliver` on the destination
stack. In a full emulation the fabric is the ModelNet core; in unit
tests it is :class:`~repro.net.loopback.LoopbackFabric`.

This layer plays the role of the paper's library-interposition trick:
applications name peers by VN id and the stack stamps the right
10.x.y.z source address on every packet.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.engine.simulator import Simulator
from repro.net.addr import vn_ip
from repro.net.packet import IP_HEADER_BYTES, PROTO_TCP, PROTO_UDP, Packet
from repro.net.tcp import SYN_SENT, FLAG_SYN, TcpConnection, TcpParams, TcpSegment

EPHEMERAL_BASE = 49152


class SocketError(RuntimeError):
    """Raised for invalid socket operations (port in use, ...)."""


class UdpDatagram:
    """Transport payload of a UDP packet."""

    __slots__ = ("sport", "dport", "payload", "payload_len")

    def __init__(self, sport: int, dport: int, payload: Any, payload_len: int):
        self.sport = sport
        self.dport = dport
        self.payload = payload
        self.payload_len = payload_len


class UdpSocket:
    """Connectionless datagram socket bound to one VN port."""

    def __init__(self, stack: "NetStack", port: int):
        self.stack = stack
        self.port = port
        self.on_receive: Optional[Callable] = None
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self.bytes_received = 0
        self._closed = False

    def send_to(
        self,
        dst_vn: int,
        dst_port: int,
        payload_bytes: int,
        payload: Any = None,
    ) -> None:
        """Send a datagram of ``payload_bytes`` to (dst_vn, dst_port)."""
        if self._closed:
            raise SocketError("send on closed socket")
        if payload_bytes < 0:
            raise ValueError("payload size must be >= 0")
        datagram = UdpDatagram(self.port, dst_port, payload, payload_bytes)
        packet = Packet(
            self.stack.vn_id,
            dst_vn,
            payload_bytes + IP_HEADER_BYTES,
            PROTO_UDP,
            datagram,
            created_at=self.stack.sim.now,
        )
        self.datagrams_sent += 1
        self.stack.transmit(packet)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.stack._udp_ports.pop(self.port, None)

    def _deliver(self, src_vn: int, datagram: UdpDatagram) -> None:
        self.datagrams_received += 1
        self.bytes_received += datagram.payload_len
        if self.on_receive:
            self.on_receive(src_vn, datagram.sport, datagram.payload_len, datagram.payload)


class TcpListener:
    """A passive TCP endpoint accepting connections on one port."""

    def __init__(self, stack: "NetStack", port: int, on_connection: Callable):
        self.stack = stack
        self.port = port
        self.on_connection = on_connection
        self.accepted = 0
        self._closed = False

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.stack._tcp_listeners.pop(self.port, None)


class NetStack:
    """The emulated network stack of a single VN."""

    def __init__(
        self,
        sim: Simulator,
        vn_id: int,
        tcp_params: Optional[TcpParams] = None,
    ):
        self.sim = sim
        self.vn_id = vn_id
        self.ip = vn_ip(vn_id)
        self.tcp_params = tcp_params or TcpParams()
        self._transmit_fn: Optional[Callable[[Packet], None]] = None
        self._udp_ports: Dict[int, UdpSocket] = {}
        self._tcp_listeners: Dict[int, TcpListener] = {}
        self._connections: Dict[Tuple[int, int, int], TcpConnection] = {}
        self._next_ephemeral = EPHEMERAL_BASE
        self.packets_sent = 0
        self.packets_received = 0
        # Cumulative TCP counters of connections that have fully
        # closed (closed connections leave _connections, so their
        # statistics are folded in here to keep tcp_stats() total).
        self._tcp_closed_stats: Dict[str, int] = {}

    # -- fabric binding -------------------------------------------------

    def attach(self, transmit_fn: Callable[[Packet], None]) -> None:
        """Bind this stack to a fabric's transmit entry point."""
        self._transmit_fn = transmit_fn

    def transmit(self, packet: Packet) -> None:
        if self._transmit_fn is None:
            raise SocketError(f"stack vn{self.vn_id} is not attached to a fabric")
        self.packets_sent += 1
        self._transmit_fn(packet)

    def deliver(self, packet: Packet) -> None:
        """Called by the fabric when a packet arrives for this VN."""
        self.packets_received += 1
        if packet.proto == PROTO_UDP:
            datagram = packet.segment
            socket = self._udp_ports.get(datagram.dport)
            if socket is not None:
                socket._deliver(packet.src, datagram)
            return
        if packet.proto == PROTO_TCP:
            self._deliver_tcp(packet.src, packet.segment)

    def _deliver_tcp(self, src_vn: int, segment: TcpSegment) -> None:
        key = (segment.dport, src_vn, segment.sport)
        connection = self._connections.get(key)
        if connection is not None:
            connection.handle_segment(src_vn, segment)
            return
        if segment.flags & FLAG_SYN and not segment.ack_seq:
            listener = self._tcp_listeners.get(segment.dport)
            if listener is not None and not listener._closed:
                connection = TcpConnection(
                    self,
                    segment.dport,
                    src_vn,
                    segment.sport,
                    self.tcp_params,
                    passive=True,
                )
                self._connections[key] = connection
                listener.accepted += 1
                listener.on_connection(connection)
                connection.handle_segment(src_vn, segment)
        # Segments for unknown connections are dropped silently (the
        # RST machinery is not modeled).

    # -- sockets ----------------------------------------------------------

    def _allocate_port(self) -> int:
        for _ in range(65536 - EPHEMERAL_BASE):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= 65536:
                self._next_ephemeral = EPHEMERAL_BASE
            if port not in self._udp_ports and not any(
                key[0] == port for key in self._connections
            ):
                return port
        raise SocketError("out of ephemeral ports")

    def udp_socket(
        self,
        port: Optional[int] = None,
        on_receive: Optional[Callable] = None,
    ) -> UdpSocket:
        """Open a UDP socket, on ``port`` or an ephemeral one."""
        if port is None:
            port = self._allocate_port()
        if port in self._udp_ports:
            raise SocketError(f"UDP port {port} in use on vn{self.vn_id}")
        socket = UdpSocket(self, port)
        socket.on_receive = on_receive
        self._udp_ports[port] = socket
        return socket

    def tcp_listen(self, port: int, on_connection: Callable) -> TcpListener:
        """Accept TCP connections on ``port``; ``on_connection(conn)``
        fires for each new connection (install callbacks there)."""
        if port in self._tcp_listeners:
            raise SocketError(f"TCP port {port} already listening on vn{self.vn_id}")
        listener = TcpListener(self, port, on_connection)
        self._tcp_listeners[port] = listener
        return listener

    def tcp_connect(
        self,
        remote_vn: int,
        remote_port: int,
        on_established: Optional[Callable] = None,
        on_receive: Optional[Callable] = None,
        on_message: Optional[Callable] = None,
        on_close: Optional[Callable] = None,
        local_port: Optional[int] = None,
    ) -> TcpConnection:
        """Active-open a TCP connection to (remote_vn, remote_port)."""
        if local_port is None:
            local_port = self._allocate_port()
        key = (local_port, remote_vn, remote_port)
        if key in self._connections:
            raise SocketError(f"connection {key} already exists")
        connection = TcpConnection(
            self, local_port, remote_vn, remote_port, self.tcp_params
        )
        connection.on_established = on_established
        connection.on_receive = on_receive
        connection.on_message = on_message
        connection.on_close = on_close
        self._connections[key] = connection
        connection.open()
        return connection

    def _connection_closed(self, connection: TcpConnection) -> None:
        key = (connection.local_port, connection.remote_vn, connection.remote_port)
        existing = self._connections.get(key)
        if existing is connection:
            del self._connections[key]
            for stat, value in connection.stats().items():
                self._tcp_closed_stats[stat] = (
                    self._tcp_closed_stats.get(stat, 0) + value
                )

    def tcp_stats(self) -> Dict[str, int]:
        """Aggregate TCP counters over this stack's lifetime: live
        connections plus everything already closed."""
        totals = dict(self._tcp_closed_stats)
        for connection in self._connections.values():
            for stat, value in connection.stats().items():
                totals[stat] = totals.get(stat, 0) + value
        return totals

    def __repr__(self) -> str:
        return f"<NetStack vn{self.vn_id} ip={self.ip}>"
