"""VN addressing: the 10.0.0.0/8 space of the paper.

All VNs bind to addresses of the form 10.a.b.c; the ipfw rule in the
core intercepts exactly this prefix. Internally a VN is identified by
a small integer index; these helpers render and parse the dotted form
(used in logs, configs, and the interposition layer).
"""

from __future__ import annotations


class AddressError(ValueError):
    """Raised for addresses outside the emulated 10/8 space."""


_MAX_VN = 2**24 - 1


def vn_ip(vn_id: int) -> str:
    """The 10.a.b.c address of VN ``vn_id`` (0 -> 10.0.0.1).

    The host octets encode ``vn_id + 1`` so no VN maps to the network
    address 10.0.0.0.
    """
    if not 0 <= vn_id < _MAX_VN:
        raise AddressError(f"VN id {vn_id} out of range")
    value = vn_id + 1
    return f"10.{(value >> 16) & 0xFF}.{(value >> 8) & 0xFF}.{value & 0xFF}"


def parse_vn_ip(address: str) -> int:
    """Inverse of :func:`vn_ip`."""
    parts = address.split(".")
    if len(parts) != 4:
        raise AddressError(f"malformed address {address!r}")
    try:
        octets = [int(part) for part in parts]
    except ValueError:
        raise AddressError(f"malformed address {address!r}") from None
    if octets[0] != 10 or any(not 0 <= octet <= 255 for octet in octets):
        raise AddressError(f"{address!r} is not in the emulated 10/8 space")
    value = (octets[1] << 16) | (octets[2] << 8) | octets[3]
    if value == 0:
        raise AddressError("10.0.0.0 is the network address, not a VN")
    return value - 1
