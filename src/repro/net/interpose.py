"""The library-interposition analog (paper Sec. 2.1 and 4.2).

ModelNet preloads a shim that wraps bind/connect/sendto/... and the
name-resolution calls so unmodified applications transparently use
their VN's 10.x.y.z address. In this reproduction applications are
Python objects, so the shim becomes an explicit *environment*: a
:class:`VnEnvironment` scopes an application instance to one VN,
resolving hostnames through the emulation-wide naming registry and
opening sockets on that VN's stack.

Sec. 4.2 also describes "a variant of the socket interposition
library that maps each open socket to a different VN", letting one
process host many VNs efficiently; :class:`PerSocketVnMapper`
implements that variant.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Optional

from repro.net.addr import AddressError, parse_vn_ip, vn_ip


class NameService:
    """Emulation-wide hostname registry (the gethostbyname shim)."""

    def __init__(self):
        self._by_name: Dict[str, int] = {}
        self._by_vn: Dict[int, str] = {}

    def register(self, vn_id: int, hostname: str) -> None:
        """Bind ``hostname`` to a VN (idempotent; conflicts raise)."""
        if hostname in self._by_name and self._by_name[hostname] != vn_id:
            raise AddressError(f"hostname {hostname!r} already registered")
        self._by_name[hostname] = vn_id
        self._by_vn[vn_id] = hostname

    def gethostbyname(self, hostname: str) -> str:
        """hostname -> dotted VN address (raises like a failed DNS
        lookup on unknown names)."""
        vn = self._by_name.get(hostname)
        if vn is None:
            # Dotted addresses resolve to themselves, as libc does.
            parse_vn_ip(hostname)
            return hostname
        return vn_ip(vn)

    def gethostbyaddr(self, address: str) -> str:
        """Reverse lookup: dotted VN address -> hostname."""
        vn = parse_vn_ip(address)
        hostname = self._by_vn.get(vn)
        if hostname is None:
            raise AddressError(f"no reverse mapping for {address}")
        return hostname

    def resolve_vn(self, name_or_address: str) -> int:
        """hostname or dotted address -> VN id."""
        vn = self._by_name.get(name_or_address)
        if vn is not None:
            return vn
        return parse_vn_ip(name_or_address)


class VnEnvironment:
    """The view an interposed application process has of the world:
    its own hostname/address, name resolution, and sockets that are
    automatically bound to its VN."""

    def __init__(self, emulation, vn_id: int, names: NameService):
        self.emulation = emulation
        self.vn_id = vn_id
        self.names = names

    # -- identity (uname/gethostname shims) ------------------------------

    @property
    def ip(self) -> str:
        return vn_ip(self.vn_id)

    def gethostname(self) -> str:
        return self.names._by_vn.get(self.vn_id, self.ip)

    def gethostbyname(self, hostname: str) -> str:
        return self.names.gethostbyname(hostname)

    # -- sockets, pre-bound to this VN ------------------------------------

    def udp_socket(self, port: Optional[int] = None, on_receive=None):
        return self.emulation.vn(self.vn_id).udp_socket(
            port=port, on_receive=on_receive
        )

    def tcp_listen(self, port: int, on_connection):
        return self.emulation.vn(self.vn_id).tcp_listen(port, on_connection)

    def tcp_connect(self, host: str, port: int, **callbacks):
        """connect() by hostname or dotted address."""
        remote_vn = self.names.resolve_vn(host)
        return self.emulation.vn(self.vn_id).tcp_connect(
            remote_vn, port, **callbacks
        )

    def sendto(self, socket, host: str, port: int, size: int, payload=None):
        """sendto() with interposed name resolution."""
        socket.send_to(self.names.resolve_vn(host), port, size, payload)


class PerSocketVnMapper:
    """The Sec. 4.2 variant: one application process drives many VNs,
    with each newly opened socket mapped to the next VN round-robin.

    Useful for efficient load generators (e.g. a single event-driven
    web client process emulating a whole client cloud)."""

    def __init__(self, emulation, vn_ids: Iterable[int], names: NameService):
        self.emulation = emulation
        self.vn_ids = list(vn_ids)
        if not self.vn_ids:
            raise ValueError("mapper needs at least one VN")
        self.names = names
        self._cycle = itertools.cycle(self.vn_ids)
        self.sockets_opened = 0

    def next_vn(self) -> int:
        self.sockets_opened += 1
        return next(self._cycle)

    def udp_socket(self, port: Optional[int] = None, on_receive=None):
        return self.emulation.vn(self.next_vn()).udp_socket(
            port=port, on_receive=on_receive
        )

    def tcp_connect(self, host: str, port: int, **callbacks):
        remote_vn = self.names.resolve_vn(host)
        return self.emulation.vn(self.next_vn()).tcp_connect(
            remote_vn, port, **callbacks
        )


def interpose(emulation, hostnames: Optional[Dict[int, str]] = None):
    """Build a :class:`NameService` (optionally pre-registering
    ``{vn_id: hostname}``) and one environment per VN.

    Returns (names, [VnEnvironment per VN]).
    """
    names = NameService()
    if hostnames:
        for vn_id, hostname in sorted(hostnames.items()):
            names.register(vn_id, hostname)
    environments = [
        VnEnvironment(emulation, vn.vn_id, names) for vn in emulation.vns
    ]
    return names, environments
