"""Segment-level TCP: Reno congestion control with NewReno recovery.

This plays the role of the Linux 2.4 stacks on the paper's edge nodes.
Features implemented (and exercised by the evaluation figures):

* three-way handshake with SYN retransmission;
* slow start / congestion avoidance / fast retransmit / fast recovery,
  with NewReno partial-ACK handling;
* Jacobson/Karels RTO estimation with Karn's algorithm and exponential
  backoff;
* delayed ACKs (every second segment or a 200 ms timer), immediate
  duplicate ACKs on out-of-order data;
* receiver window advertisement (the application consumes instantly,
  so no persist timer is needed);
* FIN-based close in both directions.

Data is modeled as byte *counts*, never byte contents. Applications
can attach a message object to a write; the object is delivered by the
peer's ``on_message`` callback when the last byte of that write
arrives in order — this is the framing layer the case-study
applications (CFS, web, overlays) speak over TCP.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.packet import IP_HEADER_BYTES, PROTO_TCP, Packet

FLAG_SYN = 0x1
FLAG_ACK = 0x2
FLAG_FIN = 0x4
FLAG_RST = 0x8

# Connection states.
CLOSED = "closed"
LISTEN = "listen"
SYN_SENT = "syn-sent"
SYN_RCVD = "syn-rcvd"
ESTABLISHED = "established"
FIN_WAIT = "fin-wait"
CLOSE_WAIT = "close-wait"
LAST_ACK = "last-ack"
TIME_WAIT = "time-wait"


class TcpParams:
    """Tunable constants, defaulting to paper-era (2002) stacks."""

    __slots__ = (
        "mss",
        "init_cwnd_segments",
        "rcv_wnd",
        "min_rto",
        "max_rto",
        "initial_rto",
        "delack_delay",
        "dupack_threshold",
        "max_syn_retries",
        "sack",
    )

    def __init__(
        self,
        mss: int = 1460,
        init_cwnd_segments: int = 2,
        rcv_wnd: int = 65535,
        min_rto: float = 0.2,
        max_rto: float = 60.0,
        initial_rto: float = 1.0,
        delack_delay: float = 0.1,
        dupack_threshold: int = 3,
        max_syn_retries: int = 6,
        sack: bool = False,
    ):
        # NB: delack_delay must stay clearly below min_rto, or a
        # transfer's final odd segment waits out the peer's delayed
        # ACK and fires a spurious retransmission timeout.
        self.mss = mss
        self.init_cwnd_segments = init_cwnd_segments
        self.rcv_wnd = rcv_wnd
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.initial_rto = initial_rto
        self.delack_delay = delack_delay
        self.dupack_threshold = dupack_threshold
        self.max_syn_retries = max_syn_retries
        #: RFC 2018 selective acknowledgments: receivers advertise
        #: out-of-order runs; senders retransmit only the holes.
        self.sack = sack

    @classmethod
    def modern(cls, **overrides) -> "TcpParams":
        """A SACK-enabled parameter set (late-2002 Linux defaults)."""
        overrides.setdefault("sack", True)
        return cls(**overrides)


class TcpSegment:
    """One TCP segment. ``messages`` carries (end_seq, object) framing
    markers for application writes ending inside this segment."""

    __slots__ = (
        "sport",
        "dport",
        "seq",
        "ack_seq",
        "flags",
        "wnd",
        "payload_len",
        "messages",
        "sack_blocks",
    )

    def __init__(
        self,
        sport: int,
        dport: int,
        seq: int,
        ack_seq: int,
        flags: int,
        wnd: int,
        payload_len: int = 0,
        messages: Optional[List[Tuple[int, Any]]] = None,
        sack_blocks: Optional[List[Tuple[int, int]]] = None,
    ):
        self.sport = sport
        self.dport = dport
        self.seq = seq
        self.ack_seq = ack_seq
        self.flags = flags
        self.wnd = wnd
        self.payload_len = payload_len
        self.messages = messages
        self.sack_blocks = sack_blocks

    def __repr__(self) -> str:
        names = []
        for bit, name in ((FLAG_SYN, "SYN"), (FLAG_ACK, "ACK"), (FLAG_FIN, "FIN"), (FLAG_RST, "RST")):
            if self.flags & bit:
                names.append(name)
        return (
            f"<Seg {'|'.join(names) or 'DATA'} seq={self.seq} "
            f"ack={self.ack_seq} len={self.payload_len}>"
        )


class TcpConnection:
    """One endpoint of a TCP connection between two VNs.

    Created via ``NetStack.tcp_connect`` (active open) or handed to a
    listener's ``on_connection`` callback (passive open). Application
    callbacks:

    * ``on_established(conn)`` — handshake completed;
    * ``on_receive(conn, nbytes)`` — in-order bytes delivered;
    * ``on_message(conn, obj)`` — a framed application write arrived;
    * ``on_close(conn)`` — the peer closed its direction (EOF).
    """

    def __init__(
        self,
        stack,
        local_port: int,
        remote_vn: int,
        remote_port: int,
        params: TcpParams,
        passive: bool = False,
    ):
        self.stack = stack
        self.sim = stack.sim
        self.params = params
        self.local_port = local_port
        self.remote_vn = remote_vn
        self.remote_port = remote_port

        self.state = LISTEN if passive else CLOSED
        self.on_established: Optional[Callable] = None
        self.on_receive: Optional[Callable] = None
        self.on_message: Optional[Callable] = None
        self.on_close: Optional[Callable] = None

        mss = params.mss
        # --- send state (sequence space: SYN occupies seq 0; data
        # starts at 1; FIN occupies one number after the last byte).
        self.snd_una = 0
        self.snd_nxt = 0
        self.snd_buf_end = 1  # next free sequence number for app data
        self.cwnd = float(params.init_cwnd_segments * mss)
        self.ssthresh = float(params.rcv_wnd)
        self.peer_wnd = params.rcv_wnd
        self.dupacks = 0
        self.in_recovery = False
        self.recover = 0
        self.fin_queued = False
        self.fin_seq: Optional[int] = None
        self._msg_ends: List[Tuple[int, Any]] = []  # sorted by end seq
        #: SACK scoreboard: merged (start, end) runs the peer holds.
        self._sacked: List[Tuple[int, int]] = []
        self._rexmit_point = 0  # next hole to repair this recovery

        # --- RTO state
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = params.initial_rto
        self._rtt_seq: Optional[int] = None
        self._rtt_time = 0.0
        self._rxt_timer = None
        self._backoff = 0
        self._syn_tries = 0
        self._rxt_attempts = 0
        self.max_rxt_attempts = 12

        # --- receive state
        self.rcv_nxt = 0
        self._ooo: List[Tuple[int, int]] = []  # merged (start, end) runs
        self._ooo_msgs: Dict[int, Any] = {}
        self._fin_received_seq: Optional[int] = None
        self._ack_pending = 0
        self._delack_timer = None
        self._peer_closed = False
        self._local_fin_acked = False

        # --- counters (app-visible accounting)
        self.bytes_sent = 0  # app bytes queued for send
        self.bytes_acked = 0
        self.bytes_received = 0
        self.segments_sent = 0
        self.segments_retransmitted = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        self.established_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------

    def open(self) -> None:
        """Active open: send SYN."""
        if self.state is not CLOSED:
            raise RuntimeError(f"open() in state {self.state}")
        self.state = SYN_SENT
        self._send_syn()

    def send(self, nbytes: int, message: Any = None) -> None:
        """Queue ``nbytes`` of application data. If ``message`` is not
        None it is delivered to the peer's ``on_message`` when the
        write's final byte arrives in order."""
        if nbytes <= 0:
            raise ValueError("send size must be positive")
        if self.fin_queued:
            raise RuntimeError("send after close")
        self.snd_buf_end += nbytes
        self.bytes_sent += nbytes
        if message is not None:
            self._msg_ends.append((self.snd_buf_end, message))
        if self.state is ESTABLISHED:
            self._try_send()

    def close(self) -> None:
        """Close the sending direction once queued data drains."""
        if self.fin_queued:
            return
        self.fin_queued = True
        if self.state in (ESTABLISHED, CLOSE_WAIT):
            self._try_send()

    def abort(self) -> None:
        """Drop the connection immediately (RST semantics, local)."""
        self._enter_closed()

    @property
    def is_open(self) -> bool:
        return self.state in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT)

    @property
    def flight_size(self) -> int:
        return self.snd_nxt - self.snd_una

    # ------------------------------------------------------------------
    # Segment transmission
    # ------------------------------------------------------------------

    def _transmit(self, segment: TcpSegment, payload_len: int) -> None:
        packet = Packet(
            self.stack.vn_id,
            self.remote_vn,
            payload_len + IP_HEADER_BYTES,
            PROTO_TCP,
            segment,
            created_at=self.sim.now,
        )
        self.segments_sent += 1
        self.stack.transmit(packet)

    def _rcv_wnd(self) -> int:
        buffered = sum(end - start for start, end in self._ooo)
        return max(0, self.params.rcv_wnd - buffered)

    def _send_syn(self) -> None:
        flags = FLAG_SYN if self.state is SYN_SENT else (FLAG_SYN | FLAG_ACK)
        ack = self.rcv_nxt if flags & FLAG_ACK else 0
        segment = TcpSegment(
            self.local_port, self.remote_port, 0, ack, flags, self._rcv_wnd()
        )
        self._transmit(segment, 0)
        self.snd_nxt = max(self.snd_nxt, 1)
        self._arm_rxt()

    def _send_ack(self) -> None:
        self._cancel_delack()
        self._ack_pending = 0
        sack_blocks = None
        if self.params.sack and self._ooo:
            # Up to three runs, nearest the cumulative ACK first.
            sack_blocks = self._ooo[:3]
        segment = TcpSegment(
            self.local_port,
            self.remote_port,
            self.snd_nxt,
            self.rcv_nxt,
            FLAG_ACK,
            self._rcv_wnd(),
            sack_blocks=sack_blocks,
        )
        self._transmit(segment, 0)

    def _messages_in(self, start: int, end: int) -> Optional[List[Tuple[int, Any]]]:
        if not self._msg_ends:
            return None
        selected = [
            (mark, message)
            for mark, message in self._msg_ends
            if start < mark <= end
        ]
        return selected or None

    def _send_data_segment(self, seq: int, length: int) -> None:
        segment = TcpSegment(
            self.local_port,
            self.remote_port,
            seq,
            self.rcv_nxt,
            FLAG_ACK,
            self._rcv_wnd(),
            payload_len=length,
            messages=self._messages_in(seq, seq + length),
        )
        self._cancel_delack()
        self._ack_pending = 0
        self._transmit(segment, length)

    def _send_fin(self) -> None:
        assert self.fin_seq is not None
        segment = TcpSegment(
            self.local_port,
            self.remote_port,
            self.fin_seq,
            self.rcv_nxt,
            FLAG_FIN | FLAG_ACK,
            self._rcv_wnd(),
        )
        self._transmit(segment, 0)

    def _effective_window(self) -> int:
        return int(min(self.cwnd, self.peer_wnd))

    # -- SACK scoreboard ---------------------------------------------------

    def _merge_sack(self, blocks) -> None:
        runs = self._sacked + [
            (start, end) for start, end in blocks if end > self.snd_una
        ]
        runs.sort()
        merged: List[Tuple[int, int]] = []
        for run in runs:
            if merged and run[0] <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], run[1]))
            else:
                merged.append(run)
        self._sacked = merged[:32]

    def _prune_sacked(self) -> None:
        self._sacked = [
            (max(start, self.snd_una), end)
            for start, end in self._sacked
            if end > self.snd_una
        ]

    def _sacked_bytes(self) -> int:
        return sum(end - start for start, end in self._sacked)

    def _retransmit_hole(self) -> bool:
        """SACK loss repair: retransmit one segment from the lowest
        un-SACKed hole at or above the recovery pointer. Only data
        *below* the highest SACKed byte is considered lost (data above
        it is merely in flight — RFC 3517's IsLost, simplified).
        Returns True if something was retransmitted."""
        if not self._sacked:
            return False
        seq = max(self.snd_una, self._rexmit_point)
        for start, end in self._sacked:
            if seq < start:
                break
            if seq < end:
                seq = end
        if seq >= min(self.snd_nxt, self._sacked[-1][1]):
            return False
        limit = self.snd_nxt
        for start, _end in self._sacked:
            if start > seq:
                limit = min(limit, start)
                break
        length = min(self.params.mss, limit - seq)
        self._rexmit_point = seq + length
        self.segments_retransmitted += 1
        self._rtt_seq = None
        if self.fin_seq is not None and seq >= self.fin_seq:
            self._send_fin()
        else:
            end = min(seq + length, self.snd_buf_end)
            if end > seq:
                self._send_data_segment(seq, end - seq)
        return True

    def _try_send(self) -> None:
        """Send as much new data (and finally the FIN) as the window
        allows."""
        mss = self.params.mss
        window = self._effective_window()
        sent_any = False
        while self.snd_nxt < self.snd_buf_end:
            in_flight = self.snd_nxt - self.snd_una - (
                self._sacked_bytes() if self.params.sack else 0
            )
            available = window - in_flight
            if available < min(mss, self.snd_buf_end - self.snd_nxt):
                break
            length = min(mss, self.snd_buf_end - self.snd_nxt, available)
            if length <= 0:
                break
            seq = self.snd_nxt
            self.snd_nxt += length
            if self._rtt_seq is None:
                self._rtt_seq = seq + length
                self._rtt_time = self.sim.now
            self._send_data_segment(seq, length)
            sent_any = True
        if (
            self.fin_queued
            and self.fin_seq is None
            and self.snd_nxt == self.snd_buf_end
            and self.snd_nxt - self.snd_una <= window
        ):
            self.fin_seq = self.snd_nxt
            self.snd_nxt += 1
            self._send_fin()
            sent_any = True
            if self.state is ESTABLISHED:
                self.state = FIN_WAIT
            elif self.state is CLOSE_WAIT:
                self.state = LAST_ACK
        if sent_any:
            self._arm_rxt(only_if_unset=True)

    def _retransmit_one(self, seq: int) -> None:
        """Retransmit the single segment starting at ``seq``."""
        self.segments_retransmitted += 1
        self._rtt_seq = None  # Karn: no sample across retransmission
        if self.fin_seq is not None and seq >= self.fin_seq:
            self._send_fin()
            return
        end = min(seq + self.params.mss, self.snd_buf_end)
        length = end - seq
        if length > 0:
            self._send_data_segment(seq, length)
        elif seq == 0:
            self._send_syn()

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def _arm_rxt(self, only_if_unset: bool = False) -> None:
        if only_if_unset and self._rxt_timer is not None:
            return
        self._cancel_rxt()
        timeout = self.rto * (2**self._backoff)
        timeout = min(timeout, self.params.max_rto)
        self._rxt_timer = self.sim.schedule(timeout, self._on_rxt_timeout)

    def _cancel_rxt(self) -> None:
        if self._rxt_timer is not None:
            self._rxt_timer.cancel()
            self._rxt_timer = None

    def _on_rxt_timeout(self) -> None:
        self._rxt_timer = None
        if self.state in (SYN_SENT, SYN_RCVD):
            self._syn_tries += 1
            if self._syn_tries > self.params.max_syn_retries:
                self._enter_closed()
                return
            self._backoff += 1
            self._send_syn()
            return
        if self.snd_una >= self.snd_nxt:
            return  # nothing outstanding
        self._rxt_attempts += 1
        if self._rxt_attempts > self.max_rxt_attempts:
            self._enter_closed()
            return
        self.timeouts += 1
        mss = self.params.mss
        self.ssthresh = max(self.flight_size / 2.0, 2.0 * mss)
        self.cwnd = float(mss)
        self.dupacks = 0
        self.in_recovery = False
        self._sacked = []  # renege-safe: forget SACK state on RTO
        self._rexmit_point = 0
        self._backoff = min(self._backoff + 1, 12)
        self._retransmit_one(self.snd_una)
        self._arm_rxt()

    def _arm_delack(self) -> None:
        if self._delack_timer is None:
            self._delack_timer = self.sim.schedule(
                self.params.delack_delay, self._on_delack
            )

    def _cancel_delack(self) -> None:
        if self._delack_timer is not None:
            self._delack_timer.cancel()
            self._delack_timer = None

    def _on_delack(self) -> None:
        self._delack_timer = None
        if self._ack_pending:
            self._send_ack()

    # ------------------------------------------------------------------
    # Segment reception
    # ------------------------------------------------------------------

    def handle_segment(self, src_vn: int, segment: TcpSegment) -> None:
        """Entry point from the stack's demultiplexer."""
        if self.state is CLOSED:
            return
        flags = segment.flags
        if flags & FLAG_RST:
            self._enter_closed()
            return
        if flags & FLAG_SYN:
            self._handle_syn(segment)
            return
        if flags & FLAG_ACK:
            self._handle_ack(segment)
        if segment.payload_len > 0 or flags & FLAG_FIN:
            self._handle_data(segment)

    def _handle_syn(self, segment: TcpSegment) -> None:
        if self.state is SYN_SENT and segment.flags & FLAG_ACK:
            # SYN+ACK for our SYN.
            self.rcv_nxt = segment.seq + 1
            self.snd_una = max(self.snd_una, segment.ack_seq)
            self.peer_wnd = segment.wnd
            self._cancel_rxt()
            self._backoff = 0
            self._establish()
            self._send_ack()
            self._try_send()
        elif self.state in (LISTEN, SYN_RCVD):
            # Fresh or retransmitted SYN from the peer.
            self.rcv_nxt = segment.seq + 1
            self.peer_wnd = segment.wnd
            if self.state is LISTEN:
                self.state = SYN_RCVD
            self._send_syn()
        elif self.state is ESTABLISHED:
            # Retransmitted SYN after our lost SYN+ACK's ACK: re-ack.
            self._send_ack()

    def _establish(self) -> None:
        self.state = ESTABLISHED
        self.established_at = self.sim.now
        self.snd_una = max(self.snd_una, 1)
        self.snd_nxt = max(self.snd_nxt, 1)
        self.rcv_nxt = max(self.rcv_nxt, 1)
        if self.on_established:
            self.on_established(self)

    def _handle_ack(self, segment: TcpSegment) -> None:
        ack = segment.ack_seq
        self.peer_wnd = segment.wnd
        if self.state is SYN_RCVD and ack >= 1:
            self._cancel_rxt()
            self._backoff = 0
            self._establish()

        if ack > self.snd_nxt:
            return  # acks data we never sent; ignore
        mss = self.params.mss
        if self.params.sack and segment.sack_blocks:
            self._merge_sack(segment.sack_blocks)

        if ack > self.snd_una:
            acked = ack - self.snd_una
            self._account_acked(ack)
            # RTT sample (Karn's algorithm handled via _rtt_seq reset).
            if self._rtt_seq is not None and ack >= self._rtt_seq:
                self._rtt_sample(self.sim.now - self._rtt_time)
                self._rtt_seq = None
            self._backoff = 0
            self._rxt_attempts = 0
            if self.in_recovery:
                if ack >= self.recover:
                    # Full ACK: leave recovery, deflate.
                    self.in_recovery = False
                    self.dupacks = 0
                    self.cwnd = self.ssthresh
                    self.snd_una = ack
                    self._rexmit_point = 0
                else:
                    # Partial ACK: repair the next hole (SACK-guided
                    # when available, NewReno otherwise).
                    self.snd_una = ack
                    self.cwnd = max(self.cwnd - acked + mss, float(mss))
                    if not (self.params.sack and self._retransmit_hole()):
                        self._retransmit_one(ack)
                    self._arm_rxt()
            else:
                self.dupacks = 0
                if self.cwnd < self.ssthresh:
                    self.cwnd += mss
                else:
                    self.cwnd += mss * mss / self.cwnd
                self.snd_una = ack
            self._prune_sacked()
            # FIN acked?
            if self.fin_seq is not None and ack > self.fin_seq:
                self._local_fin_acked = True
                self._maybe_finish_close()
            if self.snd_una < self.snd_nxt:
                self._arm_rxt()
            else:
                self._cancel_rxt()
            self._try_send()
        elif (
            ack == self.snd_una
            and self.snd_una < self.snd_nxt
            and segment.payload_len == 0
            and not segment.flags & FLAG_FIN
        ):
            self.dupacks += 1
            if self.dupacks == self.params.dupack_threshold and not self.in_recovery:
                self.in_recovery = True
                self.recover = self.snd_nxt
                self._rexmit_point = self.snd_una
                self.ssthresh = max(self.flight_size / 2.0, 2.0 * mss)
                self.cwnd = self.ssthresh + 3.0 * mss
                self.fast_retransmits += 1
                if not (self.params.sack and self._retransmit_hole()):
                    self._retransmit_one(self.snd_una)
                self._arm_rxt()
            elif self.in_recovery:
                self.cwnd += mss  # window inflation
                if self.params.sack:
                    # SACK pipe: keep repairing holes while the
                    # window has room for them.
                    pipe = self.snd_nxt - self.snd_una - self._sacked_bytes()
                    if pipe < self._effective_window():
                        self._retransmit_hole()
                self._try_send()
        else:
            self._try_send()

    def _account_acked(self, ack: int) -> None:
        data_end = min(ack, self.snd_buf_end)
        data_start = min(self.snd_una, self.snd_buf_end)
        newly = max(0, data_end - max(1, data_start))
        self.bytes_acked += newly
        if self._msg_ends:
            self._msg_ends = [
                (mark, msg) for mark, msg in self._msg_ends if mark > ack
            ]

    def _rtt_sample(self, rtt: float) -> None:
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            err = rtt - self.srtt
            self.srtt += 0.125 * err
            self.rttvar += 0.25 * (abs(err) - self.rttvar)
        self.rto = max(
            self.params.min_rto,
            min(self.srtt + 4.0 * self.rttvar, self.params.max_rto),
        )

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------

    def _handle_data(self, segment: TcpSegment) -> None:
        if self.state in (SYN_SENT, LISTEN):
            return
        start = segment.seq
        end = start + segment.payload_len
        if segment.flags & FLAG_FIN:
            self._fin_received_seq = end
            end += 1
        if segment.messages:
            for mark, message in segment.messages:
                # A mark at or below rcv_nxt was already delivered; a
                # retransmitted segment must not resurrect it (framing
                # is exactly-once even when the ACK was lost).
                if mark > self.rcv_nxt:
                    self._ooo_msgs.setdefault(mark, message)
        if end <= self.rcv_nxt:
            # Entirely duplicate; re-ack so the sender can make progress.
            self._send_ack()
            return
        if start > self.rcv_nxt:
            # Hole: buffer and emit an immediate duplicate ACK.
            self._insert_ooo(start, end)
            self._send_ack()
            return
        # In-order (possibly overlapping) delivery.
        delivered_to = max(end, self.rcv_nxt)
        delivered_to = self._absorb_ooo(delivered_to)
        filled_hole = bool(self._ooo) or end < delivered_to
        self._deliver_in_order(delivered_to)
        if filled_hole:
            self._send_ack()
        else:
            self._ack_pending += 1
            if self._ack_pending >= 2 or self._fin_received_seq is not None:
                self._send_ack()
            else:
                self._arm_delack()

    def _insert_ooo(self, start: int, end: int) -> None:
        runs = self._ooo + [(start, end)]
        runs.sort()
        merged: List[Tuple[int, int]] = []
        for run in runs:
            if merged and run[0] <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], run[1]))
            else:
                merged.append(run)
        self._ooo = merged

    def _absorb_ooo(self, delivered_to: int) -> int:
        remaining: List[Tuple[int, int]] = []
        for start, end in self._ooo:
            if start <= delivered_to:
                delivered_to = max(delivered_to, end)
            else:
                remaining.append((start, end))
        self._ooo = remaining
        return delivered_to

    def _deliver_in_order(self, new_rcv_nxt: int) -> None:
        old = self.rcv_nxt
        self.rcv_nxt = new_rcv_nxt
        fin_seq = self._fin_received_seq
        data_end = new_rcv_nxt
        if fin_seq is not None and new_rcv_nxt > fin_seq:
            data_end = fin_seq
        nbytes = max(0, data_end - max(1, old))
        if nbytes > 0:
            self.bytes_received += nbytes
            if self.on_receive:
                self.on_receive(self, nbytes)
            if self._ooo_msgs:
                ready = sorted(
                    mark for mark in self._ooo_msgs if mark <= self.rcv_nxt
                )
                for mark in ready:
                    message = self._ooo_msgs.pop(mark)
                    if self.on_message:
                        self.on_message(self, message)
        if fin_seq is not None and self.rcv_nxt > fin_seq and not self._peer_closed:
            self._peer_closed = True
            if self.state is ESTABLISHED:
                self.state = CLOSE_WAIT
            if self.on_close:
                self.on_close(self)
            self._maybe_finish_close()

    def _maybe_finish_close(self) -> None:
        if self._peer_closed and self._local_fin_acked:
            self._enter_closed()

    def _enter_closed(self) -> None:
        if self.state is CLOSED:
            return
        self.state = CLOSED
        self._cancel_rxt()
        self._cancel_delack()
        self.stack._connection_closed(self)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for observability collection: the keys the
        stack (and ``repro.obs``) aggregates across connections."""
        return {
            "connections": 1,
            "bytes_sent": self.bytes_sent,
            "bytes_acked": self.bytes_acked,
            "bytes_received": self.bytes_received,
            "segments_sent": self.segments_sent,
            "segments_retransmitted": self.segments_retransmitted,
            "timeouts": self.timeouts,
            "fast_retransmits": self.fast_retransmits,
        }

    def __repr__(self) -> str:
        return (
            f"<TcpConnection vn{self.stack.vn_id}:{self.local_port} -> "
            f"vn{self.remote_vn}:{self.remote_port} {self.state}>"
        )
