"""repro — a virtual-time reproduction of ModelNet (OSDI 2002).

"Scalability and Accuracy in a Large-Scale Network Emulator",
Vahdat, Yocum, Walsh, Mahadevan, Kostić, Chase, and Becker.

The documented entry point is the :class:`Scenario` facade, which
drives the whole Create → Distill → Assign → Bind → Run pipeline and
returns a :class:`RunReport` of every metric the run produced:

>>> from repro import Scenario
>>> report = (
...     Scenario.from_gml("net.gml")
...     .distill("last-mile")
...     .assign(cores=2)
...     .bind(hosts=4)
...     .netperf(flows=8)
...     .run(until=10.0)
... )

The explicit layers stay public for custom experiments:

>>> from repro.engine import Simulator
>>> from repro.core import ExperimentPipeline, EmulationConfig
>>> from repro.topology import ring_topology

See README.md for the architecture overview, DESIGN.md for the system
inventory, paper-substitution table, and the metric → paper-figure
map, and EXPERIMENTS.md for paper-vs-measured results for every table
and figure.
"""

from repro.api import Scenario
from repro.faults import FaultPlan
from repro.obs import MetricsRegistry, RunReport

__version__ = "1.1.0"

__all__ = [
    "Scenario",
    "FaultPlan",
    "MetricsRegistry",
    "RunReport",
    "engine",
    "topology",
    "routing",
    "hardware",
    "net",
    "core",
    "apps",
    "analysis",
    "obs",
    "tools",
]
