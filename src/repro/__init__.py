"""repro — a virtual-time reproduction of ModelNet (OSDI 2002).

"Scalability and Accuracy in a Large-Scale Network Emulator",
Vahdat, Yocum, Walsh, Mahadevan, Kostić, Chase, and Becker.

The usual entry points:

>>> from repro.engine import Simulator
>>> from repro.core import ExperimentPipeline, EmulationConfig
>>> from repro.topology import ring_topology

See README.md for the architecture overview, DESIGN.md for the system
inventory and paper-substitution table, and EXPERIMENTS.md for
paper-vs-measured results for every table and figure.
"""

__version__ = "1.0.0"

__all__ = [
    "engine",
    "topology",
    "routing",
    "hardware",
    "net",
    "core",
    "apps",
    "analysis",
    "tools",
]
