"""Unit tests for WorkerSupervisor failure typing and recovery.

These drive the supervisor against in-process fakes (no real worker
processes) so each failure mode — crash, hang, remote error, desync,
escalation — is exercised deterministically and fast. The end-to-end
recovery paths over real multiprocess workers live in
``test_scenario_resilience.py``.
"""

import pytest

from repro.resilience import (
    RetryPolicy,
    SupervisionEscalation,
    WorkerCrash,
    WorkerDesync,
    WorkerHang,
    WorkerSupervisor,
)


class FakeConn:
    """Scripted pipe end: yields queued replies, EOFs when empty."""

    def __init__(self, replies=()):
        self.replies = list(replies)
        self.sent = []
        self.closed = False

    def poll(self, timeout=None):
        return bool(self.replies)

    def recv(self):
        if not self.replies:
            raise EOFError("script exhausted")
        item = self.replies.pop(0)
        if isinstance(item, BaseException):
            raise item
        return item

    def send(self, command):
        self.sent.append(command)

    def close(self):
        self.closed = True


class FakeProc:
    def __init__(self, alive=True):
        self._alive = alive
        self.pid = 4242
        self.exitcode = None if alive else -9

    def is_alive(self):
        return self._alive

    def join(self, timeout=None):
        pass

    def terminate(self):
        self._alive = False

    def kill(self):
        self._alive = False


def fast_policy(attempts=2):
    return RetryPolicy(max_attempts=attempts, base_backoff_s=0.0, jitter=0.0)


def make_supervisor(spawn, **kwargs):
    kwargs.setdefault("policy", fast_policy())
    kwargs.setdefault("epoch_timeout_s", 0.2)
    kwargs.setdefault("heartbeat_interval_s", 0.05)
    return WorkerSupervisor(spawn, owned=[[0, 1]], **kwargs)


# ----------------------------------------------------------------------
# Failure classification in _recv
# ----------------------------------------------------------------------

def test_silent_live_worker_is_a_hang_with_missed_heartbeats():
    supervisor = make_supervisor(lambda i: (FakeConn(), FakeProc()))
    handle = supervisor.workers[0]
    handle.conn, handle.proc = FakeConn(), FakeProc(alive=True)
    with pytest.raises(WorkerHang, match="no heartbeats"):
        supervisor._recv(handle)
    assert supervisor.heartbeats_missed > 0


def test_heartbeating_but_unresponsive_worker_is_a_livelock_hang():
    conn = FakeConn([("hb",)] * 100)
    supervisor = make_supervisor(lambda i: (conn, FakeProc()))
    handle = supervisor.workers[0]
    handle.conn, handle.proc = conn, FakeProc(alive=True)
    with pytest.raises(WorkerHang, match="livelock"):
        supervisor._recv(handle)


def test_dead_process_is_a_crash_not_a_hang():
    supervisor = make_supervisor(lambda i: (FakeConn(), FakeProc()))
    handle = supervisor.workers[0]
    handle.conn, handle.proc = FakeConn(), FakeProc(alive=False)
    with pytest.raises(WorkerCrash, match="process died"):
        supervisor._recv(handle)


def test_eof_is_a_crash():
    conn = FakeConn([EOFError("peer gone")])
    supervisor = make_supervisor(lambda i: (conn, FakeProc()))
    handle = supervisor.workers[0]
    handle.conn, handle.proc = conn, FakeProc(alive=True)
    with pytest.raises(WorkerCrash, match="pipe closed"):
        supervisor._recv(handle)


def test_remote_error_reply_carries_the_worker_traceback():
    conn = FakeConn([
        ("error", {"worker": 0, "epoch": 7, "traceback": "Traceback: boom"}),
    ])
    supervisor = make_supervisor(lambda i: (conn, FakeProc()))
    handle = supervisor.workers[0]
    handle.conn, handle.proc = conn, FakeProc(alive=True)
    with pytest.raises(WorkerCrash) as info:
        supervisor._recv(handle)
    assert info.value.epoch == 7
    assert "Traceback: boom" in str(info.value)
    assert "worker traceback" in str(info.value)


def test_heartbeats_are_swallowed_before_the_real_reply():
    conn = FakeConn([("hb",), ("hb",), ("done", {}, [], {})])
    supervisor = make_supervisor(lambda i: (conn, FakeProc()))
    handle = supervisor.workers[0]
    handle.conn, handle.proc = conn, FakeProc(alive=True)
    assert supervisor._recv(handle)[0] == "done"


# ----------------------------------------------------------------------
# Typed failure metadata
# ----------------------------------------------------------------------

def test_failures_carry_worker_domains_and_epoch():
    failure = WorkerCrash(3, [6, 7], 12, detail="gone")
    assert failure.worker == 3
    assert failure.domains == [6, 7]
    assert failure.epoch == 12
    message = str(failure)
    assert "worker 3" in message and "[6, 7]" in message and "epoch 12" in message
    assert WorkerHang.kind == "hung"
    assert WorkerDesync.kind == "desynchronized"


# ----------------------------------------------------------------------
# Recovery: respawn + replay + escalation
# ----------------------------------------------------------------------

def test_recovery_replays_history_and_resends_inflight_command():
    """After a crash the respawned worker must see: ready handshake,
    every completed epoch (digest-identical), then the in-flight
    command again."""
    digests = {0: ("d0", 5), 1: ("d1", 6)}
    respawned = FakeConn([
        ("ready", {0: 0.1, 1: 0.2}),
        ("done", {0: 0.3, 1: 0.4}, [], digests),   # replayed epoch 0
        ("done", {0: 0.5, 1: 0.6}, [], digests),   # re-sent in-flight epoch
    ])
    supervisor = make_supervisor(lambda i: (respawned, FakeProc()))
    handle = supervisor.workers[0]
    handle.conn, handle.proc = FakeConn(), FakeProc(alive=False)
    handle.completed = 1
    handle.last_digests = dict(digests)
    # History entries are (payload, frames): the broadcast window
    # vector plus one pre-pickled mail frame per worker.
    supervisor._history.append(([(0.3, False)], [b"m0"]))
    inflight = ("epoch", [(0.5, False)], b"m1")
    failure = WorkerCrash(0, [0, 1], 1, detail="killed")
    reply = supervisor._handle_failure(handle, failure, resend=inflight)
    assert reply[0] == "done"
    assert supervisor.workers_restarted == 1
    assert supervisor.retries == 1
    # Replay first, then the in-flight command, in order.
    assert respawned.sent == [("epoch", [(0.3, False)], b"m0"), inflight]


def test_replay_digest_mismatch_is_a_desync():
    good = {0: ("d0", 5), 1: ("d1", 6)}
    bad = {0: ("DIFFERENT", 5), 1: ("d1", 6)}
    respawned = FakeConn([
        ("ready", {0: 0.1, 1: 0.2}),
        ("done", {0: 0.3, 1: 0.4}, [], bad),
    ])
    supervisor = make_supervisor(
        lambda i: (respawned, FakeProc()), policy=fast_policy(attempts=1)
    )
    handle = supervisor.workers[0]
    handle.conn, handle.proc = FakeConn(), FakeProc(alive=False)
    handle.completed = 1
    handle.last_digests = good
    supervisor._history.append(([(0.3, False)], [b"m0"]))
    with pytest.raises(SupervisionEscalation) as info:
        supervisor._handle_failure(
            handle, WorkerCrash(0, [0, 1], 1),
            resend=("epoch", [(0.5, False)], None),
        )
    assert isinstance(info.value.last, WorkerDesync)


def test_replay_event_count_mismatch_is_a_desync():
    good = {0: ("d0", 5)}
    same_digest_wrong_count = {0: ("d0", 99)}
    respawned = FakeConn([
        ("ready", {0: 0.1}),
        ("done", {0: 0.3}, [], same_digest_wrong_count),
    ])
    supervisor = make_supervisor(
        lambda i: (respawned, FakeProc()), policy=fast_policy(attempts=1)
    )
    handle = supervisor.workers[0]
    handle.conn, handle.proc = FakeConn(), FakeProc(alive=False)
    handle.completed = 1
    handle.last_digests = good
    supervisor._history.append(([(0.3, False)], [None]))
    with pytest.raises(SupervisionEscalation) as info:
        supervisor._handle_failure(
            handle, WorkerCrash(0, [0, 1], 1),
            resend=("epoch", [(0.5, False)], None),
        )
    assert isinstance(info.value.last, WorkerDesync)


def test_escalation_counts_every_attempt_and_carries_counters():
    """A spawn that always dies exhausts the retry budget; the
    escalation must record the attempts and expose the supervisor's
    counters for the degraded run's report."""
    supervisor = make_supervisor(
        lambda i: (FakeConn(), FakeProc(alive=False)),
        policy=fast_policy(attempts=3),
    )
    handle = supervisor.workers[0]
    handle.conn, handle.proc = FakeConn(), FakeProc(alive=False)
    with pytest.raises(SupervisionEscalation) as info:
        supervisor._handle_failure(
            handle, WorkerCrash(0, [0, 1], 0), resend=None
        )
    escalation = info.value
    assert escalation.attempts == 3
    assert supervisor.retries == 3
    assert escalation.counters["retries"] == 3
    assert escalation.counters["workers_restarted"] == 3
    assert "workers_restarted" in escalation.counters
    assert "heartbeats_missed" in escalation.counters


def test_shutdown_reaps_and_closes_everything():
    conn, proc = FakeConn(), FakeProc(alive=True)
    supervisor = make_supervisor(lambda i: (conn, proc))
    handle = supervisor.workers[0]
    handle.conn, handle.proc = conn, proc
    supervisor.shutdown()
    assert conn.closed
    assert not proc.is_alive()
    assert handle.proc is None and handle.conn is None
