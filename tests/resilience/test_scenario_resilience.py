"""End-to-end resilience tests over real scenarios and workers.

The acceptance properties from the issue, scaled down to CI size:

* SIGKILL of a multiprocess worker mid-run recovers with the composed
  digest byte-identical to the fault-free run;
* an interrupted + resumed run produces the same final digest and
  event count as an uninterrupted one (several seeds);
* budget exhaustion aborts cleanly with a partial report carrying
  ``run.outcome`` and every resilience counter;
* a persistent (nondeterministic) failure escalates and degrades to
  serial partitioned execution with the downgrade recorded;
* ``inject_fault`` survives the spec round trip into multiprocess
  workers, where the sanitizer must detect the divergence.
"""

import pytest

from repro.api import Scenario
from repro.engine.parallel import run_multiprocess
from repro.resilience import (
    RetryPolicy,
    RunAborted,
    SupervisionEscalation,
    load_checkpoint,
)
from repro.topology import dumbbell_topology, ring_topology

RING_UNTIL = 0.02

COUNTERS = (
    "resilience.heartbeats_missed",
    "resilience.workers_restarted",
    "resilience.retries",
    "resilience.checkpoints_written",
    "resilience.downgrades",
)


def _ring_scenario(backend="serial", workers=None, seed=7):
    return (
        Scenario(
            ring_topology(num_routers=8, vns_per_router=2), name="res-ring8"
        )
        .distill("hop-by-hop")
        .assign(4)
        .seed(seed)
        .netperf(flows=8)
        .observe(False)
        .backend(backend, domains=4, workers=workers)
    )


def _dumbbell_scenario(seed=1, cores=1):
    return (
        Scenario.from_topology(dumbbell_topology(3), name="res-dumbbell")
        .distill("hop-by-hop")
        .assign(cores)
        .seed(seed)
        .netperf(flows=4)
        .observe(False)
    )


def _fast_retry(seed=0):
    return RetryPolicy(max_attempts=2, base_backoff_s=0.0, jitter=0.0, seed=seed)


# ----------------------------------------------------------------------
# SIGKILL recovery (the tentpole acceptance property)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("workers", [1, 2])
def test_sigkill_recovery_reproduces_the_clean_digest(workers):
    clean_scenario = _ring_scenario("multiprocess", workers=workers)
    clean_scenario.build()
    clean = run_multiprocess(
        clean_scenario, until=RING_UNTIL, workers=workers, sanitize=True
    )
    assert clean.epochs > 2

    chaos_scenario = _ring_scenario("multiprocess", workers=workers)
    chaos_scenario.build()
    chaos = run_multiprocess(
        chaos_scenario, until=RING_UNTIL, workers=workers, sanitize=True,
        policy=_fast_retry(),
        chaos_kill=(max(1, clean.epochs // 2), 0),
    )
    assert chaos.workers_restarted >= 1
    assert chaos.composed_digest == clean.composed_digest
    assert chaos.events_dispatched == clean.events_dispatched
    assert chaos.outcome == "completed"


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", [1, 2, 3])
def test_interrupted_plus_resumed_equals_uninterrupted(tmp_path, seed):
    until = 0.6
    path = str(tmp_path / f"dumbbell-{seed}.ckpt")

    uninterrupted = _dumbbell_scenario(seed=seed).resilience()
    full_report = uninterrupted.run(until=until)
    full_digest = full_report.metrics["run.digest"]
    full_events = full_report.metrics["run.events"]

    # "Interrupt" deterministically: the event budget aborts the run
    # partway through, after at least one checkpoint was written.
    interrupted = _dumbbell_scenario(seed=seed).resilience(
        checkpoint_every=0.2, checkpoint=path,
        max_events=int(full_events * 0.6),
    )
    with pytest.raises(RunAborted) as info:
        interrupted.run(until=until)
    assert info.value.reason == "max_events"
    assert info.value.report.metrics["resilience.checkpoints_written"] >= 1

    checkpoint = load_checkpoint(path)
    assert 0 < checkpoint.barrier_time < until
    resumed_report = Scenario.from_checkpoint(path).run(until=until)
    assert resumed_report.metrics["run.digest"] == full_digest
    assert resumed_report.metrics["run.events"] == full_events
    assert resumed_report.metrics["run.outcome"] == "completed"
    assert resumed_report.metrics["run.resumed_from_t"] == pytest.approx(
        checkpoint.barrier_time
    )


def test_resume_verifies_and_rejects_a_tampered_checkpoint(tmp_path):
    from repro.resilience import CheckpointDivergence, write_checkpoint

    path = str(tmp_path / "tampered.ckpt")
    scenario = _dumbbell_scenario(seed=1).resilience(
        checkpoint_every=0.2, checkpoint=path, max_events=8000,
    )
    with pytest.raises(RunAborted):
        scenario.run(until=0.6)
    checkpoint = load_checkpoint(path)
    checkpoint.digest = "0" * 64  # corrupt the recorded barrier state
    write_checkpoint(path, checkpoint)
    with pytest.raises(CheckpointDivergence):
        Scenario.from_checkpoint(path).run(until=0.6)


def test_resume_shorter_than_barrier_is_an_error(tmp_path):
    from repro.resilience import CheckpointError

    path = str(tmp_path / "short.ckpt")
    scenario = _dumbbell_scenario(seed=1).resilience(
        checkpoint_every=0.2, checkpoint=path, max_events=8000,
    )
    with pytest.raises(RunAborted):
        scenario.run(until=0.6)
    barrier = load_checkpoint(path).barrier_time
    with pytest.raises(CheckpointError, match="barrier"):
        Scenario.from_checkpoint(path).run(until=barrier / 2)


def test_partitioned_serial_checkpoints_at_epoch_barriers(tmp_path):
    path = str(tmp_path / "ring.ckpt")
    scenario = _ring_scenario().resilience(
        checkpoint_every=RING_UNTIL / 4, checkpoint=path,
    )
    report = scenario.run(until=RING_UNTIL)
    assert report.metrics["resilience.checkpoints_written"] >= 2
    checkpoint = load_checkpoint(path)
    assert checkpoint.epoch is not None and checkpoint.epoch > 0
    assert checkpoint.domain_digests
    resumed = Scenario.from_checkpoint(path).run(until=RING_UNTIL)
    assert resumed.metrics["run.digest"] == report.metrics["run.digest"]
    assert resumed.metrics["run.events"] == report.metrics["run.events"]


# ----------------------------------------------------------------------
# Budget guards
# ----------------------------------------------------------------------

def test_budget_abort_flushes_partial_report_with_counters():
    scenario = _dumbbell_scenario(seed=1).resilience(max_events=4000)
    with pytest.raises(RunAborted) as info:
        scenario.run(until=1.0)
    report = info.value.report
    assert report is not None
    assert report.metrics["run.outcome"] == "aborted{reason=max_events}"
    assert report.metrics["run.events"] >= 4000
    for counter in COUNTERS:
        assert counter in report.metrics, counter


def test_wall_budget_aborts_partitioned_serial():
    scenario = _ring_scenario().resilience(max_wall=0.0)
    with pytest.raises(RunAborted) as info:
        scenario.run(until=RING_UNTIL)
    assert info.value.reason == "max_wall"
    assert info.value.report.metrics["run.outcome"] == "aborted{reason=max_wall}"


def test_multiprocess_budget_abort_reaps_workers():
    import multiprocessing

    before = len(multiprocessing.active_children())
    scenario = _ring_scenario("multiprocess", workers=2).resilience(
        max_events=200,
    )
    with pytest.raises(RunAborted) as info:
        scenario.run(until=RING_UNTIL)
    report = info.value.report
    assert report.metrics["run.outcome"] == "aborted{reason=max_events}"
    for counter in COUNTERS:
        assert counter in report.metrics, counter
    assert len(multiprocessing.active_children()) <= before


# ----------------------------------------------------------------------
# Degradation
# ----------------------------------------------------------------------

def _desyncing_chaos_scenario(workers=2, retries=1):
    """A run the supervisor cannot recover: the injected fault draws
    from an unseeded RNG, so every post-crash replay diverges
    (WorkerDesync) until retries exhaust."""
    return (
        _ring_scenario("multiprocess", workers=workers)
        .inject_fault(RING_UNTIL)
        .resilience(
            # Mid-run: coalesced windows leave ~15 epochs for this run
            # (hundreds before per-pair lookahead), so the kill epoch
            # must sit well inside that budget or it never fires.
            chaos_kill=(5, 0), retries=retries,
        )
    )


def test_unrecoverable_worker_degrades_to_serial_with_counters():
    scenario = _desyncing_chaos_scenario()
    scenario._resilience.backoff_base_s = 0.0
    report = scenario.run(until=RING_UNTIL)
    outcome = report.metrics["run.outcome"]
    assert outcome.startswith("degraded{reason=worker 0 unrecoverable")
    assert report.metrics["resilience.downgrades"] == 1
    assert report.metrics["resilience.retries"] >= 1
    assert report.metrics["run.digest"]


def test_no_degrade_escalates_instead():
    scenario = _desyncing_chaos_scenario()
    scenario._resilience.degrade = False
    scenario._resilience.backoff_base_s = 0.0
    with pytest.raises(SupervisionEscalation):
        scenario.run(until=RING_UNTIL)


# ----------------------------------------------------------------------
# inject_fault: declarative, spec-portable (the bugfix regression)
# ----------------------------------------------------------------------

def test_inject_fault_survives_the_spec_round_trip():
    scenario = _ring_scenario().inject_fault(0.01)
    spec = scenario.to_spec()
    assert spec.fault_seconds == pytest.approx(0.01)
    rebuilt = Scenario.from_spec(spec)
    assert rebuilt._fault_seconds == pytest.approx(0.01)
    assert rebuilt.to_spec().fault_seconds == pytest.approx(0.01)


def test_injected_fault_is_detected_inside_multiprocess_workers():
    """The regression: a fault installed via a bare closure was
    rejected by to_spec and silently never ran in the workers, so
    ``sanitize --inject-fault --backend multiprocess`` reported
    deterministic. The declarative fault must diverge."""
    from repro.check import sanitize_scenario_multiprocess

    result = sanitize_scenario_multiprocess(
        lambda: _ring_scenario("multiprocess").inject_fault(RING_UNTIL),
        until=RING_UNTIL,
        seed=3,
        runs=2,
        worker_counts=(2,),
    )
    assert not result.identical


def test_injected_fault_is_detected_serially():
    from repro.check import sanitize_scenario

    result = sanitize_scenario(
        lambda: _dumbbell_scenario().inject_fault(0.2),
        until=0.2,
        seed=3,
        runs=2,
    )
    assert not result.identical
