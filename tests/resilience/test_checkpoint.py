"""Tests for checkpoint serialization, cadence, and resume verification."""

import pickle

import pytest

from repro.resilience import (
    Checkpoint,
    CheckpointDivergence,
    CheckpointError,
    CheckpointWriter,
    ResumeVerifier,
    load_checkpoint,
    write_checkpoint,
)


def make_checkpoint(**overrides) -> Checkpoint:
    fields = dict(
        spec={"topology": "dumbbell"},
        until=1.0,
        seed=2,
        barrier_time=0.5,
        epoch=42,
        events=1234,
        digest="a" * 64,
        domain_digests={0: "b" * 64, 1: "c" * 64},
        domain_counts={0: 600, 1: 634},
        rng_states={"faults": (3, (1, 2, 3), None)},
        metrics={"run.events": 1234},
    )
    fields.update(overrides)
    return Checkpoint(**fields)


# ----------------------------------------------------------------------
# Write / load round trip
# ----------------------------------------------------------------------

def test_round_trip(tmp_path):
    path = str(tmp_path / "run.ckpt")
    original = make_checkpoint()
    write_checkpoint(path, original)
    loaded = load_checkpoint(path)
    assert loaded == original


def test_write_is_atomic_no_tmp_left_behind(tmp_path):
    path = str(tmp_path / "run.ckpt")
    write_checkpoint(path, make_checkpoint())
    write_checkpoint(path, make_checkpoint(index=1))
    assert [p.name for p in tmp_path.iterdir()] == ["run.ckpt"]
    assert load_checkpoint(path).index == 1


def test_load_missing_file_is_checkpoint_error(tmp_path):
    with pytest.raises(CheckpointError):
        load_checkpoint(str(tmp_path / "nope.ckpt"))


def test_load_garbage_is_checkpoint_error(tmp_path):
    path = tmp_path / "garbage.ckpt"
    path.write_bytes(b"not a pickle")
    with pytest.raises(CheckpointError):
        load_checkpoint(str(path))


def test_load_wrong_type_is_checkpoint_error(tmp_path):
    path = tmp_path / "wrong.ckpt"
    path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
    with pytest.raises(CheckpointError):
        load_checkpoint(str(path))


def test_load_wrong_version_is_checkpoint_error(tmp_path):
    path = str(tmp_path / "old.ckpt")
    write_checkpoint(path, make_checkpoint(version=99))
    with pytest.raises(CheckpointError, match="version 99"):
        load_checkpoint(path)


# ----------------------------------------------------------------------
# CheckpointWriter cadence
# ----------------------------------------------------------------------

def test_writer_cadence(tmp_path):
    path = str(tmp_path / "run.ckpt")
    writer = CheckpointWriter(path, 0.25, spec=None, until=1.0, seed=1)
    assert not writer.due(0.1)
    assert writer.due(0.25)
    writer.write(0.25, events=10, digest="d" * 64)
    assert writer.written == 1
    assert not writer.due(0.49)
    assert writer.due(0.5)


def test_writer_skips_past_missed_marks(tmp_path):
    path = str(tmp_path / "run.ckpt")
    writer = CheckpointWriter(path, 0.25, spec=None, until=1.0, seed=1)
    # A long epoch jumped the clock over three marks at once: one
    # checkpoint is written and the next mark lands beyond the barrier.
    writer.write(0.8, events=10, digest="d" * 64)
    assert not writer.due(0.99)
    assert writer.due(1.0)


def test_writer_rejects_nonpositive_cadence(tmp_path):
    with pytest.raises(ValueError):
        CheckpointWriter(str(tmp_path / "x"), 0.0, None, 1.0, 1)


def test_writer_records_barrier_fields(tmp_path):
    path = str(tmp_path / "run.ckpt")
    writer = CheckpointWriter(path, 0.5, spec="SPEC", until=2.0, seed=9)
    writer.write(
        0.5, events=77, digest="e" * 64, epoch=13,
        domain_digests={0: "f" * 64}, domain_counts={0: 77},
        metrics={"run.events": 77},
    )
    loaded = load_checkpoint(path)
    assert loaded.spec == "SPEC"
    assert loaded.until == 2.0
    assert loaded.seed == 9
    assert loaded.barrier_time == 0.5
    assert loaded.epoch == 13
    assert loaded.events == 77
    assert loaded.domain_counts == {0: 77}


# ----------------------------------------------------------------------
# ResumeVerifier
# ----------------------------------------------------------------------

def test_verifier_passes_on_exact_match():
    ckpt = make_checkpoint()
    verifier = ResumeVerifier(ckpt)
    assert not verifier.verified
    verifier.verify(
        digest=ckpt.digest,
        events=ckpt.events,
        domain_digests=dict(ckpt.domain_digests),
        rng_states=dict(ckpt.rng_states),
    )
    assert verifier.verified


def test_verifier_rejects_digest_mismatch():
    verifier = ResumeVerifier(make_checkpoint())
    with pytest.raises(CheckpointDivergence, match="composed digest"):
        verifier.verify(digest="0" * 64)
    assert not verifier.verified


def test_verifier_rejects_event_count_mismatch():
    verifier = ResumeVerifier(make_checkpoint())
    with pytest.raises(CheckpointDivergence, match="event count"):
        verifier.verify(events=999)


def test_verifier_rejects_domain_digest_mismatch():
    ckpt = make_checkpoint()
    verifier = ResumeVerifier(ckpt)
    wrong = dict(ckpt.domain_digests)
    wrong[1] = "0" * 64
    with pytest.raises(CheckpointDivergence, match=r"\[1\]"):
        verifier.verify(domain_digests=wrong)


def test_verifier_rejects_rng_state_mismatch():
    ckpt = make_checkpoint()
    verifier = ResumeVerifier(ckpt)
    with pytest.raises(CheckpointDivergence, match="RNG stream"):
        verifier.verify(rng_states={"faults": (9, (9,), None)})


def test_verifier_collects_all_mismatches():
    verifier = ResumeVerifier(make_checkpoint())
    with pytest.raises(CheckpointDivergence) as info:
        verifier.verify(digest="0" * 64, events=1)
    assert len(info.value.mismatches) == 2
