"""Tests for retry policy and budget guards (repro.resilience.policy)."""

import time

import pytest

from repro.resilience import (
    BudgetExceeded,
    BudgetGuard,
    ResilienceConfig,
    RetryPolicy,
    RunAborted,
)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------

def test_backoff_is_seeded_and_reproducible():
    a = [RetryPolicy(seed=5).backoff_s(i) for i in (1, 2, 3)]
    b = [RetryPolicy(seed=5).backoff_s(i) for i in (1, 2, 3)]
    assert a == b
    c = [RetryPolicy(seed=6).backoff_s(i) for i in (1, 2, 3)]
    assert a != c


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(
        base_backoff_s=0.1, max_backoff_s=0.5, jitter=0.0, seed=0
    )
    assert policy.backoff_s(1) == pytest.approx(0.1)
    assert policy.backoff_s(2) == pytest.approx(0.2)
    assert policy.backoff_s(3) == pytest.approx(0.4)
    assert policy.backoff_s(4) == pytest.approx(0.5)  # capped
    assert policy.backoff_s(10) == pytest.approx(0.5)


def test_jitter_stays_within_band():
    policy = RetryPolicy(
        base_backoff_s=0.1, max_backoff_s=10.0, jitter=0.5, seed=1
    )
    for _ in range(50):
        delay = policy.backoff_s(1)
        assert 0.1 <= delay <= 0.15


def test_max_attempts_must_be_positive():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


def test_sleep_returns_the_delay():
    policy = RetryPolicy(base_backoff_s=0.0, jitter=0.0)
    assert policy.sleep(1) == 0.0


# ----------------------------------------------------------------------
# BudgetGuard
# ----------------------------------------------------------------------

def test_inactive_guard_never_raises():
    guard = BudgetGuard()
    assert not guard.active
    guard.start()
    guard.check(events=10**12)


def test_event_budget_raises_with_reason_and_observed():
    guard = BudgetGuard(max_events=100).start()
    guard.check(events=99)
    with pytest.raises(BudgetExceeded) as info:
        guard.check(events=100)
    assert info.value.reason == "max_events"
    assert info.value.limit == 100
    assert info.value.observed == 100


def test_wall_budget_raises_after_deadline():
    guard = BudgetGuard(max_wall_s=0.01).start()
    time.sleep(0.02)
    with pytest.raises(BudgetExceeded) as info:
        guard.check()
    assert info.value.reason == "max_wall"


def test_rss_budget_sees_this_process():
    guard = BudgetGuard(max_rss_bytes=1).start()
    assert guard.rss_bytes() > 1024  # any real process is bigger than 1 KB
    with pytest.raises(BudgetExceeded) as info:
        guard.check()
    assert info.value.reason == "max_rss"


def test_rss_of_dead_pid_is_zero():
    from repro.resilience.policy import _read_rss_bytes

    # PIDs wrap at /proc/sys/kernel/pid_max; 2**22 is past the default.
    assert _read_rss_bytes(2**22 + 1) == 0


# ----------------------------------------------------------------------
# ResilienceConfig
# ----------------------------------------------------------------------

def test_config_budget_converts_mb_to_bytes():
    config = ResilienceConfig(max_rss_mb=2.0, max_events=7)
    guard = config.budget()
    assert guard.max_rss_bytes == 2 * 1024 * 1024
    assert guard.max_events == 7
    assert guard.max_wall_s is None


def test_config_retry_policy_carries_attempts_and_seed():
    config = ResilienceConfig(max_attempts=5, backoff_base_s=0.01)
    policy = config.retry_policy(seed=3)
    assert policy.max_attempts == 5
    assert policy.base_backoff_s == 0.01
    assert policy.backoff_s(1) == RetryPolicy(
        base_backoff_s=0.01, seed=3
    ).backoff_s(1)


def test_run_aborted_carries_reason_and_report():
    error = RunAborted("max_wall", report={"partial": True}, detail="5s > 2s")
    assert error.reason == "max_wall"
    assert error.report == {"partial": True}
    assert "max_wall" in str(error) and "5s > 2s" in str(error)


def test_call_returns_first_success_without_sleeping():
    policy = RetryPolicy(max_attempts=3, base_backoff_s=10.0)
    start = time.perf_counter()
    assert policy.call(lambda: "done") == "done"
    assert time.perf_counter() - start < 1.0


def test_call_retries_until_success_and_reports_attempts():
    policy = RetryPolicy(max_attempts=3, base_backoff_s=0.0, jitter=0.0)
    attempts = []
    state = {"n": 0}

    def flaky():
        state["n"] += 1
        if state["n"] < 3:
            raise RuntimeError(f"boom {state['n']}")
        return state["n"]

    result = policy.call(
        flaky, on_retry=lambda attempt, exc: attempts.append((attempt, str(exc)))
    )
    assert result == 3
    assert attempts == [(1, "boom 1"), (2, "boom 2")]


def test_call_raises_after_exhausting_attempts():
    policy = RetryPolicy(max_attempts=2, base_backoff_s=0.0, jitter=0.0)
    with pytest.raises(RuntimeError, match="persistent"):
        policy.call(lambda: (_ for _ in ()).throw(RuntimeError("persistent")))


def test_call_only_retries_listed_exception_types():
    policy = RetryPolicy(max_attempts=3, base_backoff_s=0.0, jitter=0.0)
    calls = {"n": 0}

    def raises_key_error():
        calls["n"] += 1
        raise KeyError("not retryable here")

    with pytest.raises(KeyError):
        policy.call(raises_key_error, retryable=(ValueError,))
    assert calls["n"] == 1  # non-retryable exceptions propagate immediately
