"""Tests for CDFs and summaries."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import Cdf, percentile, summarize


def test_percentile_basics():
    values = list(range(1, 101))
    assert percentile(values, 0.0) == 1
    assert percentile(values, 0.5) == 51
    assert percentile(values, 1.0) == 100


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1], 1.5)


def test_summary_fields():
    summary = summarize([4.0, 1.0, 3.0, 2.0])
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.minimum == 1.0
    assert summary.maximum == 4.0
    assert "n=4" in str(summary)


def test_cdf_fraction_below():
    cdf = Cdf([1, 2, 3, 4])
    assert cdf.fraction_below(0) == 0.0
    assert cdf.fraction_below(2) == 0.5
    assert cdf.fraction_below(10) == 1.0


def test_cdf_quantile_and_points():
    cdf = Cdf(range(100))
    assert cdf.quantile(0.9) == 90
    points = cdf.points(steps=4)
    assert points[0][0] == 0
    assert points[-1] == (99, 1.0)


def test_cdf_empty_rejected():
    with pytest.raises(ValueError):
        Cdf([])


def test_cdf_table_renders():
    table = Cdf([1.0, 2.0, 3.0]).table(steps=2, label="speed")
    assert "speed" in table
    assert "100%" in table


@given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
def test_property_cdf_monotone(values):
    cdf = Cdf(values)
    points = cdf.points(steps=10)
    xs = [x for x, _ in points]
    fractions = [f for _, f in points]
    assert xs == sorted(xs)
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)
