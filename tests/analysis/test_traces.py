"""Tests for the synthetic web trace generator."""

import random

import pytest

from repro.analysis import synthesize_web_trace


def test_trace_rate_within_band():
    trace = synthesize_web_trace(random.Random(1))
    assert trace.duration_s == 150.0
    assert 55 <= trace.mean_rate() <= 105


def test_trace_sizes_plausible():
    trace = synthesize_web_trace(random.Random(2))
    sizes = [size for _t, size in trace.requests]
    assert all(200 <= size <= 1_000_000 for size in sizes)
    sizes.sort()
    median = sizes[len(sizes) // 2]
    assert 4_000 <= median <= 16_000  # around the 8 KB target


def test_trace_times_sorted_within_duration():
    trace = synthesize_web_trace(random.Random(3), duration_s=30.0)
    times = [t for t, _s in trace.requests]
    assert times == sorted(times)
    assert times[-1] < 30.0


def test_trace_deterministic():
    a = synthesize_web_trace(random.Random(7))
    b = synthesize_web_trace(random.Random(7))
    assert a.requests == b.requests


def test_slice_for_client_partitions():
    trace = synthesize_web_trace(random.Random(4), duration_s=20.0)
    slices = [trace.slice_for_client(c, 4) for c in range(4)]
    assert sum(len(s) for s in slices) == trace.count


def test_validation():
    with pytest.raises(ValueError):
        synthesize_web_trace(random.Random(1), duration_s=0)
    with pytest.raises(ValueError):
        synthesize_web_trace(random.Random(1), rate_low=0)
