"""MetricsRegistry / NullRegistry semantics."""

import pytest

from repro.obs import MetricsRegistry, NullRegistry, NULL_REGISTRY
from repro.obs.metrics import Histogram


def test_counter_identity_and_increment():
    obs = MetricsRegistry()
    c = obs.counter("pipe.drops_overflow")
    c.inc()
    c.inc(4)
    assert obs.counter("pipe.drops_overflow") is c
    assert c.value == 5


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        MetricsRegistry().counter("x").inc(-1)


def test_labels_make_distinct_metrics():
    obs = MetricsRegistry()
    a = obs.counter("sched.wakeups", core=0)
    b = obs.counter("sched.wakeups", core=1)
    assert a is not b
    a.inc()
    assert b.value == 0
    # Label order does not matter for identity.
    assert obs.counter("m", a=1, b=2) is obs.counter("m", b=2, a=1)


def test_kind_collision_rejected():
    obs = MetricsRegistry()
    obs.counter("x")
    with pytest.raises(ValueError, match="already registered"):
        obs.gauge("x")


def test_gauge_set_and_add():
    g = MetricsRegistry().gauge("core.utilization")
    g.set(0.5)
    g.add(0.25)
    assert g.value == pytest.approx(0.75)


def test_histogram_summary_statistics():
    h = MetricsRegistry().histogram("err")
    for v in [1.0, 2.0, 3.0, 4.0, 100.0]:
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(110.0)
    assert snap["min"] == 1.0
    assert snap["max"] == 100.0
    assert snap["mean"] == pytest.approx(22.0)
    assert h.percentile(0) == 1.0
    assert h.percentile(100) == 100.0


def test_histogram_reservoir_decimation_keeps_exact_aggregates():
    h = Histogram("x", max_samples=64)
    for i in range(10_000):
        h.observe(float(i))
    assert h.count == 10_000
    assert h.total == pytest.approx(sum(range(10_000)))
    assert h.min == 0.0 and h.max == 9999.0
    assert len(h._samples) <= 64
    # Percentiles remain representative of the whole stream.
    assert 3500 < h.percentile(50) < 6500


def test_empty_histogram_snapshot():
    h = MetricsRegistry().histogram("empty")
    assert h.snapshot()["count"] == 0
    assert h.percentile(99) == 0.0


def test_timed_records_duration():
    obs = MetricsRegistry()
    with obs.timed("phase.x_s"):
        pass
    snap = obs.histogram("phase.x_s").snapshot()
    assert snap["count"] == 1
    assert snap["max"] >= 0.0


def test_snapshot_renders_labels_deterministically():
    obs = MetricsRegistry()
    obs.counter("c", core=1).inc(2)
    obs.gauge("g").set(1.5)
    obs.histogram("h").observe(3.0)
    flat = obs.snapshot()
    assert flat["c{core=1}"] == 2
    assert flat["g"] == 1.5
    assert flat["h"]["count"] == 1
    assert list(flat) == sorted(flat)


def test_null_registry_is_inert():
    obs = NullRegistry()
    assert not obs.enabled
    obs.counter("x").inc()
    obs.gauge("y").set(3)
    obs.histogram("z").observe(1.0)
    with obs.timed("t"):
        pass
    assert obs.snapshot() == {}
    assert obs.get("x") is None
    assert len(NULL_REGISTRY.snapshot()) == 0
