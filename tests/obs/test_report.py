"""collect_metrics over a live emulation + RunReport serialization."""

import pytest

from repro.apps.netperf import TcpStream
from repro.core import DistillationMode, EmulationConfig, ExperimentPipeline
from repro.core.tracelog import TraceLog
from repro.engine import Simulator
from repro.obs import MetricsRegistry, RunReport, build_report, collect_metrics
from repro.topology import dumbbell_topology


def _run_emulation(registry=None, until=2.0):
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim, seed=1)
        .create(dumbbell_topology(clients_per_side=3))
        .distill(DistillationMode.HOP_BY_HOP)
        .assign(2)
        .bind(2)
        .run(EmulationConfig(), registry=registry)
    )
    streams = [TcpStream(emulation, 0, 3), TcpStream(emulation, 1, 4)]
    sim.run(until=until)
    return emulation, streams


def test_collect_consolidates_every_subsystem():
    emulation, _ = _run_emulation()
    registry = MetricsRegistry()
    collect_metrics(emulation, registry)
    flat = registry.snapshot()
    # Scheduler / core series per core.
    for core in (0, 1):
        assert flat[f"sched.wakeups{{core={core}}}"] > 0
        assert f"sched.heap_depth{{core={core}}}" in flat
        assert 0.0 <= flat[f"core.utilization{{core={core}}}"] <= 1.0
    # Pipe taxonomy.
    assert flat["pipe.arrivals"] > 0
    for key in ("pipe.drops_overflow", "pipe.drops_random", "pipe.drops_down",
                "pipe.peak_backlog", "pipe.bytes_through"):
        assert key in flat
    # Accuracy & drops.
    assert flat["accuracy.packets_delivered"] > 0
    assert flat["accuracy.packets_entered"] >= flat["accuracy.packets_delivered"]
    assert "accuracy.mean_error_s" in flat
    assert "accuracy.physical_drops_uplink" in flat
    # TCP counters aggregated across stacks (live + closed).
    assert flat["tcp.segments_sent"] > 0
    assert "tcp.segments_retransmitted" in flat
    # Edge + sim.
    assert flat["edge.uplink_bytes"] > 0
    assert flat["sim.virtual_time_s"] == pytest.approx(2.0)


def test_collect_is_idempotent():
    emulation, _ = _run_emulation()
    registry = MetricsRegistry()
    collect_metrics(emulation, registry)
    first = registry.snapshot()
    collect_metrics(emulation, registry)
    assert registry.snapshot() == first


def test_live_registry_arms_timing_hooks():
    registry = MetricsRegistry()
    emulation, _ = _run_emulation(registry=registry)
    collect_metrics(emulation, registry)
    flat = registry.snapshot()
    assert flat["pipe.enqueue_s"]["count"] > 0
    assert flat["sched.collect_s{core=0}"]["count"] > 0
    assert flat["route.lookup_s"]["count"] > 0


def test_null_registry_leaves_hot_paths_unarmed():
    emulation, _ = _run_emulation(registry=None)
    assert all(pipe._timer is None for pipe in emulation.pipes.values())
    assert all(
        core.scheduler.collect_timer is None for core in emulation.cores
    )
    # A report is still complete via pull collection.
    report = emulation.run_report(name="unobserved")
    assert report.metric("pipe.arrivals") > 0
    assert report.metric("accuracy.packets_delivered") > 0


def test_run_report_json_round_trip(tmp_path):
    emulation, _ = _run_emulation()
    report = build_report(emulation, name="round-trip", wall_time_s=1.25)
    clone = RunReport.from_json(report.to_json())
    assert clone.to_dict() == report.to_dict()
    path = tmp_path / "report.json"
    report.save(str(path))
    loaded = RunReport.load(str(path))
    assert loaded.to_dict() == report.to_dict()
    assert loaded.name == "round-trip"
    assert loaded.wall_time_s == 1.25
    assert loaded.topology["pipes"] == len(emulation.pipes)
    assert loaded.config["num_cores"] == 2


def test_run_report_csv_flattens_histograms():
    emulation, _ = _run_emulation(registry=MetricsRegistry())
    report = build_report(emulation, name="csv")
    text = report.to_csv()
    lines = text.splitlines()
    assert lines[0] == "metric,value"
    assert any(line.startswith("pipe.arrivals,") for line in lines)
    assert any(line.startswith("pipe.enqueue_s.p99,") for line in lines)


def test_metric_sum_aggregates_labeled_series():
    emulation, _ = _run_emulation()
    report = build_report(emulation)
    total = report.metric_sum("sched.wakeups")
    per_core = [
        report.metric(f"sched.wakeups{{core={c}}}") for c in (0, 1)
    ]
    assert total == pytest.approx(sum(per_core))
    assert total > 0


def test_tracelog_export():
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim, seed=1)
        .create(dumbbell_topology(clients_per_side=2))
        .distill(DistillationMode.HOP_BY_HOP)
        .assign(1)
        .bind(1)
        .run(EmulationConfig())
    )
    log = TraceLog()
    log.attach(emulation)
    TcpStream(emulation, 0, 2)
    sim.run(until=1.0)
    registry = MetricsRegistry()
    log.export(registry)
    flat = registry.snapshot()
    assert flat["trace.emitted"] > 0
    assert flat["trace.error_s"]["count"] > 0


def test_reports_from_same_seed_are_identical_manifests():
    """created_at stays None in memory, so two same-seed runs produce
    byte-identical JSON — the determinism sanitizer's contract."""
    emulation_a, _ = _run_emulation()
    emulation_b, _ = _run_emulation()
    report_a = build_report(emulation_a, name="twin")
    report_b = build_report(emulation_b, name="twin")
    assert report_a.created_at is None
    # Wall-clock phase timings differ per run; everything else must not.
    dict_a, dict_b = report_a.to_dict(), report_b.to_dict()
    for d in (dict_a, dict_b):
        d["wall_time_s"] = 0.0
        d["metrics"] = {
            k: v for k, v in d["metrics"].items() if not k.startswith("phase.")
        }
    assert dict_a == dict_b


def test_save_stamps_created_at_once(tmp_path):
    emulation, _ = _run_emulation()
    report = build_report(emulation, name="stamped")
    assert report.created_at is None
    path = tmp_path / "r.json"
    report.save(str(path))
    first_stamp = report.created_at
    assert first_stamp is not None and first_stamp > 0
    report.save(str(path))  # second save keeps the original stamp
    assert report.created_at == first_stamp
    assert RunReport.load(str(path)).created_at == first_stamp


def test_explicit_created_at_round_trips():
    emulation, _ = _run_emulation()
    report = build_report(emulation, created_at=123.5)
    assert report.created_at == 123.5
    assert RunReport.from_json(report.to_json()).created_at == 123.5


def test_labels_survive_json_round_trip():
    emulation, _ = _run_emulation()
    report = build_report(emulation, name="labeled", wall_time_s=0.5)
    report.labels = {"suite": "smoke", "run_id": "seed=1-abc", "seed": 1}
    clone = RunReport.from_json(report.to_json())
    assert clone.labels == report.labels
    # Pre-labels reports (older files) load with empty labels.
    legacy = dict(report.to_dict())
    del legacy["labels"]
    assert RunReport.from_dict(legacy).labels == {}
