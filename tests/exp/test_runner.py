"""Sweep runner: resilience, resume, and byte-identical aggregation."""

import json
import os

import pytest

from repro.api import Scenario
from repro.exp import (
    Experiment,
    aggregate_suite,
    load_manifest,
    report_path,
    run_dir,
    run_sweep,
)
from repro.exp import runner as runner_mod
from repro.topology.generators import star_topology


def _tiny_experiment(name="unit"):
    base = Scenario.from_topology(star_topology(6), name=name).workload(
        "netperf", flows=2
    )
    return Experiment(
        name=name,
        base=base,
        until=0.2,
        axes={"seed": [1, 2], "flows": [2, 3]},
        columns={
            "goodput_bps": "traffic.netperf.goodput_bps",
            "events": "sim.events_dispatched",
        },
    )


def _read_report(out_dir, suite, run_id):
    with open(report_path(out_dir, suite, run_id)) as handle:
        return json.load(handle)


def test_run_sweep_writes_labeled_reports(tmp_path):
    exp = _tiny_experiment()
    result = run_sweep(exp, out_dir=str(tmp_path))
    assert result.complete
    assert result.counts() == {"ok": 4}
    for runspec in exp.matrix():
        raw = _read_report(str(tmp_path), exp.name, runspec.run_id)
        assert raw["labels"]["suite"] == exp.name
        assert raw["labels"]["run_id"] == runspec.run_id
        for axis, value in runspec.point:
            assert raw["labels"][axis] == value
        assert raw["metrics"]["sim.events_dispatched"] > 0


def test_manifest_records_expansion(tmp_path):
    exp = _tiny_experiment()
    run_sweep(exp, out_dir=str(tmp_path), limit=0)
    manifest = load_manifest(str(tmp_path), exp.name)
    assert manifest["format"] == "repro-exp/1"
    assert manifest["axes"] == ["seed", "flows"]
    assert manifest["run_ids"] == [r.run_id for r in exp.matrix()]
    with pytest.raises(ValueError, match="no sweep manifest"):
        load_manifest(str(tmp_path), "never-ran")


def test_limit_leaves_remaining_runs_pending(tmp_path):
    exp = _tiny_experiment()
    result = run_sweep(exp, out_dir=str(tmp_path), limit=1)
    assert result.counts() == {"ok": 1, "pending": 3}
    assert not result.complete


def test_resume_skips_completed_runs(tmp_path):
    exp = _tiny_experiment()
    run_sweep(exp, out_dir=str(tmp_path), limit=2)
    first = {
        r.run_id: _read_report(str(tmp_path), exp.name, r.run_id)
        for r in exp.matrix()[:2]
    }
    result = run_sweep(exp, out_dir=str(tmp_path), resume=True)
    assert result.complete
    assert result.counts() == {"ok": 2, "skipped": 2}
    # Skipped runs were not rewritten with different content.
    for run_id, raw in first.items():
        assert _read_report(str(tmp_path), exp.name, run_id) == raw


def test_resume_distrusts_foreign_or_torn_reports(tmp_path):
    exp = _tiny_experiment()
    runs = exp.matrix()
    torn = report_path(str(tmp_path), exp.name, runs[0].run_id)
    foreign = report_path(str(tmp_path), exp.name, runs[1].run_id)
    os.makedirs(os.path.dirname(torn))
    os.makedirs(os.path.dirname(foreign))
    with open(torn, "w") as handle:
        handle.write('{"truncated')
    with open(foreign, "w") as handle:
        json.dump({"labels": {"run_id": "someone-else"}}, handle)
    result = run_sweep(exp, out_dir=str(tmp_path), resume=True)
    assert result.counts() == {"ok": 4}


def test_interrupted_then_resumed_aggregates_byte_identically(tmp_path):
    exp = _tiny_experiment()
    full_dir = str(tmp_path / "full")
    cut_dir = str(tmp_path / "cut")
    assert run_sweep(exp, out_dir=full_dir).complete
    run_sweep(exp, out_dir=cut_dir, limit=2)
    assert run_sweep(exp, out_dir=cut_dir, resume=True).complete
    full = aggregate_suite(exp, out_dir=full_dir)
    cut = aggregate_suite(exp, out_dir=cut_dir)
    assert full.to_csv() == cut.to_csv()
    assert full.to_json() == cut.to_json()
    assert full.complete


def test_failed_run_is_retried_then_recorded(tmp_path, monkeypatch):
    exp = _tiny_experiment()
    real = runner_mod.execute_run
    calls = {"n": 0}

    def flaky(runspec, **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient worker death")
        return real(runspec, **kwargs)

    monkeypatch.setattr(runner_mod, "execute_run", flaky)
    result = run_sweep(exp, out_dir=str(tmp_path), limit=1, retries=2)
    (outcome,) = [o for o in result.outcomes if o.status == "ok"]
    assert outcome.retries == 1


def test_exhausted_retries_record_error_not_crash(tmp_path, monkeypatch):
    exp = _tiny_experiment()

    def always_fails(runspec, **kwargs):
        raise RuntimeError("persistent failure")

    monkeypatch.setattr(runner_mod, "execute_run", always_fails)
    result = run_sweep(exp, out_dir=str(tmp_path), limit=1, retries=2)
    errored = [o for o in result.outcomes if o.status == "error"]
    assert len(errored) == 1
    assert "persistent failure" in errored[0].detail
    assert result.failed == 1
    assert not result.complete


def test_per_run_event_budget_aborts_without_retry(tmp_path):
    exp = _tiny_experiment()
    result = run_sweep(
        exp, out_dir=str(tmp_path), limit=1, run_max_events=3
    )
    aborted = [o for o in result.outcomes if o.status == "aborted"]
    assert len(aborted) == 1
    assert aborted[0].retries == 0  # deliberate abort, not retried
    runspec = exp.matrix()[0]
    rdir = run_dir(str(tmp_path), exp.name, runspec.run_id)
    # Partial report saved beside, never as, the completion marker.
    assert os.path.exists(os.path.join(rdir, "aborted.json"))
    assert not os.path.exists(os.path.join(rdir, "report.json"))
    # Resume without the budget completes the aborted run.
    resumed = run_sweep(exp, out_dir=str(tmp_path), resume=True)
    assert resumed.complete


def test_sweep_wall_budget_marks_rest_pending(tmp_path):
    exp = _tiny_experiment()
    result = run_sweep(exp, out_dir=str(tmp_path), max_wall=0.0)
    assert result.aborted
    assert result.counts() == {"pending": 4}


def test_pool_mode_matches_inline_output(tmp_path):
    exp = _tiny_experiment()
    inline_dir = str(tmp_path / "inline")
    pool_dir = str(tmp_path / "pool")
    assert run_sweep(exp, out_dir=inline_dir).complete
    assert run_sweep(exp, out_dir=pool_dir, workers=2).complete
    inline = aggregate_suite(exp, out_dir=inline_dir)
    pool = aggregate_suite(exp, out_dir=pool_dir)
    assert inline.to_csv() == pool.to_csv()
    assert inline.to_json() == pool.to_json()


def test_aggregate_marks_missing_runs(tmp_path):
    exp = _tiny_experiment()
    run_sweep(exp, out_dir=str(tmp_path), limit=1)
    dataset = aggregate_suite(exp, out_dir=str(tmp_path))
    statuses = [row["status"] for row in dataset.rows]
    assert statuses == ["ok", "missing", "missing", "missing"]
    assert not dataset.complete
    # Axis keys are present even for missing rows.
    assert dataset.rows[-1]["seed"] == 2
    assert dataset.rows[-1]["flows"] == 3
    assert dataset.fieldnames[:3] == ["run_id", "seed", "flows"]
