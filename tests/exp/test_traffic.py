"""Declarative traffic registry: validation, spec round trip, metrics."""

import pytest

from repro.api import Scenario, ScenarioSpec
from repro.traffic import (
    make_setup,
    traffic_factory,
    traffic_names,
    traffic_params,
    validate_params,
)
from repro.topology.generators import dumbbell_topology, star_topology


def test_registry_lists_paper_workloads():
    names = traffic_names()
    assert {"netperf", "udp-cbr", "cfs", "acdc"} <= set(names)
    assert names == sorted(names)


def test_traffic_params_exposes_defaults_without_emulation():
    params = traffic_params("udp-cbr")
    assert "emulation" not in params
    assert {"flows", "rate_mbps", "packet_bytes", "start_at"} <= set(params)


def test_unknown_entry_and_unknown_param_are_rejected():
    with pytest.raises(ValueError, match="netperf"):
        traffic_factory("warez")
    with pytest.raises(ValueError, match="rate_mbps"):
        validate_params("udp-cbr", {"rate_mpbs": 2.0})  # typo'd knob
    with pytest.raises(ValueError, match="unknown"):
        make_setup("netperf", {"bandwidth": 1})


def test_make_setup_attaches_portable_marker():
    setup = make_setup("udp-cbr", {"rate_mbps": 2.0, "flows": 2})
    # Marker is what Scenario.to_spec serialises: name + sorted params.
    name, params = setup._traffic_entry
    assert name == "udp-cbr"
    assert params == (("flows", 2), ("rate_mbps", 2.0))


def test_workload_metrics_surface_in_report():
    report = (
        Scenario.from_topology(dumbbell_topology(2), name="cbr")
        .seed(5)
        .workload("udp-cbr", flows=2, rate_mbps=0.5)
        .run(until=0.5)
    )
    assert report.metrics["traffic.udp-cbr.flows"] == 2
    assert report.metrics["traffic.udp-cbr.datagrams_sent"] > 0
    assert 0.0 <= report.metrics["traffic.udp-cbr.delivery_ratio"] <= 1.0


def test_workload_round_trips_through_spec():
    scenario = (
        Scenario.from_topology(star_topology(6), name="rt")
        .seed(9)
        .workload("netperf", flows=2, pairing="sequential")
    )
    spec = scenario.to_spec()
    assert spec.traffic == (
        ("netperf", (("flows", 2), ("pairing", "sequential"))),
    )
    assert isinstance(spec, ScenarioSpec)
    direct = scenario.run(until=0.4)
    replayed = Scenario.from_spec(spec).observe(True).run(until=0.4)
    assert (
        replayed.metrics["traffic.netperf.bytes_received"]
        == direct.metrics["traffic.netperf.bytes_received"]
    )


def test_netperf_random_pairing_is_seed_deterministic():
    def run(seed):
        return (
            Scenario.from_topology(star_topology(8), name="pair")
            .seed(seed)
            .workload("netperf", flows=3, pairing="random")
            .run(until=0.4)
            .metrics["traffic.netperf.bytes_received"]
        )

    assert run(11) == run(11)
