"""Experiment definitions: matrix expansion and stable run ids."""

import pytest

from repro.api import Scenario
from repro.core.distill import DistillationMode
from repro.exp import Experiment, get_suite, run_id_for, suite_names
from repro.topology.generators import dumbbell_topology, star_topology


def _base_scenario():
    return Scenario.from_topology(star_topology(6), name="unit").workload(
        "netperf", flows=2
    )


def test_matrix_expands_cartesian_product_in_axis_order():
    exp = Experiment(
        name="m1",
        base=_base_scenario(),
        until=0.5,
        axes={"seed": [1, 2], "flows": [2, 4]},
    )
    runs = exp.matrix()
    assert [r.point for r in runs] == [
        (("seed", 1), ("flows", 2)),
        (("seed", 1), ("flows", 4)),
        (("seed", 2), ("flows", 2)),
        (("seed", 2), ("flows", 4)),
    ]
    assert [r.index for r in runs] == [0, 1, 2, 3]
    # Axis values land in the resolved specs.
    assert runs[0].spec.seed == 1
    assert dict(runs[1].spec.traffic[0][1])["flows"] == 4


def test_run_ids_are_stable_and_content_derived():
    point = (("seed", 1), ("flows", 2))
    assert run_id_for("m1", 0.5, point) == run_id_for("m1", 0.5, point)
    # Any change to suite, horizon, or point yields a fresh id.
    assert run_id_for("m1", 0.5, point) != run_id_for("m2", 0.5, point)
    assert run_id_for("m1", 1.0, point) != run_id_for("m1", 0.5, point)
    assert run_id_for("m1", 0.5, (("seed", 2), ("flows", 2))) != run_id_for(
        "m1", 0.5, point
    )
    # Readable: the slug names the axis point.
    assert run_id_for("m1", 0.5, point).startswith("seed=1_flows=2-")


def test_matrix_is_deterministic_across_expansions():
    exp = Experiment(
        name="m2",
        base=_base_scenario(),
        until=0.5,
        axes={"seed": [3, 4]},
    )
    first = exp.matrix()
    second = exp.matrix()
    assert [r.run_id for r in first] == [r.run_id for r in second]
    assert [r.spec for r in first] == [r.spec for r in second]


def test_factory_base_consumes_its_axes_and_overrides_the_rest():
    built_with = []

    def factory(pairs):
        built_with.append(pairs)
        return Scenario.from_topology(
            dumbbell_topology(pairs), name="fac"
        ).workload("netperf", flows=2)

    exp = Experiment(
        name="m3",
        base=factory,
        until=0.2,
        axes={"pairs": [2, 3], "seed": [7]},
    )
    runs = exp.matrix()
    # 'pairs' went to the factory, 'seed' through with_overrides.
    assert built_with == [2, 3]
    assert all(r.spec.seed == 7 for r in runs)
    assert runs[0].spec.topology.num_nodes != runs[1].spec.topology.num_nodes


def test_quick_variant_swaps_axes_and_horizon():
    exp = Experiment(
        name="m4",
        base=_base_scenario(),
        until=2.0,
        axes={"seed": [1, 2, 3]},
        quick_axes={"seed": [1]},
        quick_until=0.1,
    )
    assert len(exp.matrix()) == 3
    quick = exp.matrix(quick=True)
    assert len(quick) == 1
    assert quick[0].until == 0.1
    # Different horizon -> different run id (no stale-report reuse).
    assert quick[0].run_id != exp.matrix()[0].run_id


def test_unknown_axis_fails_at_expansion_time():
    exp = Experiment(
        name="m5",
        base=_base_scenario(),
        until=0.5,
        axes={"frobnicate": [1]},
    )
    with pytest.raises(ValueError, match="frobnicate"):
        exp.matrix()


def test_mode_axis_accepts_string_spellings():
    exp = Experiment(
        name="m6",
        base=_base_scenario(),
        until=0.5,
        axes={"mode": ["hop-by-hop", "last-mile"]},
    )
    modes = [r.spec.mode for r in exp.matrix()]
    assert modes == [DistillationMode.HOP_BY_HOP, DistillationMode.WALK_IN]


def test_builtin_suites_registered_and_expand():
    assert {"smoke", "fig4", "fig8", "fig12"} <= set(suite_names())
    smoke = get_suite("smoke")
    assert len(smoke.matrix()) == 4
    for name in ("fig4", "fig8", "fig12"):
        suite = get_suite(name)
        assert suite.matrix(quick=True), name
        assert suite.matrix(), name


def test_unknown_suite_lists_valid_names():
    with pytest.raises(ValueError, match="smoke"):
        get_suite("nope")
