"""Tests for fault injection and dynamic network changes."""

import pytest

from repro.core import (
    DistillationMode,
    EmulationConfig,
    ExperimentPipeline,
    FaultInjector,
    LinkPerturbation,
)
from repro.engine import Simulator
from repro.topology import Topology, NodeKind, ring_topology


def build_square():
    topology = Topology()
    c0 = topology.add_node(NodeKind.CLIENT)
    r1 = topology.add_node(NodeKind.STUB)
    r2 = topology.add_node(NodeKind.STUB)
    c3 = topology.add_node(NodeKind.CLIENT)
    topology.add_link(c0.id, r1.id, 10e6, 0.001)
    topology.add_link(r1.id, c3.id, 10e6, 0.001)
    topology.add_link(c0.id, r2.id, 10e6, 0.020)
    topology.add_link(r2.id, c3.id, 10e6, 0.020)
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .distill(DistillationMode.HOP_BY_HOP)
        .assign(1)
        .bind(1)
        .run(EmulationConfig.reference())
    )
    return sim, emulation


def test_scheduled_link_failure_and_recovery():
    sim, emulation = build_square()
    injector = FaultInjector(emulation)
    injector.fail_link_at(1.0, 0)
    injector.recover_link_at(2.0, 0)
    sim.run(until=1.5)
    assert not emulation.topology.links[0].up
    assert not emulation.pipes_of_link(0)[0].up
    sim.run(until=2.5)
    assert emulation.topology.links[0].up
    assert injector.failures_injected == 1


def test_node_failure_fails_incident_links():
    sim, emulation = build_square()
    injector = FaultInjector(emulation)
    injector.fail_node_at(1.0, 1)  # router r1
    sim.run(until=1.5)
    assert not emulation.topology.links[0].up
    assert not emulation.topology.links[1].up
    assert emulation.topology.links[2].up
    injector.recover_node_at(2.0, 1)
    sim.run(until=2.5)
    assert emulation.topology.links[0].up


def test_partition_cuts_traffic():
    sim, emulation = build_square()
    injector = FaultInjector(emulation)
    received = []
    emulation.vn(1).udp_socket(port=9, on_receive=lambda *a: received.append(sim.now))
    sender = emulation.vn(0).udp_socket()
    injector.partition_at(1.0, [0, 2])  # both of c0's access links
    sim.at(0.5, sender.send_to, 1, 9, 100)
    sim.at(1.5, sender.send_to, 1, 9, 100)
    sim.run(until=3.0)
    assert len(received) == 1
    assert emulation.monitor.packets_unroutable == 1


def test_node_failure_recomputes_routes_and_recovery_restores_them():
    """Failing r1 reroutes c0->c3 over the 20 ms detour through r2;
    recovering it snaps traffic back to the 1 ms path (the paper's
    instantaneous shortest-path recomputation)."""
    sim, emulation = build_square()
    injector = FaultInjector(emulation)
    received = []
    emulation.vn(1).udp_socket(port=9, on_receive=lambda *a: received.append(sim.now))
    sender = emulation.vn(0).udp_socket()
    injector.fail_node_at(1.0, 1)
    injector.recover_node_at(3.0, 1)
    sends = (0.5, 1.5, 3.5)
    for when in sends:
        sim.at(when, sender.send_to, 1, 9, 100)
    sim.run(until=5.0)
    assert len(received) == 3
    latencies = [t - s for t, s in zip(received, sends)]
    assert latencies[0] < 0.010          # short path: 2 x 1 ms
    assert latencies[1] > 0.030          # detour: 2 x 20 ms
    assert latencies[2] < 0.010          # back on the short path
    assert latencies[2] == pytest.approx(latencies[0])


def test_in_flight_packets_on_failed_links_are_dropped():
    """A failure flushes the link's pipes: packets already in flight
    are dropped, never delivered late over a dead link."""
    sim, emulation = build_square()
    injector = FaultInjector(emulation)
    received = []
    emulation.vn(1).udp_socket(port=9, on_receive=lambda *a: received.append(sim.now))
    sender = emulation.vn(0).udp_socket()
    # In flight on the c0-r1 hop (1 ms latency) when r1 dies at t=1.0.
    sim.at(0.9995, sender.send_to, 1, 9, 100)
    injector.fail_node_at(1.0, 1)
    sim.run(until=2.0)
    assert received == []


def test_partition_recovery_restores_connectivity():
    sim, emulation = build_square()
    injector = FaultInjector(emulation)
    received = []
    emulation.vn(1).udp_socket(port=9, on_receive=lambda *a: received.append(sim.now))
    sender = emulation.vn(0).udp_socket()
    cut = [0, 2]  # both of c0's access links
    injector.partition_at(1.0, cut)
    for link_id in cut:
        injector.recover_link_at(2.0, link_id)
    sim.at(1.5, sender.send_to, 1, 9, 100)  # inside the partition: lost
    sim.at(2.5, sender.send_to, 1, 9, 100)  # after healing: delivered
    sim.run(until=4.0)
    assert len(received) == 1
    assert received[0] > 2.5
    assert emulation.monitor.packets_unroutable == 1


def test_perturbation_changes_latencies_within_bounds():
    topology = ring_topology(num_routers=6, vns_per_router=2)
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .distill(DistillationMode.HOP_BY_HOP)
        .assign(1)
        .bind(1)
        .run(EmulationConfig.reference())
    )
    injector = FaultInjector(emulation)
    originals = {
        link_id: link.latency_s
        for link_id, link in emulation.topology.links.items()
    }
    applied_sets = []
    injector.start_perturbation(
        LinkPerturbation(period_s=1.0, link_fraction=0.25, latency_scale=(1.0, 1.25)),
        start_s=1.0,
        stop_s=4.0,
        on_applied=applied_sets.append,
    )
    sim.run(until=3.5)
    assert injector.perturbations_applied == 3
    assert all(len(chosen) == round(0.25 * len(originals)) for chosen in applied_sets)
    for link_id, link in emulation.topology.links.items():
        assert originals[link_id] <= link.latency_s <= 1.25 * originals[link_id] + 1e-12
    # After stop, everything reverts.
    sim.run(until=5.0)
    for link_id, link in emulation.topology.links.items():
        assert link.latency_s == pytest.approx(originals[link_id])


def test_perturbation_does_not_compound():
    sim, emulation = build_square()
    injector = FaultInjector(emulation)
    injector.start_perturbation(
        LinkPerturbation(period_s=0.5, link_fraction=1.0, latency_scale=(1.2, 1.2)),
        start_s=0.0,
        stop_s=10.0,
    )
    sim.run(until=5.1)
    # After 10 rounds of x1.2 the latency is still exactly 1.2x the
    # original (scales apply to originals, not the current value).
    assert emulation.topology.links[0].latency_s == pytest.approx(0.001 * 1.2)


def test_perturbation_with_bandwidth_and_loss():
    sim, emulation = build_square()
    injector = FaultInjector(emulation)
    injector.start_perturbation(
        LinkPerturbation(
            period_s=1.0,
            link_fraction=1.0,
            latency_scale=(1.0, 1.0),
            bandwidth_scale=(0.5, 0.5),
            loss_add=(0.1, 0.1),
        ),
        start_s=0.0,
        stop_s=10.0,
    )
    sim.run(until=0.5)
    link = emulation.topology.links[0]
    assert link.bandwidth_bps == pytest.approx(5e6)
    assert link.loss_rate == pytest.approx(0.1)
    pipe = emulation.pipes_of_link(0)[0]
    assert pipe.bandwidth_bps == pytest.approx(5e6)
    assert pipe.loss_rate == pytest.approx(0.1)


def test_random_stress_schedules_outages():
    sim, emulation = build_square()
    injector = FaultInjector(emulation)
    outages = injector.random_stress(
        start_s=0.0, stop_s=60.0, mean_failure_interval_s=5.0,
        mean_outage_s=1.0,
    )
    assert outages > 3
    sim.run(until=61.0)
    assert injector.failures_injected == outages
    # Everything recovered by the end.
    assert all(link.up for link in emulation.topology.links.values())


def test_random_stress_respects_protected_links():
    sim, emulation = build_square()
    injector = FaultInjector(emulation)
    protected = [0, 1]
    injector.random_stress(
        start_s=0.0, stop_s=120.0, mean_failure_interval_s=2.0,
        mean_outage_s=100.0, protect=protected,
    )
    sim.run(until=60.0)
    for link_id in protected:
        assert emulation.topology.links[link_id].up
    with pytest.raises(ValueError):
        injector.random_stress(0.0, 10.0, protect=[0, 1, 2, 3])


def test_random_stress_with_perturbation_restores_originals():
    """After the stress window closes, every link is up and every
    perturbed parameter (latency, bandwidth, loss) is back at its
    original value — on the topology link AND its pipes."""
    sim, emulation = build_square()
    injector = FaultInjector(emulation)
    originals = {
        link_id: (link.bandwidth_bps, link.latency_s, link.loss_rate)
        for link_id, link in emulation.topology.links.items()
    }
    injector.random_stress(
        start_s=0.0, stop_s=20.0, mean_failure_interval_s=3.0,
        mean_outage_s=1.0,
        perturbation=LinkPerturbation(
            period_s=2.0, link_fraction=1.0,
            latency_scale=(1.1, 1.5),
            bandwidth_scale=(0.5, 0.9),
            loss_add=(0.0, 0.2),
        ),
    )
    sim.run(until=10.0)
    # Mid-window the perturbation has visibly moved something.
    assert any(
        emulation.topology.links[link_id].latency_s != pytest.approx(lat)
        for link_id, (_, lat, _) in originals.items()
    )
    sim.run(until=25.0)
    assert all(link.up for link in emulation.topology.links.values())
    for link_id, (bw, lat, loss) in originals.items():
        link = emulation.topology.links[link_id]
        assert link.bandwidth_bps == pytest.approx(bw)
        assert link.latency_s == pytest.approx(lat)
        assert link.loss_rate == pytest.approx(loss)
        for pipe in emulation.pipes_of_link(link_id):
            assert pipe.bandwidth_bps == pytest.approx(bw)
            assert pipe.latency_s == pytest.approx(lat)
            assert pipe.loss_rate == pytest.approx(loss)


def test_random_stress_deterministic_given_seed():
    counts = []
    for _ in range(2):
        sim, emulation = build_square()
        import random as _random

        injector = FaultInjector(emulation, rng=_random.Random(9))
        counts.append(
            injector.random_stress(0.0, 100.0, mean_failure_interval_s=7.0)
        )
    assert counts[0] == counts[1]


def test_service_survives_random_stress():
    """A TCP transfer across the redundant square completes despite
    randomized outages (the redundancy does its job)."""
    from repro.apps.netperf import TcpStream

    sim, emulation = build_square()
    injector = FaultInjector(emulation)
    injector.random_stress(
        start_s=1.0, stop_s=30.0, mean_failure_interval_s=4.0,
        mean_outage_s=1.0, protect=[],
    )
    stream = TcpStream(emulation, 0, 1)
    sim.run(until=60.0)
    assert stream.bytes_received > 1_000_000
